"""Multiple-condition systems (Appendix D)."""

from repro.multicondition.algebra import ConjunctionCondition, NegationCondition
from repro.multicondition.combined import (
    DisjunctionCondition,
    PerConditionAD,
    example_4,
    trim_histories,
)
from repro.multicondition.system import (
    DemuxAD,
    MultiConditionResult,
    MultiConditionSystem,
    colocated_system,
)

__all__ = [
    "ConjunctionCondition",
    "DemuxAD",
    "NegationCondition",
    "DisjunctionCondition",
    "MultiConditionResult",
    "MultiConditionSystem",
    "PerConditionAD",
    "colocated_system",
    "example_4",
    "trim_histories",
]
