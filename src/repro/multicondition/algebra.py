"""Condition algebra: conjunction and negation combinators.

Appendix D reduces co-located conditions to a single disjunction
``C = A ∨ B``; the same construction extends to the other boolean
connectives, and together they let compound monitoring policies ("alert
when overheating AND NOT in maintenance-band") be assembled from reusable
pieces while keeping each constituent's own triggering semantics on its
own history depth.

Degrees combine as the per-variable max; each constituent is evaluated on
its own trimmed history view (see :func:`repro.multicondition.combined.
trim_histories`).  Classification:

* a conjunction is conservative if *any* constituent is — one
  gap-refusing conjunct forces the whole conjunction false across a gap;
* a negation flips satisfaction but NOT conservativeness: ¬(gap ⇒ false)
  is (gap ⇒ true), i.e. the negation of a conservative condition is
  aggressive (it can trigger across a lost update), which the property
  reflects.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.condition import Condition
from repro.core.history import HistorySet, HistorySnapshot
from repro.multicondition.combined import trim_histories

__all__ = ["ConjunctionCondition", "NegationCondition"]


class ConjunctionCondition(Condition):
    """``C = A ∧ B (∧ …)``: triggers only when every constituent does."""

    def __init__(self, name: str, conditions: Sequence[Condition]) -> None:
        if not conditions:
            raise ValueError("conjunction needs at least one condition")
        degrees: dict[str, int] = {}
        for condition in conditions:
            for var, degree in condition.degrees.items():
                degrees[var] = max(degrees.get(var, 0), degree)
        super().__init__(name, degrees, conservative=False)
        self.conditions = tuple(conditions)

    @property
    def is_conservative(self) -> bool:  # type: ignore[override]
        # One conservative conjunct vetoes any gap-spanning trigger.
        return any(c.is_conservative for c in self.conditions)

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        for condition in self.conditions:
            view = trim_histories(histories, condition.degrees)
            if not condition.evaluate(view):
                return False
        return True


class NegationCondition(Condition):
    """``C = ¬A``: triggers exactly when A does not.

    Note the classification consequence: negating a conservative
    condition yields an *aggressive* one (it evaluates true across the
    gaps the original refused), so ``is_conservative`` only holds when
    the inner condition is non-historical (where the distinction is
    vacuous).
    """

    def __init__(self, name: str, condition: Condition) -> None:
        super().__init__(name, condition.degrees, conservative=False)
        self.condition = condition

    @property
    def is_conservative(self) -> bool:  # type: ignore[override]
        return not self.is_historical

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        view = trim_histories(histories, self.condition.degrees)
        return not self.condition.evaluate(view)
