"""Simulated multi-condition systems (Appendix D, Figures D-7 and D-8).

Two topologies, matching the appendix's reductions:

* **Separate CEs** (Figure D-7(c)): every condition gets its own set of
  replicated CE nodes; all CEs interested in a variable subscribe to its
  DM; one AD runs an independent filter instance per condition stream
  (:class:`DemuxAD`).  Each stream then enjoys exactly the
  single-condition guarantees of Sections 3–4, which
  :meth:`MultiConditionResult.evaluate_stream` verifies per stream.
* **Co-located CEs** (Figure D-7(d)): conditions hosted on one node see
  one update interleaving, so the system reduces to a single-condition
  system over ``C = A ∨ B`` — build it with :func:`colocated_system`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.components.ad_node import ADNode
from repro.components.ce_node import CENode
from repro.components.data_monitor import DataMonitor
from repro.components.system import MonitoringSystem, SystemConfig, Workload
from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.update import Update
from repro.displayers.base import ADAlgorithm
from repro.displayers.registry import make_ad
from repro.multicondition.combined import DisjunctionCondition
from repro.props.report import PropertyReport, evaluate_run
from repro.simulation.kernel import Kernel
from repro.simulation.network import LossyFifoLink, ReliableLink
from repro.simulation.rng import RandomStreams

__all__ = ["DemuxAD", "MultiConditionSystem", "MultiConditionResult", "colocated_system"]


class DemuxAD(ADAlgorithm):
    """An AD algorithm that routes alerts to per-condition sub-filters.

    The appendix's observation: "Although there is only one AD for both
    conditions, it can effectively separate the A and B alert streams and
    run one instance of the filtering algorithm against each stream."
    """

    name = "demux"

    def __init__(self, algorithms: Mapping[str, ADAlgorithm]) -> None:
        super().__init__()
        if not algorithms:
            raise ValueError("DemuxAD needs at least one sub-algorithm")
        self._algorithms = dict(algorithms)
        self._stream_outputs: dict[str, list[Alert]] = {
            name: [] for name in self._algorithms
        }

    def _fresh_args(self) -> tuple:
        return ({name: algo.fresh() for name, algo in self._algorithms.items()},)

    def stream_output(self, condname: str) -> tuple[Alert, ...]:
        """The displayed alerts of one condition's stream, in order."""
        return tuple(self._stream_outputs[condname])

    def _accept(self, alert: Alert) -> bool:
        algorithm = self._algorithms.get(alert.condname)
        if algorithm is None:
            raise KeyError(f"no sub-filter for condition {alert.condname!r}")
        return algorithm._accept(alert)

    def _record(self, alert: Alert) -> None:
        self._algorithms[alert.condname]._record(alert)
        self._stream_outputs[alert.condname].append(alert)


@dataclass(frozen=True)
class MultiConditionResult:
    """Observables of one separate-CE multi-condition run."""

    conditions: tuple[Condition, ...]
    #: Per condition name: the U_i traces of that condition's CE replicas.
    received: dict[str, tuple[tuple[Update, ...], ...]]
    #: The merged displayed sequence across all conditions, arrival order.
    displayed: tuple[Alert, ...]
    #: Per condition name: its displayed stream.
    streams: dict[str, tuple[Alert, ...]]
    ad_arrivals: tuple[Alert, ...]

    def evaluate_stream(self, condname: str) -> PropertyReport:
        """Single-condition property report for one stream (App. D)."""
        condition = next(c for c in self.conditions if c.name == condname)
        return evaluate_run(
            condition, self.received[condname], self.streams[condname]
        )


class MultiConditionSystem:
    """Figure D-7(c): per-condition replicated CEs, demuxing AD."""

    def __init__(
        self,
        conditions: Sequence[Condition],
        workload: Workload,
        config: SystemConfig,
        seed: int = 0,
        ad_algorithm_name: str | None = None,
    ) -> None:
        names = [c.name for c in conditions]
        if len(set(names)) != len(names):
            raise ValueError(f"condition names must be unique, got {names}")
        needed = {v for c in conditions for v in c.variables}
        missing = needed - set(workload)
        if missing:
            raise ValueError(f"workload lacks variables: {sorted(missing)}")

        self.conditions = tuple(conditions)
        self.config = config
        self.seed = seed
        self.kernel = Kernel()
        streams = RandomStreams(seed)

        algo_name = ad_algorithm_name or config.ad_algorithm
        self._demux = DemuxAD(
            {c.name: make_ad(algo_name, c) for c in conditions}
        )
        self.ad = ADNode(self.kernel, "AD", self._demux)

        self.ces: dict[str, list[CENode]] = {}
        for condition in conditions:
            replicas = []
            for index in range(config.replication):
                ce = CENode(
                    self.kernel,
                    f"CE-{condition.name}-{index + 1}",
                    condition,
                    config.crash_schedules.get(index),
                )
                back = ReliableLink(
                    self.kernel,
                    self.ad.receive,
                    config.back_delay,
                    streams.stream(f"back/{ce.name}"),
                    name=f"{ce.name}->AD",
                )
                ce.connect_ad(back)
                replicas.append(ce)
            self.ces[condition.name] = replicas

        self.dms: list[DataMonitor] = []
        for varname in sorted(workload):
            dm = DataMonitor(self.kernel, varname, list(workload[varname]))
            for condition in conditions:
                if varname not in condition.variables:
                    continue
                for ce in self.ces[condition.name]:
                    front = LossyFifoLink(
                        self.kernel,
                        ce.receive,
                        config.front_delay,
                        streams.stream(f"front/{varname}/{ce.name}"),
                        loss_prob=config.front_loss,
                        name=f"DM-{varname}->{ce.name}",
                    )
                    dm.attach(front)
            self.dms.append(dm)

    def run(self) -> MultiConditionResult:
        for dm in self.dms:
            dm.start()
        self.kernel.run()
        return MultiConditionResult(
            conditions=self.conditions,
            received={
                name: tuple(ce.received for ce in replicas)
                for name, replicas in self.ces.items()
            },
            displayed=self.ad.displayed,
            streams={
                condition.name: self._demux.stream_output(condition.name)
                for condition in self.conditions
            },
            ad_arrivals=self.ad.arrivals,
        )


def colocated_system(
    conditions: Sequence[Condition],
    workload: Workload,
    config: SystemConfig,
    seed: int = 0,
    combined_name: str = "C",
) -> MonitoringSystem:
    """Figure D-7(d)/D-8: co-located conditions as one combined condition.

    Returns an ordinary single-condition :class:`MonitoringSystem` over
    ``C = A ∨ B ∨ …`` — demonstrating the appendix's reduction: all the
    single-condition analysis applies unchanged.
    """
    combined = DisjunctionCondition(combined_name, list(conditions))
    return MonitoringSystem(combined, workload, config, seed)
