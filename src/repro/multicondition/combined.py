"""Multiple conditions (Appendix D).

Two constructions from the appendix:

* **Separate CEs** (Figure D-7(c)): each condition has its own replicated
  CEs; the single AD "can effectively separate the A and B alert streams
  and run one instance of the filtering algorithm against each stream" —
  :class:`PerConditionAD`.
* **Co-located CEs** (Figure D-7(d)): conditions hosted on one node see
  the same updates, so the pair reduces to the single combined condition
  ``C = A ∨ B`` (Figure D-8) — :class:`DisjunctionCondition`.

The module also reproduces **Example 4**: two interdependent conditions
("x hotter than y" / "y hotter than x") evaluated on different
interleavings trigger *both*, confusing the user even without
replication — see :func:`example_4`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.alert import Alert
from repro.core.condition import Condition, ExpressionCondition
from repro.core.evaluator import ConditionEvaluator
from repro.core.expressions import H
from repro.core.history import HistorySet, HistorySnapshot
from repro.core.update import Update, parse_trace
from repro.displayers.base import ADAlgorithm

__all__ = [
    "DisjunctionCondition",
    "PerConditionAD",
    "trim_histories",
    "example_4",
]


def trim_histories(
    histories: HistorySet | HistorySnapshot, degrees: dict[str, int]
) -> HistorySnapshot:
    """Restrict a (possibly deeper) history set to the given degrees.

    Used when a combined condition keeps max-degree histories but a
    constituent only looks at shallower ones: the constituent must be
    evaluated — including its conservative gap-guard — on exactly the
    depth it declares.
    """
    snapshot = histories if isinstance(histories, HistorySnapshot) else histories.snapshot()
    return HistorySnapshot(
        {var: snapshot[var][: degrees[var]] for var in degrees}
    )


class DisjunctionCondition(Condition):
    """``C = A ∨ B (∨ ...)``: triggers whenever any constituent triggers.

    Per-variable degree is the max over constituents; each constituent is
    evaluated on its own trimmed history view, so conservative
    constituents keep their gap semantics even when combined with deeper
    aggressive ones.  C itself is conservative only if *every*
    constituent is (a single aggressive disjunct can trigger across a
    gap).
    """

    def __init__(self, name: str, conditions: Sequence[Condition]) -> None:
        if not conditions:
            raise ValueError("disjunction needs at least one condition")
        degrees: dict[str, int] = {}
        for condition in conditions:
            for var, degree in condition.degrees.items():
                degrees[var] = max(degrees.get(var, 0), degree)
        # The combined condition applies each constituent's own guard;
        # no blanket conservative guard at the top level.
        super().__init__(name, degrees, conservative=False)
        self.conditions = tuple(conditions)

    @property
    def is_conservative(self) -> bool:  # type: ignore[override]
        return all(c.is_conservative for c in self.conditions)

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        for condition in self.conditions:
            view = trim_histories(histories, condition.degrees)
            if condition.evaluate(view):
                return True
        return False


class PerConditionAD:
    """The Figure D-7(c) Alert Displayer: one filter instance per condition.

    Alerts are routed by ``condname`` to their condition's filtering
    algorithm; the displayed output is the interleaving of the per-stream
    survivors in arrival order.  Alerts for unknown conditions are
    rejected loudly (they indicate a mis-wired system).
    """

    def __init__(self, algorithms: dict[str, ADAlgorithm]) -> None:
        if not algorithms:
            raise ValueError("need at least one per-condition algorithm")
        self._algorithms = dict(algorithms)
        self._displayed: list[Alert] = []

    @property
    def displayed(self) -> tuple[Alert, ...]:
        return tuple(self._displayed)

    def stream(self, condname: str) -> tuple[Alert, ...]:
        """The displayed alerts of one condition's stream."""
        return self._algorithms[condname].output

    def offer(self, alert: Alert) -> bool:
        algorithm = self._algorithms.get(alert.condname)
        if algorithm is None:
            raise KeyError(
                f"no AD algorithm registered for condition {alert.condname!r}"
            )
        if algorithm.offer(alert):
            self._displayed.append(alert)
            return True
        return False

    def offer_all(self, alerts: Iterable[Alert]) -> list[Alert]:
        return [a for a in alerts if self.offer(a)]


def example_4() -> tuple[list[Alert], list[Alert]]:
    """Example 4: interdependent conditions conflict without replication.

    Condition A: "reactor x has a higher temperature than reactor y";
    condition B: the converse.  Both reactors go 2000 → 2100, but A's CE
    sees the x change first while B's CE sees the y change first.  Both
    CEs trigger, and the user receives the contradictory pair.

    Returns ``(alerts_from_A, alerts_from_B)`` — both non-empty, which is
    the paradox.
    """
    cond_a = ExpressionCondition("A", H.x[0].value > H.y[0].value)
    cond_b = ExpressionCondition("B", H.y[0].value > H.x[0].value)

    x1, x2 = parse_trace("1x(2000), 2x(2100)")
    y1, y2 = parse_trace("1y(2000), 2y(2100)")

    ce_a = ConditionEvaluator(cond_a, source="CE-A")
    ce_a.ingest_all([x1, y1, x2, y2])  # sees the x rise first -> triggers

    ce_b = ConditionEvaluator(cond_b, source="CE-B")
    ce_b.ingest_all([x1, y1, y2, x2])  # sees the y rise first -> triggers

    return list(ce_a.alerts), list(ce_b.alerts)
