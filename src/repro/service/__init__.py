"""The online monitoring service runtime (conformance-tested).

This package splits the CE/AD/property semantics out of the
discrete-event scheduler behind a small :class:`~repro.service.runtime.Runtime`
interface and provides three interchangeable engines — the existing
simulator kernels, a scheduler-free direct core, and a real asyncio
service (sockets, tasks, bounded queues with backpressure, graceful
drain).  A recorded :class:`~repro.service.feed.UpdateFeed` replayed
through any engine must yield byte-identical displayed-alert frames and
identical property verdicts; :func:`~repro.service.runtime.check_conformance`
enforces exactly that.
"""

from repro.service.feed import (
    FEED_SCHEMA,
    FeedSchemaError,
    UpdateFeed,
    feed_from_run,
    feed_messages,
    load_feed,
    loads_feed,
    record_feed,
)
from repro.service.queues import CLOSE, BoundedQueue, QueueStats
from repro.service.runtime import (
    ConformanceReport,
    DirectRuntime,
    FeedMismatchError,
    FeedResult,
    KernelRuntime,
    Runtime,
    check_conformance,
    default_runtimes,
)
from repro.service.server import (
    AsyncioServiceRuntime,
    MonitorService,
    ServiceConfig,
    ServiceError,
    execute_feed,
)

__all__ = [
    "FEED_SCHEMA",
    "FeedSchemaError",
    "UpdateFeed",
    "feed_from_run",
    "feed_messages",
    "load_feed",
    "loads_feed",
    "record_feed",
    "CLOSE",
    "BoundedQueue",
    "QueueStats",
    "ConformanceReport",
    "DirectRuntime",
    "FeedMismatchError",
    "FeedResult",
    "KernelRuntime",
    "Runtime",
    "check_conformance",
    "default_runtimes",
    "AsyncioServiceRuntime",
    "MonitorService",
    "ServiceConfig",
    "ServiceError",
    "execute_feed",
]
