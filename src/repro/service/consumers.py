"""The service pipeline's stage consumers.

Three coroutine stages sit between the socket reader and the result
frame; each is a plain async function over :class:`BoundedQueue`\\ s so
the property suite can assemble pipelines without sockets:

* :func:`route_updates` — fan the ingest stream out to per-CE update
  queues (the feed names the target CE per delivery; real DMs would
  broadcast, and lossy front links would produce exactly such per-CE
  streams).
* :func:`ce_replica` — one per CE: a stateful online consumer wrapping
  a :class:`~repro.core.evaluator.ConditionEvaluator`; every alert it
  raises is paired with its pre-recorded arrival stamp and pushed into
  the **shared** alert queue.
* :func:`ad_merge` — the AD-side consumer.  All CEs fan into one
  bounded queue (a per-CE queue k-way merge can deadlock: the merger
  awaits one CE's head while another CE blocks on its own full queue
  and the router blocks behind *it*); the merger re-establishes the
  arrival order with a reorder buffer released in precomputed stamp
  order, then filters online through the AD algorithm.

End-of-stream uses the queue CLOSE sentinel: the router closes every
CE queue, each CE closes the shared alert queue once, and the merger
exits after seeing one CLOSE per CE — so every item enqueued before a
close is consumed first, which is the graceful-drain guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.core.alert import Alert
from repro.core.update import Update
from repro.service.queues import CLOSE, BoundedQueue
from repro.service.runtime import FeedMismatchError

__all__ = [
    "StampedAlert",
    "MergeResult",
    "ShardFrontResult",
    "route_updates",
    "ce_replica",
    "ad_merge",
    "shard_front",
    "drain_idle_shard",
]

#: Optional test hook: awaited before each update is evaluated, letting
#: property tests impose arbitrary per-CE pacing (slow consumers).
Pace = Callable[[int, Update], Awaitable[None]]


@dataclass(frozen=True)
class StampedAlert:
    """An alert paired with its recorded back-link arrival stamp."""

    ce_index: int
    #: Position in the CE's own alert stream (FIFO back link ⇒ the
    #: position indexes the CE's stamp list).
    position: int
    stamp: tuple[float, int]
    alert: Alert
    #: ``time.monotonic_ns()`` when the triggering update entered the
    #: service — the start of the update→alert latency measurement.
    ingest_ns: int


@dataclass
class MergeResult:
    """What the AD-side consumer saw."""

    #: The re-established arrival stream (input to the AD filter).
    arrivals: list[Alert] = field(default_factory=list)
    #: Update→display latency per displayed alert, in nanoseconds.
    display_latencies_ns: list[int] = field(default_factory=list)
    #: Largest reorder buffer the merge ever held (stamp-skew bound).
    peak_reorder: int = 0


@dataclass
class ShardFrontResult:
    """What the tenant-aware shard front observed."""

    #: Deliveries forwarded to each shard's ingest queue, by shard index.
    forwarded: tuple[int, ...] = ()
    #: Deliveries whose variable no hosted condition references (the CEs
    #: would have silently ignored them; the front drops them earlier).
    dropped: int = 0


async def shard_front(
    ingest: BoundedQueue,
    shard_queues: list[BoundedQueue],
    routes: dict[str, tuple[int, ...]],
) -> ShardFrontResult:
    """Fan the connection's delivery stream out to per-shard ingest queues.

    The multi-tenant front of a sharded deployment: every delivery is
    forwarded to the shards whose hosted conditions reference its
    variable (``routes`` — see
    :meth:`~repro.sharding.router.ShardAssignment.route`), unreferenced
    variables are dropped at the door, and per-CE FIFO order is
    preserved per shard because the front filters without reordering.
    On the client's end-of-feed CLOSE, every shard queue is closed so
    the graceful drain reaches all shard pipelines — including idle
    ones (:func:`drain_idle_shard`).
    """
    forwarded = [0] * len(shard_queues)
    dropped = 0
    while True:
        item = await ingest.get()
        if item is CLOSE:
            break
        _, update, _ = item
        targets = routes.get(update.varname, ())
        if not targets:
            dropped += 1
            continue
        for shard in targets:
            if not 0 <= shard < len(shard_queues):
                raise FeedMismatchError(
                    f"route for {update.varname!r} targets shard {shard}; "
                    f"the ring has {len(shard_queues)} shards"
                )
            forwarded[shard] += 1
            await shard_queues[shard].put(item)
    for queue in shard_queues:
        await queue.close()
    return ShardFrontResult(forwarded=tuple(forwarded), dropped=dropped)


async def drain_idle_shard(shard_index: int, updates: BoundedQueue) -> int:
    """Consumer for a shard hosting none of this feed's conditions.

    An idle shard still participates in the drain protocol (its queue
    must see the CLOSE before the pipeline can finish), and anything it
    *does* receive is a routing bug — counted and surfaced by the
    caller rather than silently evaluated on the wrong shard.
    """
    stray = 0
    while True:
        item = await updates.get()
        if item is CLOSE:
            return stray
        stray += 1


async def route_updates(
    ingest: BoundedQueue, ce_queues: list[BoundedQueue]
) -> None:
    """Fan ``(ce_index, update, ingest_ns)`` items out to per-CE queues."""
    while True:
        item = await ingest.get()
        if item is CLOSE:
            break
        ce_index, update, ingest_ns = item
        if not 0 <= ce_index < len(ce_queues):
            raise FeedMismatchError(
                f"delivery targets CE index {ce_index}; the feed declares "
                f"{len(ce_queues)} CEs"
            )
        await ce_queues[ce_index].put((update, ingest_ns))
    for queue in ce_queues:
        await queue.close()


async def ce_replica(
    ce_index: int,
    evaluator,
    stamps: tuple[tuple[float, int], ...],
    updates: BoundedQueue,
    alerts: BoundedQueue,
    *,
    pace: Pace | None = None,
) -> None:
    """Evaluate one CE's update stream; emit stamped alerts.

    ``evaluator`` is a fresh :class:`ConditionEvaluator` (passed in, not
    constructed, so tests can inspect it afterwards).  Raising more or
    fewer alerts than the feed recorded stamps for is a conformance
    failure — it means the deliveries do not reproduce the run.
    """
    position = 0
    while True:
        item = await updates.get()
        if item is CLOSE:
            break
        update, ingest_ns = item
        if pace is not None:
            await pace(ce_index, update)
        alert = evaluator.ingest(update)
        if alert is not None:
            if position >= len(stamps):
                raise FeedMismatchError(
                    f"CE{ce_index + 1} raised alert #{position + 1} but the "
                    f"feed recorded only {len(stamps)} arrival stamps"
                )
            await alerts.put(
                StampedAlert(ce_index, position, stamps[position], alert, ingest_ns)
            )
            position += 1
    if position != len(stamps):
        raise FeedMismatchError(
            f"CE{ce_index + 1} drained after {position} alerts; the feed "
            f"recorded {len(stamps)}"
        )
    await alerts.close()


async def ad_merge(
    algorithm,
    stamps: tuple[tuple[tuple[float, int], ...], ...],
    alerts: BoundedQueue,
    *,
    clock: Callable[[], int] = time.monotonic_ns,
) -> MergeResult:
    """Re-establish arrival order and filter online through the AD.

    The total arrival order is known up front — it is the sorted union
    of the feed's stamps (``(time, global_index)`` is unique) — but
    alerts reach the shared queue in whatever order the CE tasks ran.
    A reorder buffer holds early arrivals; alerts are released to the
    AD exactly in stamp order, so the displayed sequence is independent
    of task scheduling.  Consumes one CLOSE per CE, then verifies the
    order was fully released.
    """
    order = [
        (ce_index, position)
        for _, ce_index, position in sorted(
            (stamp, ce_index, position)
            for ce_index, per_ce in enumerate(stamps)
            for position, stamp in enumerate(per_ce)
        )
    ]
    result = MergeResult()
    buffer: dict[tuple[int, int], StampedAlert] = {}
    released = 0
    closes = 0
    while closes < len(stamps):
        item = await alerts.get()
        if item is CLOSE:
            closes += 1
            continue
        buffer[(item.ce_index, item.position)] = item
        if len(buffer) > result.peak_reorder:
            result.peak_reorder = len(buffer)
        while released < len(order) and order[released] in buffer:
            stamped = buffer.pop(order[released])
            released += 1
            result.arrivals.append(stamped.alert)
            if algorithm.offer(stamped.alert):
                result.display_latencies_ns.append(clock() - stamped.ingest_ns)
    if released != len(order) or buffer:
        raise FeedMismatchError(
            f"merge drained after releasing {released}/{len(order)} stamped "
            f"alerts ({len(buffer)} stranded in the reorder buffer)"
        )
    return result
