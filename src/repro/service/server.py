"""The online monitoring service: sockets, tasks, queues, drain.

:class:`MonitorService` listens on a local TCP socket and speaks the
framed feed protocol (:mod:`repro.service.feed`).  Each connection gets
its own pipeline::

    socket reader ──ingest──▶ router ──per-CE──▶ CE replicas
                                                     │ (shared, stamped)
                                 result frame ◀── AD merge

Every hop is a :class:`~repro.service.queues.BoundedQueue`; when a
downstream stage lags, ``put`` suspends and the stall reaches the socket
reader, which simply stops reading — TCP flow control then slows the
client.  That is the whole load-leveling story: bounded memory, nothing
dropped, producers paced to the slowest consumer.

Shutdown is a graceful drain, not an abort: the client's ``end`` message
closes the ingest queue, the CLOSE sentinel propagates stage by stage
(router → CE queues → shared alert queue), each stage exits only after
consuming everything enqueued before its close, and the handler replies
with a single ``result`` frame — displayed alerts, verdicts, counters,
latency percentiles — once the merge task has released every stamped
alert.  :meth:`MonitorService.stop` likewise waits for in-flight
connections before closing the listener.

:class:`AsyncioServiceRuntime` wraps the whole client/server round trip
behind the :class:`~repro.service.runtime.Runtime` interface so the
conformance harness can diff it against the simulator kernels.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any

from repro.core.serialization import alert_canonical_line, alert_from_json
from repro.core.wire import FrameDecoder
from repro.observability.tracer import CountersTracer
from repro.service.consumers import (
    Pace,
    ad_merge,
    ce_replica,
    drain_idle_shard,
    route_updates,
    shard_front,
)
from repro.service.feed import (
    FEED_SCHEMA,
    FeedSchemaError,
    UpdateFeed,
    decode_message,
    encode_message,
    feed_messages,
)
from repro.service.queues import BoundedQueue
from repro.service.runtime import FeedMismatchError, FeedResult

__all__ = [
    "ServiceConfig",
    "ServiceError",
    "MonitorService",
    "execute_feed",
    "AsyncioServiceRuntime",
]

_READ_CHUNK = 1 << 16


class ServiceError(RuntimeError):
    """The service reported a failure for this feed."""


@dataclass(frozen=True)
class ServiceConfig:
    """Listener address and pipeline sizing."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port is on ``MonitorService.port``.
    port: int = 0
    #: Capacity of every inter-stage queue.
    queue_capacity: int = 64
    #: Throttle-reporting mark; None = ¾ of capacity (so load-leveling
    #: is observable before the hard stall).
    high_water: int | None = None
    #: Shard count of the consistent-hash ring.  1 = the unsharded
    #: pipeline; >1 inserts the tenant-aware shard front (per-shard
    #: ingest queues, the condition's home shard runs the CE/AD
    #: pipeline, idle shards only participate in the drain).  Sharding
    #: is semantics-neutral: the result frame is byte-identical for
    #: every shard count, which the conformance matrix enforces.
    shards: int = 1
    #: Virtual nodes per shard on the ring (balance knob).
    virtual_nodes: int = 64
    #: Seed of the ring's hash positions.
    ring_seed: int = 0

    def effective_high_water(self) -> int:
        if self.high_water is not None:
            return self.high_water
        return max(1, (self.queue_capacity * 3) // 4)

    def shard_config(self):
        """The ring config this service places conditions on, or None
        when unsharded."""
        if self.shards <= 1:
            return None
        from repro.sharding.ring import ShardConfig

        return ShardConfig(
            shards=self.shards,
            virtual_nodes=self.virtual_nodes,
            ring_seed=self.ring_seed,
        )


class MonitorService:
    """One listening service instance (use as ``await start()`` … ``stop()``)."""

    def __init__(
        self, config: ServiceConfig | None = None, *, pace: Pace | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        #: Test hook threaded through to every CE replica.
        self.pace = pace
        #: Server-lifetime counter aggregate (per-connection tracers merge
        #: in at drain).
        self.counters = CountersTracer()
        self.connections_handled = 0
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        """Graceful drain: finish in-flight connections, then stop listening."""
        if self._server is None:
            return
        self._server.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None

    async def serve_until(self, *, once: bool = False) -> None:
        """Run until cancelled, or (``once``) until one connection finishes."""
        if self._server is None:
            await self.start()
        target = self.connections_handled + 1
        try:
            while True:
                await asyncio.sleep(0.05)
                if once and self.connections_handled >= target and not self._handlers:
                    return
        finally:
            await self.stop()

    # -- per-connection pipeline ---------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            try:
                result = await self._run_pipeline(reader)
                writer.write(encode_message({"type": "result", **result}))
            except Exception as exc:  # reported to the client, not fatal
                writer.write(
                    encode_message({"type": "error", "error": _describe(exc)})
                )
            await writer.drain()
        finally:
            self.connections_handled += 1
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _run_pipeline(self, reader: asyncio.StreamReader) -> dict[str, Any]:
        from repro.displayers.registry import make_ad
        from repro.core.evaluator import ConditionEvaluator
        from repro.props.report import evaluate_run

        decoder = FrameDecoder()
        pending: list[dict[str, Any]] = []

        async def next_message() -> dict[str, Any]:
            while not pending:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    decoder.close()  # raises FrameError if mid-frame
                    raise FeedSchemaError(
                        "connection closed before the feed's end message"
                    )
                pending.extend(map(decode_message, decoder.feed(data)))
            return pending.pop(0)

        hello = await next_message()
        if hello["type"] != "hello":
            raise FeedSchemaError(f"expected hello, got {hello['type']!r}")
        if hello.get("schema") != FEED_SCHEMA:
            raise FeedSchemaError(
                f"unsupported feed schema {hello.get('schema')!r}"
            )
        spec = hello["spec"]
        stamps = tuple(
            tuple((float(t), int(i)) for t, i in per_ce)
            for per_ce in hello["stamps"]
        )

        from repro.engine.spec import TrialSpec

        condition = TrialSpec(**spec).resolve_scenario().make_condition()
        algorithm = make_ad(spec["algorithm"], condition)
        from repro.core.update import Update

        shard_cfg = self.config.shard_config()
        assignment = None
        if shard_cfg is not None:
            from repro.sharding.router import assign_condition

            assignment = assign_condition(condition, shard_cfg)

        tracer = CountersTracer()
        capacity = self.config.queue_capacity
        high_water = self.config.effective_high_water()

        def queue(name: str) -> BoundedQueue:
            return BoundedQueue(
                name, capacity, high_water=high_water, tracer=tracer
            )

        ingest = queue("ingest")
        shard_queues: list[BoundedQueue] = []
        if assignment is not None:
            shard_queues = [
                queue(f"shard{index}") for index in range(shard_cfg.shards)
            ]
        ce_queues = [queue(f"ce{i + 1}") for i in range(len(stamps))]
        alert_queue = queue("alerts")
        evaluators = [
            ConditionEvaluator(condition, source=f"CE{i + 1}")
            for i in range(len(stamps))
        ]

        front_task = None
        idle_tasks: list[asyncio.Task] = []
        async with asyncio.TaskGroup() as group:
            if assignment is not None:
                # Tenant front: deliveries fan out to per-shard ingest
                # queues; only the condition's home shard evaluates, the
                # rest drain (and must stay empty — one hosted condition).
                front_task = group.create_task(
                    shard_front(ingest, shard_queues, assignment.routes)
                )
                idle_tasks = [
                    group.create_task(
                        drain_idle_shard(index, shard_queues[index])
                    )
                    for index in range(shard_cfg.shards)
                    if index != assignment.home
                ]
                ce_source = shard_queues[assignment.home]
            else:
                ce_source = ingest
            group.create_task(route_updates(ce_source, ce_queues))
            for index, evaluator in enumerate(evaluators):
                group.create_task(
                    ce_replica(
                        index,
                        evaluator,
                        stamps[index],
                        ce_queues[index],
                        alert_queue,
                        pace=self.pace,
                    )
                )
            merge_task = group.create_task(
                ad_merge(algorithm, stamps, alert_queue)
            )
            while True:
                message = await next_message()
                if message["type"] == "end":
                    await ingest.close()
                    break
                if message["type"] != "delivery":
                    raise FeedSchemaError(
                        f"unexpected message {message['type']!r} mid-feed"
                    )
                update = message["update"]
                await ingest.put(
                    (
                        int(message["ce"]),
                        Update(
                            str(update["var"]),
                            int(update["seqno"]),
                            float(update["value"]),
                        ),
                        time.monotonic_ns(),
                    )
                )

        merge = merge_task.result()
        displayed = algorithm.output
        report = evaluate_run(
            condition,
            tuple(evaluator.received for evaluator in evaluators),
            displayed,
        )
        for stage_queue in [ingest, *shard_queues, *ce_queues, alert_queue]:
            tracer.merge(stage_queue.stats.as_counters(stage_queue.name))
        result_extra: dict[str, Any] = {}
        if assignment is not None:
            front = front_task.result()
            stray = sum(task.result() for task in idle_tasks)
            if stray:
                raise FeedMismatchError(
                    f"{stray} deliveries reached shards hosting no "
                    "condition — the shard front misrouted"
                )
            shard_counts = {
                f"shard/route/shard{index}": count
                for index, count in enumerate(front.forwarded)
                if count
            }
            if front.dropped:
                shard_counts["shard/drop/front"] = front.dropped
            tracer.merge(shard_counts)
            result_extra["sharding"] = assignment.summary()
        tracer.emit(0.0, "service", "drain", "pipeline")
        self.counters.merge(tracer)
        return {
            "displayed": [alert_canonical_line(a) for a in displayed],
            "verdicts": report.summary,
            "counters": tracer.as_dict(),
            "latency_ms": _latency_percentiles(merge.display_latencies_ns),
            "peak_reorder": merge.peak_reorder,
            **result_extra,
        }


def _describe(exc: BaseException) -> str:
    """Flatten TaskGroup exception groups to their first leaf message."""
    if isinstance(exc, BaseExceptionGroup):
        leaf = exc.exceptions[0]
        return _describe(leaf)
    return f"{type(exc).__name__}: {exc}"


def _latency_percentiles(latencies_ns: list[int]) -> dict[str, float]:
    if not latencies_ns:
        return {}
    from repro.accel import percentile

    millis = [ns / 1e6 for ns in latencies_ns]
    return {
        "p50": percentile(millis, 50.0),
        "p99": percentile(millis, 99.0),
        "max": max(millis),
    }


# -- client ------------------------------------------------------------------

async def execute_feed(
    feed: UpdateFeed, host: str, port: int, *, runtime_name: str = "asyncio"
) -> FeedResult:
    """Stream ``feed`` to a running service; await its result frame."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for message in feed_messages(feed):
            writer.write(encode_message(message))
            await writer.drain()
        decoder = FrameDecoder()
        payloads: list[bytes] = []
        while not payloads:
            data = await reader.read(_READ_CHUNK)
            if not data:
                decoder.close()
                raise ServiceError("service closed the connection silently")
            payloads.extend(decoder.feed(data))
        reply = decode_message(payloads[0])
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
    if reply["type"] == "error":
        raise ServiceError(reply["error"])
    if reply["type"] != "result":
        raise ServiceError(f"unexpected reply {reply['type']!r}")
    return FeedResult(
        runtime=runtime_name,
        displayed=tuple(
            alert_from_json(json.loads(line)) for line in reply["displayed"]
        ),
        verdicts=dict(reply["verdicts"]),
        counters=dict(reply.get("counters", {})),
        latency_ms=dict(reply.get("latency_ms", {})),
    )


class AsyncioServiceRuntime:
    """The full socket round trip as a :class:`Runtime`.

    Starts an ephemeral-port service, streams the feed through it as a
    client, and returns the service's result — so conformance checks
    exercise the real reader/router/replica/merge/drain path, not a
    shortcut.
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, pace: Pace | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.pace = pace
        self.name = (
            f"asyncio[{self.config.shards}]"
            if self.config.shards > 1
            else "asyncio"
        )

    def execute(self, feed: UpdateFeed) -> FeedResult:
        return asyncio.run(self.execute_async(feed))

    async def execute_async(self, feed: UpdateFeed) -> FeedResult:
        service = MonitorService(self.config, pace=self.pace)
        await service.start()
        try:
            return await execute_feed(
                feed, service.host, service.port, runtime_name=self.name
            )
        finally:
            await service.stop()
