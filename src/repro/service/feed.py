"""Recorded update feeds — the input artifact every runtime replays.

A feed is what actually *happened* on the front of one monitored run:
the per-CE update delivery streams (post loss, post reordering, post
crash — exactly ``U_i``) plus, per CE, the back-link arrival stamps
``(arrival_time, global_index)`` of each alert that CE will raise.  The
stamps are the scheduler's contribution to a run's semantics: merged
into a total order they reproduce the kernel's AD arrival interleaving,
so a runtime that evaluates the deliveries and merges by stamp must
display byte-for-byte the same alert sequence as the simulator.

Feeds are recorded from a :class:`~repro.engine.spec.TrialSpec` (which
fully determines them), persist as JSONL (``repro.feed/1``), and stream
over sockets as length-prefixed :mod:`repro.core.wire` frames carrying
canonical JSON messages::

    {"type": "hello", "schema": "repro.feed/1", "spec": ..., "stamps": ...}
    {"type": "delivery", "ce": 0, "update": {"var": "x", "seqno": 1, ...}}
    ...
    {"type": "end"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.serialization import update_from_json, update_to_json
from repro.core.update import Update
from repro.core.wire import encode_frame

__all__ = [
    "FEED_SCHEMA",
    "FeedSchemaError",
    "UpdateFeed",
    "feed_from_run",
    "record_feed",
    "load_feed",
    "loads_feed",
    "feed_messages",
    "encode_message",
    "decode_message",
]

FEED_SCHEMA = "repro.feed/1"


class FeedSchemaError(ValueError):
    """Raised when a feed file/stream does not match the supported schema."""


def encode_message(message: dict[str, Any]) -> bytes:
    """One protocol message as a length-prefixed canonical-JSON frame."""
    return encode_frame(
        json.dumps(message, sort_keys=True, separators=(",", ":")).encode()
    )


def decode_message(payload: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_message` (for one decoded frame payload)."""
    message = json.loads(payload.decode())
    if not isinstance(message, dict) or "type" not in message:
        raise FeedSchemaError(f"malformed service message: {payload[:80]!r}")
    return message


@dataclass(frozen=True)
class UpdateFeed:
    """One recorded run's deliveries and arrival stamps."""

    #: The canonical :class:`~repro.engine.spec.TrialSpec` dict that
    #: produced (and deterministically reproduces) this feed.
    spec: dict[str, Any]
    #: ``(ce_index, update)`` in dispatch order; the subsequence for one
    #: CE is exactly its ``U_i`` in delivery order.
    deliveries: tuple[tuple[int, Update], ...]
    #: Per CE, one ``(arrival_time, global_index)`` stamp per alert the
    #: CE raises, in raise order (back links are FIFO).
    stamps: tuple[tuple[tuple[float, int], ...], ...]

    @property
    def replication(self) -> int:
        return len(self.stamps)

    @property
    def total_alerts(self) -> int:
        return sum(len(per_ce) for per_ce in self.stamps)

    def per_ce(self) -> tuple[tuple[Update, ...], ...]:
        """The deliveries regrouped into per-CE streams (each CE's U_i)."""
        streams: list[list[Update]] = [[] for _ in range(self.replication)]
        for ce_index, update in self.deliveries:
            streams[ce_index].append(update)
        return tuple(tuple(stream) for stream in streams)

    def make_spec(self, **overrides: Any):
        """The feed's TrialSpec, optionally with fields overridden."""
        from repro.engine.spec import TrialSpec

        return TrialSpec(**{**self.spec, **overrides})

    def condition(self):
        """The monitored condition, re-resolved from the spec."""
        return self.make_spec().resolve_scenario().make_condition()

    # -- persistence ---------------------------------------------------------
    def to_jsonl(self) -> str:
        lines = [
            json.dumps(
                {"schema": FEED_SCHEMA, "record": "header", "spec": self.spec},
                sort_keys=True, separators=(",", ":"),
            )
        ]
        for ce_index, per_ce in enumerate(self.stamps):
            lines.append(json.dumps(
                {
                    "record": "stamps",
                    "ce": ce_index,
                    "stamps": [[time, seq] for time, seq in per_ce],
                },
                sort_keys=True, separators=(",", ":"),
            ))
        for ce_index, update in self.deliveries:
            lines.append(json.dumps(
                {
                    "record": "delivery",
                    "ce": ce_index,
                    "update": update_to_json(update),
                },
                sort_keys=True, separators=(",", ":"),
            ))
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path


def feed_from_run(spec: dict[str, Any], run) -> UpdateFeed:
    """Project a completed :class:`RunResult` onto its update feed.

    Dispatch order interleaves the per-CE delivery streams round-robin —
    the cross-CE interleaving is semantically irrelevant (CEs share no
    state until the AD), but a deterministic choice keeps recorded feeds
    reproducible byte for byte.
    """
    stamps = run.arrival_stamps()
    for ce_index, per_ce in enumerate(stamps):
        if len(per_ce) != len(run.ce_alerts[ce_index]):
            raise ValueError(
                f"CE{ce_index + 1} raised {len(run.ce_alerts[ce_index])} "
                f"alerts but {len(per_ce)} reached the AD — a feed needs "
                "every alert delivered (run the workload to quiescence)"
            )
    deliveries: list[tuple[int, Update]] = []
    streams = run.received
    for position in range(max((len(s) for s in streams), default=0)):
        for ce_index, stream in enumerate(streams):
            if position < len(stream):
                deliveries.append((ce_index, stream[position]))
    return UpdateFeed(spec=spec, deliveries=tuple(deliveries), stamps=stamps)


def record_feed(spec) -> UpdateFeed:
    """Execute a :class:`~repro.engine.spec.TrialSpec`; record its feed."""
    import json as _json
    from dataclasses import asdict

    from repro.workloads.scenarios import run_scenario

    run = run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        faults=spec.faults,
        kernel=spec.kernel,
        membership=spec.membership,
        sharding=spec.sharding,
    )
    canonical = _json.loads(_json.dumps(asdict(spec), sort_keys=True))
    return feed_from_run(canonical, run)


def loads_feed(text: str) -> UpdateFeed:
    """Parse the JSONL form, validating the schema version."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise FeedSchemaError("empty feed")
    header = json.loads(lines[0])
    if header.get("record") != "header":
        raise FeedSchemaError("first line is not a feed header")
    if header.get("schema") != FEED_SCHEMA:
        raise FeedSchemaError(
            f"unsupported feed schema {header.get('schema')!r} "
            f"(supported: {FEED_SCHEMA!r})"
        )
    stamps: dict[int, tuple[tuple[float, int], ...]] = {}
    deliveries: list[tuple[int, Update]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        obj = json.loads(line)
        record = obj.get("record")
        if record == "stamps":
            stamps[int(obj["ce"])] = tuple(
                (float(time), int(seq)) for time, seq in obj["stamps"]
            )
        elif record == "delivery":
            deliveries.append((int(obj["ce"]), update_from_json(obj["update"])))
        else:
            raise FeedSchemaError(f"line {lineno}: unknown record {record!r}")
    if sorted(stamps) != list(range(len(stamps))):
        raise FeedSchemaError(f"stamp records cover CEs {sorted(stamps)}")
    return UpdateFeed(
        spec=header["spec"],
        deliveries=tuple(deliveries),
        stamps=tuple(stamps[i] for i in range(len(stamps))),
    )


def load_feed(path: str | Path) -> UpdateFeed:
    return loads_feed(Path(path).read_text())


def feed_messages(feed: UpdateFeed) -> Iterator[dict[str, Any]]:
    """The protocol messages a client streams to serve this feed."""
    yield {
        "type": "hello",
        "schema": FEED_SCHEMA,
        "spec": feed.spec,
        "stamps": [
            [[time, seq] for time, seq in per_ce] for per_ce in feed.stamps
        ],
    }
    for ce_index, update in feed.deliveries:
        yield {
            "type": "delivery",
            "ce": ce_index,
            "update": update_to_json(update),
        }
    yield {"type": "end"}
