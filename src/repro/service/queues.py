"""Bounded inter-stage queues with backpressure accounting.

Every hop in the service pipeline (socket reader → router → CE replicas
→ AD merge) crosses one :class:`BoundedQueue`.  The bound is the
load-leveling mechanism: a slow downstream stage fills its queue, the
``put`` side suspends, and the stall propagates hop by hop back to the
socket — where the OS's TCP flow control finally slows the feeding
client.  No stage ever buffers unboundedly and nothing is dropped.

On top of ``asyncio.Queue`` this adds:

* a **CLOSE sentinel** protocol — the producer's end-of-stream marker,
  forwarded stage by stage so the pipeline drains in order (every item
  enqueued before the close is consumed before the consumer exits);
* **high-water throttling observability** — when occupancy crosses the
  high-water mark the queue emits ``service/throttle-on/<name>`` through
  the run's tracer (and ``throttle-off`` when it falls back below the
  low-water mark), so tests and the benchmark can see backpressure
  engage without measuring timings;
* per-queue :class:`QueueStats` (puts, gets, peak occupancy, throttle
  episodes) — merged into the service's counters at drain time.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CLOSE", "QueueStats", "BoundedQueue"]


class _Close:
    """End-of-stream sentinel; identity-compared, never data."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<CLOSE>"


#: The unique end-of-stream marker producers enqueue when done.
CLOSE: Any = _Close()


@dataclass
class QueueStats:
    """Lifetime accounting for one queue (CLOSE sentinels excluded)."""

    puts: int = 0
    gets: int = 0
    peak: int = 0
    #: Number of times occupancy rose to the high-water mark.
    throttle_episodes: int = 0
    #: Number of ``put`` calls that had to suspend on a full queue.
    blocked_puts: int = 0

    def as_counters(self, name: str) -> dict[str, int]:
        """Flat ``service/<kind>/<name>`` counters, zeros elided."""
        counters = {
            f"service/put/{name}": self.puts,
            f"service/get/{name}": self.gets,
            f"service/peak/{name}": self.peak,
            f"service/throttle-on/{name}": self.throttle_episodes,
            f"service/blocked-put/{name}": self.blocked_puts,
        }
        return {key: value for key, value in counters.items() if value}


class BoundedQueue:
    """An ``asyncio.Queue`` with a hard capacity and throttle telemetry.

    ``high_water`` defaults to the capacity: throttling is then reported
    exactly when a ``put`` finds the queue full.  A lower mark reports
    earlier — the service uses ~¾ capacity so the benchmark can observe
    load-leveling before the hard stall.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        *,
        high_water: int | None = None,
        tracer: Any | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.high_water = capacity if high_water is None else high_water
        if not 1 <= self.high_water <= capacity:
            raise ValueError(
                f"high_water must be in [1, {capacity}], got {self.high_water}"
            )
        # Hysteresis: stop reporting only once clearly below the mark.
        self.low_water = max(0, self.high_water // 2)
        self.tracer = tracer
        self.stats = QueueStats()
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=capacity)
        self._throttled = False

    def __len__(self) -> int:
        return self._queue.qsize()

    @property
    def throttled(self) -> bool:
        """True while occupancy is at/above high-water (with hysteresis)."""
        return self._throttled

    def _emit(self, kind: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(0.0, "service", kind, self.name)

    async def put(self, item: Any) -> None:
        """Enqueue, suspending while the queue is full (backpressure)."""
        if item is not CLOSE:
            if self._queue.full():
                self.stats.blocked_puts += 1
            self.stats.puts += 1
        await self._queue.put(item)
        size = self._queue.qsize()
        if size > self.stats.peak:
            self.stats.peak = size
        if size >= self.high_water and not self._throttled:
            self._throttled = True
            self.stats.throttle_episodes += 1
            self._emit("throttle-on")

    async def get(self) -> Any:
        item = await self._queue.get()
        if item is not CLOSE:
            self.stats.gets += 1
        if self._throttled and self._queue.qsize() <= self.low_water:
            self._throttled = False
            self._emit("throttle-off")
        return item

    async def close(self) -> None:
        """Enqueue the end-of-stream sentinel (still subject to the bound)."""
        await self._queue.put(CLOSE)
