"""The ``Runtime`` interface — one semantics, several execution engines.

A *runtime* consumes a recorded :class:`~repro.service.feed.UpdateFeed`
and produces the run's observable output: the displayed alert sequence
``A`` and the property verdicts.  The CE/AD semantic core (evaluate each
CE's delivery stream with a :class:`~repro.core.evaluator.ConditionEvaluator`,
merge the alert streams in arrival-stamp order, filter through the AD
algorithm) is what the paper specifies; *how* it executes — inside a
discrete-event scheduler, as straight-line code, or as asyncio tasks
behind sockets — is an engine choice that must not be observable.  Three
engines implement the interface:

* :class:`KernelRuntime` — the existing simulator kernels ("object" or
  "array"): re-executes the feed's TrialSpec and integrity-checks that
  the regenerated deliveries match the feed byte for byte.
* :class:`DirectRuntime` — the scheduler-free synchronous core; the
  smallest thing that can be right, and the reference the service is
  compared against in fast unit tests.
* :class:`~repro.service.server.AsyncioServiceRuntime` — the online
  monitoring service: real sockets, tasks, bounded queues.

:func:`check_conformance` runs a feed through all of them and compares
the *byte renderings* (:meth:`FeedResult.digest`) plus verdicts — the
differential harness the test archetype of this subsystem is built on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.core.alert import Alert
from repro.core.serialization import alert_canonical_line
from repro.core.wire import encode_frame
from repro.service.feed import UpdateFeed, record_feed

__all__ = [
    "FeedMismatchError",
    "FeedResult",
    "Runtime",
    "KernelRuntime",
    "DirectRuntime",
    "merge_stamped",
    "ConformanceReport",
    "check_conformance",
    "default_runtimes",
]


class FeedMismatchError(ValueError):
    """A runtime's inputs disagree with the feed it was asked to replay."""


@dataclass(frozen=True)
class FeedResult:
    """What one runtime observed while executing a feed."""

    #: Which runtime produced this (e.g. ``"kernel:array"``, ``"asyncio"``).
    runtime: str
    #: The displayed alert sequence A.
    displayed: tuple[Alert, ...]
    #: ``PropertyReport.summary`` — ordered/complete/consistent verdicts.
    verdicts: dict[str, bool | None]
    #: Observability counters (``"stage/kind/node"`` → count); engines
    #: differ here by design (the service adds ``service/...`` stages).
    counters: dict[str, int] = field(default_factory=dict, compare=False)
    #: Update→alert latency percentiles in ms (service runtime only).
    latency_ms: dict[str, float] = field(default_factory=dict, compare=False)

    def displayed_bytes(self) -> bytes:
        """The displayed sequence as concatenated canonical wire frames.

        This is the conformance carrier: two runtimes conform iff these
        byte strings are identical.
        """
        return b"".join(
            encode_frame(alert_canonical_line(alert).encode())
            for alert in self.displayed
        )

    def digest(self) -> str:
        return hashlib.sha256(self.displayed_bytes()).hexdigest()


@runtime_checkable
class Runtime(Protocol):
    """Anything that can execute an update feed to a :class:`FeedResult`."""

    name: str

    def execute(self, feed: UpdateFeed) -> FeedResult: ...


def merge_stamped(
    per_ce_alerts: tuple[tuple[Alert, ...], ...],
    stamps: tuple[tuple[tuple[float, int], ...], ...],
) -> list[Alert]:
    """Merge per-CE alert streams into the AD arrival order.

    Back links are FIFO, so the k-th stamp of CE *i* stamps the k-th
    alert CE *i* raised; sorting the stamped union by ``(time, index)``
    reproduces the scheduler's interleaving without a scheduler.
    """
    if len(per_ce_alerts) != len(stamps):
        raise FeedMismatchError(
            f"{len(per_ce_alerts)} alert streams but {len(stamps)} stamp "
            "streams"
        )
    stamped: list[tuple[tuple[float, int], Alert]] = []
    for ce_index, (alerts, ce_stamps) in enumerate(zip(per_ce_alerts, stamps)):
        if len(alerts) != len(ce_stamps):
            raise FeedMismatchError(
                f"CE{ce_index + 1} raised {len(alerts)} alerts but the feed "
                f"recorded {len(ce_stamps)} arrival stamps — the deliveries "
                "do not reproduce the recorded run"
            )
        stamped.extend(zip(ce_stamps, alerts))
    stamped.sort(key=lambda pair: pair[0])
    return [alert for _, alert in stamped]


class KernelRuntime:
    """The discrete-event simulator as a :class:`Runtime`.

    Re-executes the feed's TrialSpec on the chosen kernel and checks
    that the regenerated run *is* the recorded feed (same deliveries,
    same stamps) — catching both tampered feeds and any determinism
    drift between recording and replay.
    """

    def __init__(self, kernel: str = "array") -> None:
        self.kernel = kernel
        self.name = f"kernel:{kernel}"

    def execute(self, feed: UpdateFeed) -> FeedResult:
        from repro.observability.tracer import CountersTracer

        spec = feed.make_spec(kernel=self.kernel)
        tracer = CountersTracer()
        from repro.workloads.scenarios import run_scenario

        run = run_scenario(
            spec.resolve_scenario(),
            spec.algorithm,
            spec.seed,
            n_updates=spec.n_updates,
            replication=spec.replication,
            tracer=tracer,
            faults=spec.faults,
            kernel=spec.kernel,
            membership=spec.membership,
            sharding=spec.sharding,
        )
        if run.received != feed.per_ce():
            raise FeedMismatchError(
                f"{self.name}: re-executing the spec delivered different "
                "update streams than the feed records"
            )
        if run.arrival_stamps() != feed.stamps:
            raise FeedMismatchError(
                f"{self.name}: re-executing the spec produced different "
                "arrival stamps than the feed records"
            )
        return FeedResult(
            runtime=self.name,
            displayed=run.displayed,
            verdicts=run.evaluate_properties().summary,
            counters=tracer.as_dict(),
        )


class DirectRuntime:
    """The semantic core run synchronously, with no scheduler at all.

    Evaluate each CE's delivery stream, merge by recorded stamps, filter
    through the AD — a dozen lines that define what every other engine
    must reproduce.
    """

    name = "direct"

    def execute(self, feed: UpdateFeed) -> FeedResult:
        from repro.core.evaluator import ConditionEvaluator
        from repro.displayers.registry import make_ad
        from repro.props.report import evaluate_run

        condition = feed.condition()
        streams = feed.per_ce()
        per_ce_alerts: list[tuple[Alert, ...]] = []
        for ce_index, stream in enumerate(streams):
            evaluator = ConditionEvaluator(condition, source=f"CE{ce_index + 1}")
            for update in stream:
                evaluator.ingest(update)
            per_ce_alerts.append(evaluator.alerts)
        arrivals = merge_stamped(tuple(per_ce_alerts), feed.stamps)
        algorithm = make_ad(feed.spec["algorithm"], condition)
        algorithm.offer_all(arrivals)
        displayed = algorithm.output
        report = evaluate_run(condition, streams, displayed)
        return FeedResult(
            runtime=self.name,
            displayed=displayed,
            verdicts=report.summary,
        )


@dataclass(frozen=True)
class ConformanceReport:
    """The differential comparison of one feed across several runtimes."""

    results: tuple[FeedResult, ...]

    @property
    def identical(self) -> bool:
        """True iff every runtime displayed identical bytes and verdicts."""
        if not self.results:
            return True
        reference = self.results[0]
        return all(
            result.digest() == reference.digest()
            and result.verdicts == reference.verdicts
            for result in self.results[1:]
        )

    @property
    def verdicts(self) -> dict[str, bool | None]:
        return self.results[0].verdicts if self.results else {}

    def first_divergence(self) -> "dict[str, Any] | None":
        """Locate the first point where a runtime leaves the reference.

        A bare digest mismatch says *that* two runtimes diverged but not
        *where*; this walks the displayed sequences alert by alert and
        names the first runtime that differs from ``results[0]``, the
        alert index at which they part ways, each side's canonical line
        at that index (``None`` past the end of the shorter sequence)
        and the source CE of the alert present there.  Verdict-only
        divergences (identical bytes, different property decisions)
        report ``alert_index=None`` with both verdict dicts.  Returns
        ``None`` when the report is conformant.
        """
        if not self.results:
            return None
        reference = self.results[0]
        ref_lines = [
            alert_canonical_line(alert) for alert in reference.displayed
        ]
        for result in self.results[1:]:
            lines = [alert_canonical_line(alert) for alert in result.displayed]
            if lines == ref_lines:
                if result.verdicts == reference.verdicts:
                    continue
                return {
                    "runtime": result.runtime,
                    "reference": reference.runtime,
                    "alert_index": None,
                    "source": None,
                    "reference_line": None,
                    "divergent_line": None,
                    "verdicts": {
                        reference.runtime: reference.verdicts,
                        result.runtime: result.verdicts,
                    },
                }
            for index in range(max(len(ref_lines), len(lines))):
                ref_line = ref_lines[index] if index < len(ref_lines) else None
                line = lines[index] if index < len(lines) else None
                if ref_line == line:
                    continue
                displayed = (
                    reference.displayed
                    if index < len(reference.displayed)
                    else result.displayed
                )
                return {
                    "runtime": result.runtime,
                    "reference": reference.runtime,
                    "alert_index": index,
                    "source": displayed[index].source or None,
                    "reference_line": ref_line,
                    "divergent_line": line,
                }
        return None

    def explain(self) -> str:
        """One-line human verdict; names the first divergence if any."""
        divergence = self.first_divergence()
        if divergence is None:
            count = len(self.results)
            return f"conformant: {count} runtimes byte-identical"
        if divergence["alert_index"] is None:
            return (
                f"{divergence['runtime']} diverges from "
                f"{divergence['reference']}: displayed bytes identical but "
                f"verdicts differ ({divergence['verdicts']})"
            )
        where = f"alert index {divergence['alert_index']}"
        if divergence["source"]:
            where += f" (from {divergence['source']})"
        return (
            f"{divergence['runtime']} diverges from "
            f"{divergence['reference']} at {where}: "
            f"reference displayed {divergence['reference_line']!r}, "
            f"divergent displayed {divergence['divergent_line']!r}"
        )

    def summary(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "divergence": self.first_divergence(),
            "runtimes": {
                result.runtime: {
                    "digest": result.digest(),
                    "displayed": len(result.displayed),
                    "verdicts": result.verdicts,
                }
                for result in self.results
            },
        }


def check_conformance(
    feed: UpdateFeed, runtimes: "list[Runtime] | None" = None
) -> ConformanceReport:
    """Execute ``feed`` on every runtime; compare outputs byte for byte."""
    if runtimes is None:
        runtimes = default_runtimes()
    return ConformanceReport(
        results=tuple(runtime.execute(feed) for runtime in runtimes)
    )


def default_runtimes(include_service: bool = True) -> "list[Runtime]":
    """Both kernels, the direct core and (optionally) the asyncio service."""
    runtimes: list[Runtime] = [
        KernelRuntime("object"),
        KernelRuntime("array"),
        DirectRuntime(),
    ]
    if include_service:
        from repro.service.server import AsyncioServiceRuntime

        runtimes.append(AsyncioServiceRuntime())
    return runtimes


def record_and_check(spec, runtimes: "list[Runtime] | None" = None):
    """Record a fresh feed from ``spec`` and conformance-check it."""
    feed = record_feed(spec)
    return feed, check_conformance(feed, runtimes)
