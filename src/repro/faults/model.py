"""Stochastic fault primitives beyond crash windows.

Three adversaries the link layer can host, all deterministic given the
link's seeded RNG stream:

* :class:`GilbertElliottParams` / :class:`GilbertElliottLoss` — correlated
  burst loss.  A two-state Markov chain (Good/Bad) advances one step per
  datagram; each state has its own loss probability.  Compared with the
  Bernoulli loss of :class:`~repro.simulation.network.LossyFifoLink`,
  bursts concentrate losses in time, which is the regime where one CE can
  miss a whole run of updates while its replica sees them — exactly the
  divergence replication is supposed to mask.
* :class:`DuplicationAdversary` — bounded datagram duplication.  UDP can
  deliver a datagram more than once; the adversary schedules up to
  ``max_copies`` extra copies of a sent message, each with its own delay
  draw.  Copies carry the *same* FIFO tag, so the receiver-side order
  enforcement also deduplicates (at-most-once delivery to the CE).
* :class:`DelaySpikeSchedule` — congestion windows during which every
  message sent on an affected link takes ``factor`` times its sampled
  delay.  Spikes turn front-link FIFO streams bursty and let back-link
  alerts pile up and interleave adversarially at the AD.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

__all__ = [
    "GilbertElliottParams",
    "GilbertElliottLoss",
    "DuplicationAdversary",
    "DelaySpikeSchedule",
]


@dataclass(frozen=True)
class GilbertElliottParams:
    """Parameters of the two-state Gilbert–Elliott loss chain."""

    #: P(Good -> Bad) per datagram.
    good_to_bad: float = 0.0
    #: P(Bad -> Good) per datagram.
    bad_to_good: float = 1.0
    #: Loss probability while in the Good state.
    loss_good: float = 0.0
    #: Loss probability while in the Bad state.
    loss_bad: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("good_to_bad", "bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")

    @property
    def enabled(self) -> bool:
        return self.good_to_bad > 0.0 or self.loss_good > 0.0

    def make_model(self) -> "GilbertElliottLoss":
        """A fresh stateful chain instance for one run."""
        return GilbertElliottLoss(self)


class GilbertElliottLoss:
    """Stateful burst-loss chain, one independent state per RNG stream.

    Links each own a dedicated ``random.Random``; keeping the chain state
    keyed by RNG identity (the :class:`PerLinkSkewDelay` idiom) lets one
    shared model instance give every link its own independent chain while
    staying deterministic in the run seed.  Every call consumes exactly
    two draws from the link's stream: the state transition and the loss
    coin.
    """

    def __init__(self, params: GilbertElliottParams) -> None:
        self.params = params
        #: id(rng) -> True while that link's chain is in the Bad state.
        self._bad: dict[int, bool] = {}

    def dropped(self, rng: Random) -> bool:
        """Advance the chain one datagram; True iff this datagram is lost."""
        params = self.params
        key = id(rng)
        bad = self._bad.get(key, False)
        transition = rng.random()
        if bad:
            if transition < params.bad_to_good:
                bad = False
        else:
            if transition < params.good_to_bad:
                bad = True
        self._bad[key] = bad
        loss_prob = params.loss_bad if bad else params.loss_good
        return rng.random() < loss_prob


@dataclass(frozen=True)
class DuplicationAdversary:
    """Bounded datagram duplication on front links."""

    #: Probability a sent datagram is duplicated at all.
    duplicate_prob: float = 0.0
    #: Maximum extra copies per duplicated datagram (uniform in 1..max).
    max_copies: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_prob <= 1.0:
            raise ValueError(
                f"duplicate_prob must be in [0, 1], got {self.duplicate_prob}"
            )
        if self.max_copies < 1:
            raise ValueError(f"max_copies must be >= 1, got {self.max_copies}")

    @property
    def enabled(self) -> bool:
        return self.duplicate_prob > 0.0

    def draw_copies(self, rng: Random) -> int:
        """Number of extra copies for one datagram (0 = no duplication).

        Always consumes exactly two draws so that enabling/disabling
        duplication is the only thing that shifts a link's RNG stream —
        the copy count never does.
        """
        coin = rng.random()
        extra = rng.randint(1, self.max_copies)
        return extra if coin < self.duplicate_prob else 0


@dataclass(frozen=True)
class DelaySpikeSchedule:
    """Congestion windows multiplying sampled link delays by ``factor``."""

    windows: tuple[tuple[float, float], ...] = ()
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"spike factor must be >= 1, got {self.factor}")
        previous_end = None
        for start, end in self.windows:
            if end < start:
                raise ValueError(f"spike window end {end} before start {start}")
            if previous_end is not None and start < previous_end:
                raise ValueError("spike windows must be sorted and disjoint")
            previous_end = end

    @property
    def enabled(self) -> bool:
        return bool(self.windows) and self.factor > 1.0

    def factor_at(self, time: float) -> float:
        """The delay multiplier in force at simulated ``time``."""
        for start, end in self.windows:
            if start <= time <= end:
                return self.factor
            if start > time:
                break
        return 1.0
