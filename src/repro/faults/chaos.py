"""Chaos sweeps: property survival and alert delivery vs fault intensity.

The paper's availability story (Figure 1) says replication masks CE
downtime; the property tables say the AD algorithms keep their guarantees
on whatever alert stream reaches them.  A chaos sweep measures both at
once under the full fault model: for each (intensity, replication) cell
it runs seeded trials with :class:`~repro.faults.plan.FaultProfile`
scaled to the intensity, then reports

* per-property survival rates (fraction of trials with no violation),
* the minimal violating seed per property — a replayable witness
  (``repro trace record --chaos``), and
* ground-truth alert delivery (missed-alert fractions), whose decrease
  in the replication factor *is* the Figure-1 claim.

Trials fan out through the same :class:`~repro.engine.core.TrialEngine`
as the table grids, so chaos sweeps parallelise for free.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.engine.spec import TrialSpec
from repro.faults.plan import (
    DEFAULT_CHAOS_PROFILE,
    DEFAULT_CHURN_PROFILE,
    FaultProfile,
)
from repro.props.report import PropertyReport

__all__ = [
    "ChaosCell",
    "ChurnCell",
    "chaos_specs",
    "chaos_sweep",
    "churn_specs",
    "churn_sweep",
    "recovery_restores_alerts",
    "replication_reduces_misses",
    "render_chaos_table",
    "render_churn_table",
]

#: Default base seed for chaos sweeps (distinct from the table grids').
CHAOS_BASE_SEED = 20010900

#: The three properties a cell tracks, in display order.
PROPERTIES = ("ordered", "complete", "consistent")


@dataclass(frozen=True)
class ChaosCell:
    """Folded results of one (intensity, replication) sweep point."""

    intensity: float
    replication: int
    trials: int
    #: Fraction of trials with no violation; ``None`` when the property
    #: was never decided (completeness checkers can skip big instances).
    survival: dict[str, float | None]
    #: Minimal violating seed per property (absent = no violation seen).
    witness_seeds: dict[str, int]
    #: Mean ground-truth missed-alert fraction over the cell's trials.
    mean_miss_fraction: float
    #: Fraction of trials in which at least one ground-truth alert was
    #: never displayed.
    any_miss_fraction: float


def chaos_specs(
    intensity: float,
    replication: int,
    trials: int,
    row: str = "non-historical",
    matrix: str = "single",
    algorithm: str = "AD-4",
    n_updates: int = 30,
    base_seed: int = CHAOS_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHAOS_PROFILE,
    kernel: str = "array",
) -> list[TrialSpec]:
    """The trial specs of one sweep cell, in ascending-seed order.

    Seed derivation mirrors :func:`repro.engine.plan.plan_table`: a
    stable crc32 cell offset, so cells never share seeds and any witness
    seed pins down its exact trial.
    """
    cell = f"chaos/{matrix}/{row}/{algorithm}/{replication}/{intensity:g}"
    offset = zlib.crc32(cell.encode()) % 100_000
    faults = profile.scaled(intensity)
    if faults.is_clean:
        faults = None
    return [
        TrialSpec(
            matrix,
            row,
            algorithm,
            base_seed + offset + trial,
            n_updates,
            replication=replication,
            faults=faults,
            collect_delivery=True,
            kernel=kernel,
        )
        for trial in range(trials)
    ]


def _fold_cell(
    intensity: float,
    replication: int,
    specs: Sequence[TrialSpec],
    reports: Sequence[PropertyReport],
) -> ChaosCell:
    violations = dict.fromkeys(PROPERTIES, 0)
    checked = dict.fromkeys(PROPERTIES, 0)
    witnesses: dict[str, int] = {}
    total_miss = 0.0
    runs_with_miss = 0
    for spec, report in zip(specs, reports):
        for prop, verdict in report.summary.items():
            if verdict is None:
                continue
            checked[prop] += 1
            if not verdict:
                violations[prop] += 1
                if prop not in witnesses or spec.seed < witnesses[prop]:
                    witnesses[prop] = spec.seed
        delivery = report.delivery or {}
        expected = delivery.get("expected", 0)
        missed = expected - delivery.get("delivered", 0)
        if expected:
            total_miss += missed / expected
        if missed > 0:
            runs_with_miss += 1
    trials = len(specs)
    survival: dict[str, float | None] = {
        prop: (
            None
            if checked[prop] == 0
            else 1.0 - violations[prop] / checked[prop]
        )
        for prop in PROPERTIES
    }
    return ChaosCell(
        intensity=intensity,
        replication=replication,
        trials=trials,
        survival=survival,
        witness_seeds=witnesses,
        mean_miss_fraction=total_miss / trials if trials else 0.0,
        any_miss_fraction=runs_with_miss / trials if trials else 0.0,
    )


def chaos_sweep(
    intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    replications: Sequence[int] = (1, 2, 3),
    trials: int = 30,
    row: str = "non-historical",
    matrix: str = "single",
    algorithm: str = "AD-4",
    n_updates: int = 30,
    base_seed: int = CHAOS_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHAOS_PROFILE,
    engine=None,
    kernel: str = "array",
) -> list[ChaosCell]:
    """Sweep fault intensity × replication; one folded cell per point.

    ``engine`` is an optional :class:`~repro.engine.core.TrialEngine`;
    without one, trials execute inline.  Either way the verdicts are
    identical — the engine only changes where trials run.
    """
    cells: list[ChaosCell] = []
    for intensity in intensities:
        for replication in replications:
            specs = chaos_specs(
                intensity,
                replication,
                trials,
                row=row,
                matrix=matrix,
                algorithm=algorithm,
                n_updates=n_updates,
                base_seed=base_seed,
                profile=profile,
                kernel=kernel,
            )
            if engine is not None:
                reports = engine.run(specs)
            else:
                reports = [spec.execute() for spec in specs]
            cells.append(_fold_cell(intensity, replication, specs, reports))
    return cells


def replication_reduces_misses(
    cells: Sequence[ChaosCell], tolerance: float = 0.02
) -> bool:
    """The Figure-1 claim over a sweep: at every intensity, adding a CE
    never increases the missed-alert fraction by more than ``tolerance``
    (sampling slack), and it strictly helps somewhere whenever any
    single-CE cell misses alerts at all."""
    by_intensity: dict[float, list[ChaosCell]] = {}
    for cell in cells:
        by_intensity.setdefault(cell.intensity, []).append(cell)
    helped = False
    needs_help = False
    for intensity, group in by_intensity.items():
        group = sorted(group, key=lambda c: c.replication)
        if len(group) < 2:
            continue
        for lower, higher in zip(group, group[1:]):
            if higher.mean_miss_fraction > lower.mean_miss_fraction + tolerance:
                return False
        base, best = group[0], group[-1]
        if base.mean_miss_fraction > tolerance:
            needs_help = True
            if best.mean_miss_fraction < base.mean_miss_fraction:
                helped = True
    return helped or not needs_help


@dataclass(frozen=True)
class ChurnCell:
    """Folded results of one churn sweep point.

    ``detection_timeout is None`` marks the crash-without-recovery
    baseline (membership off) the other cells of the same intensity are
    judged against.
    """

    intensity: float
    detection_timeout: float | None
    catchup_latency: float
    trials: int
    survival: dict[str, float | None]
    witness_seeds: dict[str, int]
    mean_miss_fraction: float
    any_miss_fraction: float
    #: Fraction of trials that spent any time below quorum.
    degraded_runs: float
    #: Mean fraction of the horizon spent below quorum.
    degraded_fraction: float
    #: Property violations split by churn context (run-level).
    violations_degraded: int
    violations_steady: int
    #: Updates re-acquired via catch-up, summed over the cell's trials.
    caught_up: int
    mean_detection_latency: float | None
    mean_time_to_recover: float | None


def churn_specs(
    intensity: float,
    detection_timeout: float | None,
    catchup_latency: float,
    trials: int,
    row: str = "aggressive",
    matrix: str = "single",
    algorithm: str = "pass",
    n_updates: int = 14,
    replication: int = 2,
    base_seed: int = CHAOS_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHURN_PROFILE,
    kernel: str = "array",
    catchup_source: str = "peer-then-log",
) -> list[TrialSpec]:
    """The trial specs of one churn sweep cell, in ascending-seed order.

    The cell key — and therefore the seed block — deliberately excludes
    the membership knobs: every (detection_timeout, catchup_latency)
    point at one intensity runs the *same* seeds over the same
    materialized crash schedules, so differences between cells are pure
    recovery-policy effects, never sampling noise.  Front loss is forced
    to zero so crashes are the only divergence source.
    """
    from repro.membership.config import MembershipConfig

    cell = f"churn/{matrix}/{row}/{algorithm}/{replication}/{intensity:g}"
    offset = zlib.crc32(cell.encode()) % 100_000
    faults = profile.scaled(intensity)
    if faults.is_clean:
        faults = None
    membership = None
    if detection_timeout is not None:
        membership = MembershipConfig(
            detection_timeout=detection_timeout,
            catchup_latency=catchup_latency,
            catchup_source=catchup_source,
        )
    return [
        TrialSpec(
            matrix,
            row,
            algorithm,
            base_seed + offset + trial,
            n_updates,
            replication=replication,
            front_loss=0.0,
            faults=faults,
            collect_delivery=True,
            kernel=kernel,
            membership=membership,
        )
        for trial in range(trials)
    ]


def _fold_churn_cell(
    intensity: float,
    detection_timeout: float | None,
    catchup_latency: float,
    specs: Sequence[TrialSpec],
    reports: Sequence[PropertyReport],
) -> ChurnCell:
    base = _fold_cell(intensity, 0, specs, reports)
    degraded_runs = 0
    degraded_fraction = 0.0
    violations_degraded = 0
    violations_steady = 0
    caught_up = 0
    detection_latencies: list[float] = []
    recovery_latencies: list[float] = []
    for report in reports:
        churn = report.churn
        violated = sum(
            1 for verdict in report.summary.values() if verdict is False
        )
        if churn is None:
            violations_steady += violated
            continue
        if churn["below_quorum"]:
            degraded_runs += 1
            violations_degraded += violated
        else:
            violations_steady += violated
        degraded_fraction += churn["degraded_fraction"]
        caught_up += churn["caught_up"]
        if churn["mean_detection_latency"] is not None:
            detection_latencies.append(churn["mean_detection_latency"])
        if churn["mean_time_to_recover"] is not None:
            recovery_latencies.append(churn["mean_time_to_recover"])
    trials = len(specs)
    return ChurnCell(
        intensity=intensity,
        detection_timeout=detection_timeout,
        catchup_latency=catchup_latency,
        trials=trials,
        survival=base.survival,
        witness_seeds=base.witness_seeds,
        mean_miss_fraction=base.mean_miss_fraction,
        any_miss_fraction=base.any_miss_fraction,
        degraded_runs=degraded_runs / trials if trials else 0.0,
        degraded_fraction=degraded_fraction / trials if trials else 0.0,
        violations_degraded=violations_degraded,
        violations_steady=violations_steady,
        caught_up=caught_up,
        mean_detection_latency=(
            sum(detection_latencies) / len(detection_latencies)
            if detection_latencies
            else None
        ),
        mean_time_to_recover=(
            sum(recovery_latencies) / len(recovery_latencies)
            if recovery_latencies
            else None
        ),
    )


def churn_sweep(
    intensities: Sequence[float] = (0.5, 1.0, 2.0),
    detection_timeouts: Sequence[float | None] = (None, 2.0, 6.0),
    catchup_latencies: Sequence[float] = (2.0,),
    trials: int = 20,
    row: str = "aggressive",
    matrix: str = "single",
    algorithm: str = "pass",
    n_updates: int = 14,
    replication: int = 2,
    base_seed: int = CHAOS_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHURN_PROFILE,
    engine=None,
    kernel: str = "array",
    catchup_source: str = "peer-then-log",
) -> list[ChurnCell]:
    """Sweep fault intensity × detection timeout × catch-up latency.

    A ``None`` detection timeout is the crash-without-recovery baseline;
    it runs once per intensity (catch-up latency is meaningless without
    recovery) on the same seeds as the membership cells, so the sweep
    directly reports what detection + catch-up buys back.
    """
    cells: list[ChurnCell] = []
    for intensity in intensities:
        for timeout in detection_timeouts:
            latencies = catchup_latencies if timeout is not None else (
                catchup_latencies[0],
            )
            for latency in latencies:
                specs = churn_specs(
                    intensity,
                    timeout,
                    latency,
                    trials,
                    row=row,
                    matrix=matrix,
                    algorithm=algorithm,
                    n_updates=n_updates,
                    replication=replication,
                    base_seed=base_seed,
                    profile=profile,
                    kernel=kernel,
                    catchup_source=catchup_source,
                )
                if engine is not None:
                    reports = engine.run(specs)
                else:
                    reports = [spec.execute() for spec in specs]
                cells.append(
                    _fold_churn_cell(intensity, timeout, latency, specs, reports)
                )
    return cells


def recovery_restores_alerts(
    cells: Sequence[ChurnCell], tolerance: float = 0.02
) -> bool:
    """The membership claim over a churn sweep: at every intensity whose
    baseline (membership off) misses alerts, the best recovery cell
    strictly reduces the missed-alert fraction, and no recovery cell is
    worse than the baseline by more than ``tolerance``."""
    by_intensity: dict[float, list[ChurnCell]] = {}
    for cell in cells:
        by_intensity.setdefault(cell.intensity, []).append(cell)
    helped = False
    needs_help = False
    for _intensity, group in by_intensity.items():
        baselines = [c for c in group if c.detection_timeout is None]
        recovered = [c for c in group if c.detection_timeout is not None]
        if not baselines or not recovered:
            continue
        baseline = baselines[0]
        for cell in recovered:
            if cell.mean_miss_fraction > baseline.mean_miss_fraction + tolerance:
                return False
        if baseline.mean_miss_fraction > tolerance:
            needs_help = True
            best = min(recovered, key=lambda c: c.mean_miss_fraction)
            if best.mean_miss_fraction < baseline.mean_miss_fraction:
                helped = True
    return helped or not needs_help


def render_churn_table(cells: Sequence[ChurnCell]) -> str:
    """Fixed-width text table of a churn sweep, one line per cell."""

    def rate(value: float | None) -> str:
        return "   n/a" if value is None else f"{value:>6.2f}"

    lines = [
        f"{'chaos':>6} {'detect':>7} {'catchup':>8} {'ordered':>8} "
        f"{'complete':>9} {'consistent':>11} {'mean miss':>10} "
        f"{'viol-deg':>9} {'viol-std':>9} {'caught-up':>10} {'mttr':>7}"
    ]
    for cell in cells:
        detect = (
            "    off" if cell.detection_timeout is None
            else f"{cell.detection_timeout:>7g}"
        )
        mttr = (
            "    -" if cell.mean_time_to_recover is None
            else f"{cell.mean_time_to_recover:>7.2f}"
        )
        lines.append(
            f"{cell.intensity:>6g} {detect} {cell.catchup_latency:>8g} "
            f"{rate(cell.survival['ordered']):>8} "
            f"{rate(cell.survival['complete']):>9} "
            f"{rate(cell.survival['consistent']):>11} "
            f"{cell.mean_miss_fraction:>10.3f} "
            f"{cell.violations_degraded:>9} {cell.violations_steady:>9} "
            f"{cell.caught_up:>10} {mttr}"
        )
    return "\n".join(lines)


def render_chaos_table(cells: Sequence[ChaosCell]) -> str:
    """Fixed-width text table of a sweep, one line per cell."""

    def rate(value: float | None) -> str:
        return "   n/a" if value is None else f"{value:>6.2f}"

    lines = [
        f"{'chaos':>6} {'CEs':>4} {'ordered':>8} {'complete':>9} "
        f"{'consistent':>11} {'mean miss':>10} {'any-miss':>9}  witnesses"
    ]
    for cell in cells:
        witnesses = (
            ", ".join(
                f"{prop}@{seed}" for prop, seed in sorted(cell.witness_seeds.items())
            )
            or "-"
        )
        lines.append(
            f"{cell.intensity:>6g} {cell.replication:>4} "
            f"{rate(cell.survival['ordered']):>8} "
            f"{rate(cell.survival['complete']):>9} "
            f"{rate(cell.survival['consistent']):>11} "
            f"{cell.mean_miss_fraction:>10.3f} {cell.any_miss_fraction:>9.2f}  "
            f"{witnesses}"
        )
    return "\n".join(lines)
