"""Composable, deterministic fault injection for the simulated system.

The package generalizes :class:`~repro.simulation.failures.CrashSchedule`
into whole-system fault *plans*: per-node crash/recover windows, link
outage and congestion windows, correlated (Gilbert–Elliott) burst loss,
and bounded duplication adversaries.  Two layers keep plans both
portable and concrete:

* :class:`FaultProfile` — all-scalar rates; picklable and JSON-safe, so
  it rides on :class:`~repro.engine.spec.TrialSpec` across process
  boundaries and trace headers, and scales with a single ``intensity``
  knob for chaos sweeps.
* :class:`FaultPlan` — concrete windows materialized from a profile via
  dedicated ``"faults/..."`` RNG streams (so clean runs stay
  bit-identical), applied onto a
  :class:`~repro.components.system.SystemConfig`.

:mod:`repro.faults.chaos` drives intensity sweeps and reports property
survival rates plus minimal violating seeds (the ``repro chaos`` CLI).
"""

from repro.faults.chaos import (
    ChaosCell,
    ChurnCell,
    chaos_specs,
    chaos_sweep,
    churn_specs,
    churn_sweep,
    recovery_restores_alerts,
    render_chaos_table,
    render_churn_table,
    replication_reduces_misses,
)
from repro.faults.model import (
    DelaySpikeSchedule,
    DuplicationAdversary,
    GilbertElliottLoss,
    GilbertElliottParams,
)
from repro.faults.plan import (
    DEFAULT_CHAOS_PROFILE,
    DEFAULT_CHURN_PROFILE,
    PROFILE_FIELD_KINDS,
    FaultPlan,
    FaultProfile,
    profile_field_identity,
)

__all__ = [
    "ChaosCell",
    "ChurnCell",
    "DEFAULT_CHAOS_PROFILE",
    "DEFAULT_CHURN_PROFILE",
    "PROFILE_FIELD_KINDS",
    "profile_field_identity",
    "DelaySpikeSchedule",
    "DuplicationAdversary",
    "FaultPlan",
    "FaultProfile",
    "GilbertElliottLoss",
    "GilbertElliottParams",
    "chaos_specs",
    "chaos_sweep",
    "churn_specs",
    "churn_sweep",
    "recovery_restores_alerts",
    "render_chaos_table",
    "render_churn_table",
    "replication_reduces_misses",
]
