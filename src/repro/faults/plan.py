"""Composable, deterministic fault plans.

Two layers, mirroring how the rest of the repo separates *what happened*
from *how it was drawn*:

* :class:`FaultPlan` — the concrete fault surface of one run: per-node
  crash windows for CEs, DMs and the AD, per-link outage windows, delay
  spike windows, and the stochastic link adversaries (burst loss,
  duplication).  Plans compose with :meth:`FaultPlan.merge` and fold into
  a :class:`~repro.components.system.SystemConfig` with
  :meth:`FaultPlan.apply_to`.
* :class:`FaultProfile` — the *distribution* those windows are drawn
  from: plain scalar rates and probabilities, picklable and
  JSON-round-trippable, so it can ride on a
  :class:`~repro.engine.spec.TrialSpec` across process boundaries and
  through trace headers.  :meth:`FaultProfile.materialize` draws a
  concrete plan from a run's named RNG streams — fault draws never shift
  the workload or link streams, so a zero-rate profile is bit-identical
  to no profile at all.

Intensity sweeps (the ``repro chaos`` CLI) use :meth:`FaultProfile.scaled`
to turn one profile into a family parameterised by a single chaos knob.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any

from repro.faults.model import (
    DelaySpikeSchedule,
    DuplicationAdversary,
    GilbertElliottParams,
)
from repro.simulation.failures import CrashSchedule, random_crash_schedule

if TYPE_CHECKING:  # avoid repro.components import at module load
    from repro.components.system import SystemConfig
    from repro.simulation.rng import RandomStreams

__all__ = [
    "FaultPlan",
    "FaultProfile",
    "DEFAULT_CHAOS_PROFILE",
    "DEFAULT_CHURN_PROFILE",
    "PROFILE_FIELD_KINDS",
    "profile_field_identity",
]


@dataclass(frozen=True)
class FaultPlan:
    """The concrete fault surface of one run."""

    #: CE index -> crash windows (updates delivered while down are missed).
    ce_crashes: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: Variable name -> DM crash windows (readings while down never sent).
    dm_crashes: Mapping[str, CrashSchedule] = field(default_factory=dict)
    #: AD (PDA) downtime; back links store-and-forward across it.
    ad_crash: CrashSchedule | None = None
    #: CE index -> front-link outage windows (datagrams lost, no retransmit).
    front_outages: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: CE index -> back-link outage windows (TCP stalls: delayed, not lost).
    back_outages: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: Correlated burst loss replacing Bernoulli loss on front links.
    burst_loss: GilbertElliottParams | None = None
    #: Bounded duplication adversary on front links.
    duplication: DuplicationAdversary | None = None
    #: Congestion windows on front / back links.
    front_delay_spikes: DelaySpikeSchedule | None = None
    back_delay_spikes: DelaySpikeSchedule | None = None

    @classmethod
    def clean(cls) -> "FaultPlan":
        return cls()

    @property
    def is_clean(self) -> bool:
        """True iff applying this plan cannot perturb a run."""
        return (
            not any(s.windows for s in self.ce_crashes.values())
            and not any(s.windows for s in self.dm_crashes.values())
            and (self.ad_crash is None or not self.ad_crash.windows)
            and not any(s.windows for s in self.front_outages.values())
            and not any(s.windows for s in self.back_outages.values())
            and (self.burst_loss is None or not self.burst_loss.enabled)
            and (self.duplication is None or not self.duplication.enabled)
            and (
                self.front_delay_spikes is None
                or not self.front_delay_spikes.enabled
            )
            and (
                self.back_delay_spikes is None
                or not self.back_delay_spikes.enabled
            )
        )

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans: down whenever either is down.

        Window maps merge per key with :meth:`CrashSchedule.union`; for
        the stochastic adversaries and spike schedules ``other`` wins
        where both plans set one (last-writer-wins, like config overlays).
        """

        def merged(a: Mapping, b: Mapping) -> dict:
            out = dict(a)
            for key, schedule in b.items():
                out[key] = out[key].union(schedule) if key in out else schedule
            return out

        ad_crash = self.ad_crash
        if other.ad_crash is not None:
            ad_crash = (
                other.ad_crash if ad_crash is None else ad_crash.union(other.ad_crash)
            )
        return FaultPlan(
            ce_crashes=merged(self.ce_crashes, other.ce_crashes),
            dm_crashes=merged(self.dm_crashes, other.dm_crashes),
            ad_crash=ad_crash,
            front_outages=merged(self.front_outages, other.front_outages),
            back_outages=merged(self.back_outages, other.back_outages),
            burst_loss=other.burst_loss or self.burst_loss,
            duplication=other.duplication or self.duplication,
            front_delay_spikes=other.front_delay_spikes or self.front_delay_spikes,
            back_delay_spikes=other.back_delay_spikes or self.back_delay_spikes,
        )

    def apply_to(self, config: "SystemConfig") -> "SystemConfig":
        """Fold this plan into a system config (returns a new config).

        Existing config fault fields are merged, not replaced: a scenario
        that already crashes CE 0 keeps those windows, unioned with the
        plan's.  A clean plan returns the config unchanged, so the
        faults-off path is exactly the pre-faults path.
        """
        if self.is_clean:
            return config

        def merged(a: Mapping, b: Mapping) -> dict:
            out = dict(a)
            for key, schedule in b.items():
                out[key] = out[key].union(schedule) if key in out else schedule
            return out

        ad_crash = config.ad_crash_schedule
        if self.ad_crash is not None and self.ad_crash.windows:
            ad_crash = (
                self.ad_crash if ad_crash is None else ad_crash.union(self.ad_crash)
            )
        return replace(
            config,
            crash_schedules=merged(config.crash_schedules, self.ce_crashes),
            dm_crash_schedules=merged(config.dm_crash_schedules, self.dm_crashes),
            ad_crash_schedule=ad_crash,
            front_outages=merged(config.front_outages, self.front_outages),
            back_outages=merged(config.back_outages, self.back_outages),
            front_loss_model=(
                self.burst_loss.make_model()
                if self.burst_loss is not None and self.burst_loss.enabled
                else config.front_loss_model
            ),
            front_duplication=self.duplication or config.front_duplication,
            front_delay_spikes=self.front_delay_spikes or config.front_delay_spikes,
            back_delay_spikes=self.back_delay_spikes or config.back_delay_spikes,
        )

    # -- serialization -------------------------------------------------------
    def to_json_obj(self) -> dict[str, Any]:
        def windows(schedule: CrashSchedule) -> list[list[float]]:
            return [[s, e] for s, e in schedule.windows]

        obj: dict[str, Any] = {
            "ce_crashes": {str(k): windows(v) for k, v in sorted(self.ce_crashes.items())},
            "dm_crashes": {k: windows(v) for k, v in sorted(self.dm_crashes.items())},
            "ad_crash": None if self.ad_crash is None else windows(self.ad_crash),
            "front_outages": {
                str(k): windows(v) for k, v in sorted(self.front_outages.items())
            },
            "back_outages": {
                str(k): windows(v) for k, v in sorted(self.back_outages.items())
            },
            "burst_loss": None,
            "duplication": None,
            "front_delay_spikes": None,
            "back_delay_spikes": None,
        }
        if self.burst_loss is not None:
            obj["burst_loss"] = {
                "good_to_bad": self.burst_loss.good_to_bad,
                "bad_to_good": self.burst_loss.bad_to_good,
                "loss_good": self.burst_loss.loss_good,
                "loss_bad": self.burst_loss.loss_bad,
            }
        if self.duplication is not None:
            obj["duplication"] = {
                "duplicate_prob": self.duplication.duplicate_prob,
                "max_copies": self.duplication.max_copies,
            }
        for key, spikes in (
            ("front_delay_spikes", self.front_delay_spikes),
            ("back_delay_spikes", self.back_delay_spikes),
        ):
            if spikes is not None:
                obj[key] = {
                    "windows": [[s, e] for s, e in spikes.windows],
                    "factor": spikes.factor,
                }
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "FaultPlan":
        def schedule(windows: Sequence[Sequence[float]]) -> CrashSchedule:
            return CrashSchedule.from_windows(windows)

        def spikes(value: Mapping[str, Any] | None) -> DelaySpikeSchedule | None:
            if value is None:
                return None
            return DelaySpikeSchedule(
                windows=tuple((float(s), float(e)) for s, e in value["windows"]),
                factor=float(value["factor"]),
            )

        burst = obj.get("burst_loss")
        dup = obj.get("duplication")
        return cls(
            ce_crashes={
                int(k): schedule(v) for k, v in obj.get("ce_crashes", {}).items()
            },
            dm_crashes={
                k: schedule(v) for k, v in obj.get("dm_crashes", {}).items()
            },
            ad_crash=(
                None if obj.get("ad_crash") is None else schedule(obj["ad_crash"])
            ),
            front_outages={
                int(k): schedule(v) for k, v in obj.get("front_outages", {}).items()
            },
            back_outages={
                int(k): schedule(v) for k, v in obj.get("back_outages", {}).items()
            },
            burst_loss=None if burst is None else GilbertElliottParams(**burst),
            duplication=None if dup is None else DuplicationAdversary(**dup),
            front_delay_spikes=spikes(obj.get("front_delay_spikes")),
            back_delay_spikes=spikes(obj.get("back_delay_spikes")),
        )


#: Profile fields that scale linearly with chaos intensity (rates and
#: entry probabilities).  Mean durations and recovery probabilities stay
#: fixed — intensity makes faults *more frequent*, not longer.
_SCALED_FIELDS = (
    "ce_crash_rate",
    "dm_crash_rate",
    "ad_crash_rate",
    "front_outage_rate",
    "back_outage_rate",
    "burst_good_to_bad",
    "burst_loss_good",
    "duplicate_prob",
    "delay_spike_rate",
)
#: Probability-valued fields among the scaled set (clamped to [0, 1]).
_PROB_FIELDS = {"burst_good_to_bad", "burst_loss_good", "duplicate_prob"}

#: What kind of knob each profile field is — the machine-readable shape
#: the fuzzer's mutator and the witness shrinker walk instead of
#: hard-coding field names: ``rate``/``mean`` are non-negative reals,
#: ``prob`` clamps to [0, 1], ``factor`` floors at 1 (a delay
#: multiplier), ``count`` is an integer >= 1.
PROFILE_FIELD_KINDS: dict[str, str] = {
    "ce_crash_rate": "rate",
    "ce_mean_repair": "mean",
    "dm_crash_rate": "rate",
    "dm_mean_repair": "mean",
    "ad_crash_rate": "rate",
    "ad_mean_repair": "mean",
    "front_outage_rate": "rate",
    "front_mean_outage": "mean",
    "back_outage_rate": "rate",
    "back_mean_outage": "mean",
    "burst_good_to_bad": "prob",
    "burst_bad_to_good": "prob",
    "burst_loss_good": "prob",
    "burst_loss_bad": "prob",
    "duplicate_prob": "prob",
    "max_duplicates": "count",
    "delay_spike_rate": "rate",
    "delay_spike_mean": "mean",
    "delay_spike_factor": "factor",
}


def profile_field_identity(name: str) -> float | int:
    """The *inert* value of a profile field — the one that disables it.

    Zero for rates/means and most probabilities; 1 for the spike factor
    (no amplification) and the duplicate count (one extra copy, inert
    while ``duplicate_prob`` is 0); 1 for ``burst_bad_to_good``, whose
    identity is instant recovery, not zero (a 0 recovery probability
    makes bursts *permanent*).
    """
    if name in ("delay_spike_factor", "max_duplicates", "burst_bad_to_good"):
        return 1
    kind = PROFILE_FIELD_KINDS[name]
    if kind not in ("rate", "mean", "prob"):
        raise KeyError(f"unknown profile field {name!r}")
    return 0


@dataclass(frozen=True)
class FaultProfile:
    """Scalar fault-distribution knobs; the picklable spec-level carrier.

    All-zero rates (the default) materialize to a clean plan, so a
    profile is safe to thread everywhere unconditionally.  Rates are per
    unit of simulated time (readings arrive every 10 units); ``mean_*``
    are exponential means.
    """

    ce_crash_rate: float = 0.0
    ce_mean_repair: float = 0.0
    dm_crash_rate: float = 0.0
    dm_mean_repair: float = 0.0
    ad_crash_rate: float = 0.0
    ad_mean_repair: float = 0.0
    front_outage_rate: float = 0.0
    front_mean_outage: float = 0.0
    back_outage_rate: float = 0.0
    back_mean_outage: float = 0.0
    burst_good_to_bad: float = 0.0
    burst_bad_to_good: float = 1.0
    burst_loss_good: float = 0.0
    burst_loss_bad: float = 0.0
    duplicate_prob: float = 0.0
    max_duplicates: int = 1
    delay_spike_rate: float = 0.0
    delay_spike_mean: float = 0.0
    delay_spike_factor: float = 1.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value < 0:
                raise ValueError(f"{f.name} must be non-negative, got {value}")

    @property
    def is_clean(self) -> bool:
        """True iff materialization always yields a clean plan."""
        return (
            self.ce_crash_rate == 0
            and self.dm_crash_rate == 0
            and self.ad_crash_rate == 0
            and self.front_outage_rate == 0
            and self.back_outage_rate == 0
            and not GilbertElliottParams(
                self.burst_good_to_bad,
                min(self.burst_bad_to_good, 1.0),
                self.burst_loss_good,
                self.burst_loss_bad,
            ).enabled
            and self.duplicate_prob == 0
            and self.delay_spike_rate == 0
        )

    def with_value(self, name: str, value: float) -> "FaultProfile":
        """This profile with one field replaced, clamped to its kind.

        Probabilities clamp to [0, 1], the spike factor floors at 1, the
        duplicate count floors at 1 (and truncates to int), and every
        other knob floors at 0 — so arbitrary mutated/halved values
        always yield a constructible profile.
        """
        kind = PROFILE_FIELD_KINDS[name]
        if kind == "prob":
            value = min(max(value, 0.0), 1.0)
        elif kind == "factor":
            value = max(value, 1.0)
        elif kind == "count":
            value = max(int(value), 1)
        else:
            value = max(value, 0.0)
        return replace(self, **{name: value})

    def scaled(self, intensity: float) -> "FaultProfile":
        """This profile with every fault *rate* scaled by ``intensity``.

        ``intensity = 0`` is a clean profile; ``1`` is this profile;
        ``> 1`` turns the dials up (probabilities clamp at 1).  The spike
        delay factor interpolates as ``1 + (factor - 1) * intensity``.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be non-negative, got {intensity}")
        changes: dict[str, float] = {}
        for name in _SCALED_FIELDS:
            value = getattr(self, name) * intensity
            if name in _PROB_FIELDS:
                value = min(value, 1.0)
            changes[name] = value
        changes["delay_spike_factor"] = (
            1.0 + (self.delay_spike_factor - 1.0) * intensity
        )
        return replace(self, **changes)

    def materialize(
        self,
        streams: "RandomStreams",
        horizon: float,
        replication: int,
        variables: Sequence[str],
    ) -> FaultPlan:
        """Draw one concrete plan from named streams of the run seed.

        Every draw comes from a ``faults/...`` stream, so materializing a
        plan never shifts the workload or link randomness — a clean
        profile leaves the run bit-identical to no profile at all.
        """
        ce_crashes: dict[int, CrashSchedule] = {}
        front_outages: dict[int, CrashSchedule] = {}
        back_outages: dict[int, CrashSchedule] = {}
        for index in range(replication):
            if self.ce_crash_rate > 0:
                ce_crashes[index] = random_crash_schedule(
                    streams.stream(f"faults/ce/{index}"),
                    horizon,
                    self.ce_crash_rate,
                    self.ce_mean_repair,
                )
            if self.front_outage_rate > 0:
                front_outages[index] = random_crash_schedule(
                    streams.stream(f"faults/front-outage/{index}"),
                    horizon,
                    self.front_outage_rate,
                    self.front_mean_outage,
                )
            if self.back_outage_rate > 0:
                back_outages[index] = random_crash_schedule(
                    streams.stream(f"faults/back-outage/{index}"),
                    horizon,
                    self.back_outage_rate,
                    self.back_mean_outage,
                )
        dm_crashes: dict[str, CrashSchedule] = {}
        if self.dm_crash_rate > 0:
            for varname in sorted(variables):
                dm_crashes[varname] = random_crash_schedule(
                    streams.stream(f"faults/dm/{varname}"),
                    horizon,
                    self.dm_crash_rate,
                    self.dm_mean_repair,
                )
        ad_crash = None
        if self.ad_crash_rate > 0:
            ad_crash = random_crash_schedule(
                streams.stream("faults/ad"),
                horizon,
                self.ad_crash_rate,
                self.ad_mean_repair,
            )
        burst = GilbertElliottParams(
            good_to_bad=min(self.burst_good_to_bad, 1.0),
            bad_to_good=min(self.burst_bad_to_good, 1.0),
            loss_good=min(self.burst_loss_good, 1.0),
            loss_bad=min(self.burst_loss_bad, 1.0),
        )
        duplication = DuplicationAdversary(
            duplicate_prob=min(self.duplicate_prob, 1.0),
            max_copies=max(1, int(self.max_duplicates)),
        )
        front_spikes = back_spikes = None
        if self.delay_spike_rate > 0 and self.delay_spike_factor > 1.0:
            front_spikes = DelaySpikeSchedule(
                windows=random_crash_schedule(
                    streams.stream("faults/spike/front"),
                    horizon,
                    self.delay_spike_rate,
                    self.delay_spike_mean,
                ).windows,
                factor=self.delay_spike_factor,
            )
            back_spikes = DelaySpikeSchedule(
                windows=random_crash_schedule(
                    streams.stream("faults/spike/back"),
                    horizon,
                    self.delay_spike_rate,
                    self.delay_spike_mean,
                ).windows,
                factor=self.delay_spike_factor,
            )
        return FaultPlan(
            ce_crashes=ce_crashes,
            dm_crashes=dm_crashes,
            ad_crash=ad_crash,
            front_outages=front_outages,
            back_outages=back_outages,
            burst_loss=burst if burst.enabled else None,
            duplication=duplication if duplication.enabled else None,
            front_delay_spikes=front_spikes,
            back_delay_spikes=back_spikes,
        )

    @classmethod
    def chaos_default(cls) -> "FaultProfile":
        """The reference chaos profile the CLI sweeps.

        At intensity 1 roughly one CE crash and one outage per ~120
        simulated time units (a 30-reading run spans ~300), short repair
        times, moderate bursts, rare duplication, occasional 6x
        congestion spikes — enough that every fault class fires in most
        trials without drowning the workload entirely.
        """
        return cls(
            ce_crash_rate=0.008,
            ce_mean_repair=50.0,
            dm_crash_rate=0.004,
            dm_mean_repair=30.0,
            ad_crash_rate=0.006,
            ad_mean_repair=40.0,
            front_outage_rate=0.006,
            front_mean_outage=30.0,
            back_outage_rate=0.004,
            back_mean_outage=25.0,
            burst_good_to_bad=0.15,
            burst_bad_to_good=0.4,
            burst_loss_good=0.02,
            burst_loss_bad=0.7,
            duplicate_prob=0.08,
            max_duplicates=2,
            delay_spike_rate=0.004,
            delay_spike_mean=40.0,
            delay_spike_factor=6.0,
        )


    @classmethod
    def churn_default(cls) -> "FaultProfile":
        """The reference *churn* profile for membership sweeps.

        CE crashes only, frequent and short — the fault class dynamic
        membership heals — so the detection-timeout × catch-up-latency
        dimensions of a churn sweep are not confounded by link loss or
        AD downtime.
        """
        return cls(ce_crash_rate=0.02, ce_mean_repair=25.0)


#: The profile ``repro chaos`` and ``repro trace record --chaos`` scale.
DEFAULT_CHAOS_PROFILE = FaultProfile.chaos_default()

#: The CE-crash-only profile churn sweeps scale (``repro chaos --churn``).
DEFAULT_CHURN_PROFILE = FaultProfile.churn_default()
