"""Quantitative alert quality: how *wrong* a replicated monitor gets.

The property checkers (:mod:`repro.props`) decide orderedness /
completeness / consistency as booleans; this package measures degrees —
precision, recall, duplicate and missed-alert rates, and alert-latency
percentiles against the single-replica ground truth — per run
(:mod:`repro.quality.metrics`) and swept over AD algorithm × loss ×
fault intensity (:mod:`repro.quality.sweep`, ``repro quality``).
"""

from repro.quality.metrics import AlertQuality, alert_quality
from repro.quality.sweep import (
    QUALITY_BASE_SEED,
    QualityCell,
    adaptive_matches_best_static,
    quality_json,
    quality_specs,
    quality_sweep,
    render_quality_table,
)

__all__ = [
    "AlertQuality",
    "alert_quality",
    "QUALITY_BASE_SEED",
    "QualityCell",
    "adaptive_matches_best_static",
    "quality_json",
    "quality_specs",
    "quality_sweep",
    "render_quality_table",
]
