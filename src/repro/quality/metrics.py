"""Per-run alert-quality metrics against the single-replica ground truth.

The ground truth is the same ideal system the availability analysis uses
(:mod:`repro.analysis.metrics`): one co-located CE fed the merged DM
broadcast log — no loss, no downtime.  Every alert that system raises is
a real-world *event*, keyed by its head-seqno vector
(:func:`~repro.core.alert.alert_event_key`) and stamped with the
broadcast time of the update that triggered it.

Displayed alerts are then classified event by event:

* **detection** — the first displayed alert carrying an expected event
  key; its latency sample is display time − trigger time;
* **duplicate** — a further displayed alert re-carrying an already
  detected key (two CEs reporting the same occurrence through different
  histories — exactly the near-duplicates identity-based AD-1 cannot
  see);
* **false alert** — a displayed alert whose event key the ideal system
  never produced (a lossy replica hallucinating a trigger through a
  gapped history).

Identity-level set comparison (``DeliveryStats``) cannot distinguish a
re-detection from new information; the event-keyed view can, which is
what makes precision/duplicate-rate meaningful per AD algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import percentile
from repro.components.system import RunResult
from repro.core.alert import Alert, alert_event_key
from repro.core.evaluator import ConditionEvaluator

__all__ = [
    "AlertQuality",
    "alert_quality",
    "ground_truth_events",
    "displayed_with_times",
]


@dataclass(frozen=True)
class AlertQuality:
    """Event-keyed quality of one run's displayed alert sequence."""

    #: Events the ideal single-replica system raised.
    expected: int
    #: Expected events detected at least once.
    detected: int
    #: Displayed alerts re-carrying an already-detected event key.
    duplicates: int
    #: Displayed alerts whose event key the ideal system never raised.
    false_alerts: int
    #: Total alerts displayed (= detected + duplicates + false_alerts).
    displayed: int
    #: Alerts the AD filtered out.
    filtered: int
    #: Alerts that arrived at the AD (= displayed + filtered).
    arrivals: int
    #: display time − trigger time per detection, in arrival order.
    latency_samples: tuple[float, ...]

    @property
    def missed(self) -> int:
        return self.expected - self.detected

    @property
    def precision(self) -> float:
        """Fraction of displayed alerts that were first detections."""
        if self.displayed == 0:
            return 1.0
        return self.detected / self.displayed

    @property
    def recall(self) -> float:
        """Fraction of expected events detected at least once."""
        if self.expected == 0:
            return 1.0
        return self.detected / self.expected

    @property
    def missed_rate(self) -> float:
        if self.expected == 0:
            return 0.0
        return self.missed / self.expected

    @property
    def duplicate_rate(self) -> float:
        if self.displayed == 0:
            return 0.0
        return self.duplicates / self.displayed

    @property
    def false_rate(self) -> float:
        if self.displayed == 0:
            return 0.0
        return self.false_alerts / self.displayed

    @property
    def latency_p50(self) -> float | None:
        if not self.latency_samples:
            return None
        return percentile(self.latency_samples, 50.0)

    @property
    def latency_p99(self) -> float | None:
        if not self.latency_samples:
            return None
        return percentile(self.latency_samples, 99.0)

    def as_dict(self) -> dict:
        """JSON-safe digest carried on ``PropertyReport.quality``."""
        return {
            "expected": self.expected,
            "detected": self.detected,
            "missed": self.missed,
            "duplicates": self.duplicates,
            "false_alerts": self.false_alerts,
            "displayed": self.displayed,
            "filtered": self.filtered,
            "arrivals": self.arrivals,
            "precision": self.precision,
            "recall": self.recall,
            "latency_samples": list(self.latency_samples),
        }


def ground_truth_events(run: RunResult) -> dict[tuple, float]:
    """Expected event key → trigger time (broadcast time of the trigger).

    Feeds the merged broadcast log through a fresh evaluator — the ideal
    co-located CE — noting *when* each alert fires.  Head-seqno vectors
    are unique per trigger (each fire incorporates a fresh seqno in the
    triggering variable), so the mapping is injective.
    """
    evaluator = ConditionEvaluator(run.condition, source="N")
    events: dict[tuple, float] = {}
    variables = run.condition.variables
    for time, update in run.sent_log:
        alert = evaluator.ingest(update)
        if alert is not None:
            events.setdefault(alert_event_key(alert, variables), time)
    return events


def displayed_with_times(run: RunResult) -> list[tuple[Alert, float]]:
    """The displayed sequence paired with its AD arrival (display) times.

    ``displayed`` is a subsequence of ``ad_arrivals``; alerts compare by
    value, so greedy subsequence matching recovers each displayed
    alert's arrival stamp on both kernels.
    """
    out: list[tuple[Alert, float]] = []
    next_display = 0
    displayed = run.displayed
    for alert, time in zip(run.ad_arrivals, run.ad_arrival_times):
        if next_display < len(displayed) and displayed[next_display] == alert:
            out.append((displayed[next_display], time))
            next_display += 1
    if next_display != len(displayed):
        raise ValueError(
            f"displayed is not a subsequence of arrivals: matched "
            f"{next_display} of {len(displayed)}"
        )
    return out


def alert_quality(run: RunResult) -> AlertQuality:
    """Classify one run's displayed alerts against the ground truth."""
    expected = ground_truth_events(run)
    variables = run.condition.variables
    detected: set[tuple] = set()
    duplicates = 0
    false_alerts = 0
    latencies: list[float] = []
    for alert, time in displayed_with_times(run):
        key = alert_event_key(alert, variables)
        trigger = expected.get(key)
        if trigger is None:
            false_alerts += 1
        elif key in detected:
            duplicates += 1
        else:
            detected.add(key)
            latencies.append(time - trigger)
    return AlertQuality(
        expected=len(expected),
        detected=len(detected),
        duplicates=duplicates,
        false_alerts=false_alerts,
        displayed=len(run.displayed),
        filtered=len(run.filtered),
        arrivals=len(run.ad_arrivals),
        latency_samples=tuple(latencies),
    )
