"""Quality sweeps: precision/recall/latency vs loss × fault intensity.

One cell = (algorithm, front loss, fault intensity, replication) on one
scenario row.  The seed block of a cell deliberately excludes the
*algorithm*: every algorithm at a given (row, loss, intensity,
replication) point runs the **same seeds**, hence the same simulated
update/alert schedules (the AD is terminal — it never perturbs the
run), so differences between algorithms are pure filtering effects,
never sampling noise.  That is what makes the adaptive-vs-static gate
(:func:`adaptive_matches_best_static`) deterministic rather than
statistical.

Fault intensity scales :data:`~repro.faults.plan.DEFAULT_CHAOS_PROFILE`
— crash windows, outages, burst loss, duplication *and delay spikes* —
so the intensity axis doubles as the delay axis: latency percentiles
rise with it even where recall holds.

Trials fan out through the same :class:`~repro.engine.core.TrialEngine`
as the table grids and chaos sweeps.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.accel import percentile
from repro.engine.spec import TrialSpec
from repro.faults.plan import DEFAULT_CHAOS_PROFILE, FaultProfile
from repro.props.report import PropertyReport

__all__ = [
    "QUALITY_BASE_SEED",
    "QualityCell",
    "adaptive_matches_best_static",
    "quality_json",
    "quality_specs",
    "quality_sweep",
    "render_quality_table",
]

#: Default base seed for quality sweeps (distinct from tables' and chaos').
QUALITY_BASE_SEED = 20011000

#: Default sweep axes: every registered online filter plus the adaptive.
DEFAULT_ALGORITHMS = ("AD-1", "AD-2", "AD-3", "AD-4", "adaptive")
DEFAULT_LOSSES = (0.0, 0.15, 0.3)
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class QualityCell:
    """Folded quality of one sweep point, pooled over its trials."""

    algorithm: str
    front_loss: float
    intensity: float
    replication: int
    trials: int
    #: Pooled event counts over the cell's trials.
    expected: int
    detected: int
    duplicates: int
    false_alerts: int
    displayed: int
    #: Trial-mean rates (each trial weighted equally, like the chaos
    #: sweep's mean_miss_fraction).
    precision: float
    recall: float
    missed_rate: float
    duplicate_rate: float
    false_rate: float
    #: Percentiles of the pooled latency samples (None = no detections).
    latency_p50: float | None
    latency_p99: float | None
    latency_samples: int

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "front_loss": self.front_loss,
            "intensity": self.intensity,
            "replication": self.replication,
            "trials": self.trials,
            "expected": self.expected,
            "detected": self.detected,
            "duplicates": self.duplicates,
            "false_alerts": self.false_alerts,
            "displayed": self.displayed,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "missed_rate": round(self.missed_rate, 6),
            "duplicate_rate": round(self.duplicate_rate, 6),
            "false_rate": round(self.false_rate, 6),
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_samples": self.latency_samples,
        }


def quality_specs(
    algorithm: str,
    front_loss: float,
    intensity: float,
    trials: int,
    row: str = "non-historical",
    matrix: str = "single",
    n_updates: int = 30,
    replication: int = 2,
    base_seed: int = QUALITY_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHAOS_PROFILE,
    kernel: str = "array",
) -> list[TrialSpec]:
    """The trial specs of one sweep cell, in ascending-seed order.

    The cell key — and therefore the seed block — excludes the
    algorithm, so every algorithm at one (row, loss, intensity,
    replication) point replays identical simulated schedules.
    """
    cell = f"quality/{matrix}/{row}/{front_loss:g}/{intensity:g}/{replication}"
    offset = zlib.crc32(cell.encode()) % 100_000
    faults = profile.scaled(intensity)
    if faults.is_clean:
        faults = None
    return [
        TrialSpec(
            matrix,
            row,
            algorithm,
            base_seed + offset + trial,
            n_updates,
            replication=replication,
            front_loss=front_loss,
            faults=faults,
            collect_quality=True,
            kernel=kernel,
        )
        for trial in range(trials)
    ]


def _fold_cell(
    algorithm: str,
    front_loss: float,
    intensity: float,
    replication: int,
    reports: Sequence[PropertyReport],
) -> QualityCell:
    expected = detected = duplicates = false_alerts = displayed = 0
    precision_sum = recall_sum = missed_sum = dup_rate_sum = false_rate_sum = 0.0
    latencies: list[float] = []
    for report in reports:
        quality = report.quality or {}
        expected += quality.get("expected", 0)
        detected += quality.get("detected", 0)
        duplicates += quality.get("duplicates", 0)
        false_alerts += quality.get("false_alerts", 0)
        shown = quality.get("displayed", 0)
        displayed += shown
        exp = quality.get("expected", 0)
        det = quality.get("detected", 0)
        precision_sum += det / shown if shown else 1.0
        recall_sum += det / exp if exp else 1.0
        missed_sum += (exp - det) / exp if exp else 0.0
        dup_rate_sum += quality.get("duplicates", 0) / shown if shown else 0.0
        false_rate_sum += quality.get("false_alerts", 0) / shown if shown else 0.0
        latencies.extend(quality.get("latency_samples", ()))
    trials = len(reports)
    return QualityCell(
        algorithm=algorithm,
        front_loss=front_loss,
        intensity=intensity,
        replication=replication,
        trials=trials,
        expected=expected,
        detected=detected,
        duplicates=duplicates,
        false_alerts=false_alerts,
        displayed=displayed,
        precision=precision_sum / trials if trials else 1.0,
        recall=recall_sum / trials if trials else 1.0,
        missed_rate=missed_sum / trials if trials else 0.0,
        duplicate_rate=dup_rate_sum / trials if trials else 0.0,
        false_rate=false_rate_sum / trials if trials else 0.0,
        latency_p50=percentile(latencies, 50.0) if latencies else None,
        latency_p99=percentile(latencies, 99.0) if latencies else None,
        latency_samples=len(latencies),
    )


def quality_sweep(
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    losses: Sequence[float] = DEFAULT_LOSSES,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    trials: int = 20,
    row: str = "non-historical",
    matrix: str = "single",
    n_updates: int = 30,
    replication: int = 2,
    base_seed: int = QUALITY_BASE_SEED,
    profile: FaultProfile = DEFAULT_CHAOS_PROFILE,
    engine=None,
    kernel: str = "array",
) -> list[QualityCell]:
    """Sweep algorithm × loss × fault intensity; one folded cell each.

    ``engine`` is an optional :class:`~repro.engine.core.TrialEngine`;
    without one, trials execute inline with identical results.
    """
    cells: list[QualityCell] = []
    for front_loss in losses:
        for intensity in intensities:
            for algorithm in algorithms:
                specs = quality_specs(
                    algorithm,
                    front_loss,
                    intensity,
                    trials,
                    row=row,
                    matrix=matrix,
                    n_updates=n_updates,
                    replication=replication,
                    base_seed=base_seed,
                    profile=profile,
                    kernel=kernel,
                )
                if engine is not None:
                    reports = engine.run(specs)
                else:
                    reports = [spec.execute() for spec in specs]
                cells.append(
                    _fold_cell(
                        algorithm, front_loss, intensity, replication, reports
                    )
                )
    return cells


def adaptive_matches_best_static(
    cells: Sequence[QualityCell],
    adaptive: str = "adaptive",
    tolerance: float = 1e-9,
) -> bool:
    """The adaptive gate: at every (loss, intensity, replication) point,
    the adaptive algorithm's missed-alert rate is ≤ every static
    algorithm's.  With shared per-point seeds this is exact — the recall
    guard pins the adaptive's detected-event set to the arrival stream's
    whole event set — so ``tolerance`` only absorbs float summation."""
    by_point: dict[tuple, list[QualityCell]] = {}
    for cell in cells:
        key = (cell.front_loss, cell.intensity, cell.replication)
        by_point.setdefault(key, []).append(cell)
    seen_adaptive = False
    for group in by_point.values():
        adaptives = [c for c in group if c.algorithm == adaptive]
        statics = [c for c in group if c.algorithm != adaptive]
        if not adaptives or not statics:
            continue
        seen_adaptive = True
        best_static = min(c.missed_rate for c in statics)
        if adaptives[0].missed_rate > best_static + tolerance:
            return False
    return seen_adaptive


def render_quality_table(cells: Sequence[QualityCell]) -> str:
    """Fixed-width text table of a sweep, one line per cell."""

    def lat(value: float | None) -> str:
        return "      -" if value is None else f"{value:>7.2f}"

    lines = [
        f"{'loss':>5} {'chaos':>6} {'algorithm':>9} {'precision':>10} "
        f"{'recall':>7} {'missed':>7} {'dup':>6} {'false':>6} "
        f"{'lat-p50':>8} {'lat-p99':>8}"
    ]
    for cell in cells:
        lines.append(
            f"{cell.front_loss:>5g} {cell.intensity:>6g} "
            f"{cell.algorithm:>9} {cell.precision:>10.3f} "
            f"{cell.recall:>7.3f} {cell.missed_rate:>7.3f} "
            f"{cell.duplicate_rate:>6.3f} {cell.false_rate:>6.3f} "
            f"{lat(cell.latency_p50):>8} {lat(cell.latency_p99):>8}"
        )
    return "\n".join(lines)


def quality_json(
    cells: Sequence[QualityCell],
    row: str = "non-historical",
    matrix: str = "single",
    trials: int | None = None,
    n_updates: int | None = None,
) -> dict:
    """The ``BENCH_quality.json`` document for a sweep's cells."""
    return {
        "bench": "quality",
        "matrix": matrix,
        "row": row,
        "trials": trials,
        "n_updates": n_updates,
        "adaptive_matches_best_static": adaptive_matches_best_static(cells),
        "cells": [cell.as_dict() for cell in cells],
    }
