"""Discrete-event simulation substrate: kernel, RNG streams, links, nodes,
failure injection."""

from repro.simulation.failures import CrashSchedule, random_crash_schedule
from repro.simulation.kernel import Event, Kernel, SimulationError
from repro.simulation.network import (
    DelayModel,
    FixedDelay,
    Link,
    LossyFifoLink,
    PerLinkSkewDelay,
    ReliableLink,
    StoreAndForwardLink,
    UniformDelay,
)
from repro.simulation.node import Node
from repro.simulation.rng import RandomStreams

__all__ = [
    "CrashSchedule",
    "DelayModel",
    "Event",
    "FixedDelay",
    "Kernel",
    "Link",
    "LossyFifoLink",
    "Node",
    "PerLinkSkewDelay",
    "RandomStreams",
    "ReliableLink",
    "SimulationError",
    "StoreAndForwardLink",
    "UniformDelay",
    "random_crash_schedule",
]
