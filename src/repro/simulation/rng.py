"""Named, seeded random streams.

Every source of randomness in a run — each link's loss coin, each link's
delay draw, the workload's value process — pulls from its own named
stream derived from the run seed.  Two benefits:

* **reproducibility**: a run is fully determined by ``(seed, config)``;
* **independence under perturbation**: changing how one component consumes
  randomness does not shift the draws seen by the others, so
  counterexample seeds stay valid across refactors.
"""

from __future__ import annotations

import random

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use.

        String seeds are hashed with SHA-512 by ``random.Random``, which is
        stable across processes and Python versions (unlike ``hash()``).
        """
        existing = self._streams.get(name)
        if existing is None:
            existing = random.Random(f"{self.seed}/{name}")
            self._streams[name] = existing
        return existing

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        child_seed = random.Random(f"{self.seed}/spawn/{name}").getrandbits(63)
        return RandomStreams(child_seed)
