"""Failure injection: crash windows for Condition Evaluators.

The paper motivates replication with CE downtime: "the CE can go down,
causing it to miss updates.  Consequently, the CE may not know when a
condition is satisfied."  A :class:`CrashSchedule` is a set of closed
intervals of simulated time during which a node is down; messages
delivered inside a window are lost to that node permanently (datagram
semantics — the DM does not retransmit).

Used by the availability benchmark (Figure-1 motivation) to quantify how
much replication reduces the probability of a missed alert.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from random import Random

__all__ = ["CrashSchedule", "random_crash_schedule"]


@dataclass(frozen=True)
class CrashSchedule:
    """Closed intervals [start, end] during which the node is down.

    Construction validates the window list outright: non-finite
    endpoints, inverted windows, and unsorted/overlapping windows all
    raise immediately.  (NaN endpoints used to slip through — every
    comparison against NaN is False, so ``is_up`` silently reported the
    node as always up.)  Zero-length windows (``start == end``, down for
    exactly one instant) and adjacent windows (one ends where the next
    begins) are legal; ``next_up_time`` chains across the latter.
    """

    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        previous_end = None
        for start, end in self.windows:
            if not (math.isfinite(start) and math.isfinite(end)):
                raise ValueError(
                    f"crash window endpoints must be finite, got "
                    f"({start}, {end})"
                )
            if end < start:
                raise ValueError(
                    f"crash window end {end} before start {start}"
                )
            if previous_end is not None and start < previous_end:
                raise ValueError(
                    f"crash windows must be sorted and disjoint: window "
                    f"starting at {start} overlaps previous end "
                    f"{previous_end}"
                )
            previous_end = end

    @classmethod
    def never(cls) -> "CrashSchedule":
        return cls(())

    @classmethod
    def from_windows(cls, windows: Iterable[Sequence[float]]) -> "CrashSchedule":
        normalised = tuple(sorted((float(s), float(e)) for s, e in windows))
        return cls(normalised)

    def is_up(self, time: float) -> bool:
        """True iff the node is operational at simulated ``time``."""
        for start, end in self.windows:
            if start <= time <= end:
                return False
            if start > time:
                break
        return True

    @property
    def total_downtime(self) -> float:
        return sum(end - start for start, end in self.windows)

    def union(self, other: "CrashSchedule") -> "CrashSchedule":
        """The schedule that is down whenever either input is down.

        Overlapping and touching windows are coalesced, so the result
        satisfies the sorted-and-disjoint invariant — this is how
        composed fault plans merge their downtime contributions.
        """
        merged: list[tuple[float, float]] = []
        for start, end in sorted(self.windows + other.windows):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return CrashSchedule(tuple(merged))

    def next_up_time(self, time: float, epsilon: float = 1e-6) -> float:
        """Earliest instant at or after ``time`` when the node is up.

        Returns ``time`` itself if the node is already up.  Windows are
        closed, so recovery is modelled at ``end + epsilon``.  Chains
        across adjacent windows.
        """
        current = time
        for start, end in self.windows:
            if start <= current <= end:
                current = end + epsilon
            elif start > current:
                break
        return current


def random_crash_schedule(
    rng: Random,
    horizon: float,
    crash_rate: float,
    mean_repair: float,
) -> CrashSchedule:
    """Alternating up/down renewal process over [0, horizon].

    Up periods are exponential with rate ``crash_rate`` (mean
    ``1/crash_rate``); down periods are exponential with mean
    ``mean_repair``.  ``crash_rate = 0`` yields an always-up schedule.
    """
    if crash_rate < 0 or mean_repair < 0:
        raise ValueError("crash_rate and mean_repair must be non-negative")
    if crash_rate == 0:
        return CrashSchedule.never()
    windows: list[tuple[float, float]] = []
    time = 0.0
    while time < horizon:
        time += rng.expovariate(crash_rate)
        if time >= horizon:
            break
        down_for = rng.expovariate(1.0 / mean_repair) if mean_repair > 0 else 0.0
        end = min(time + down_for, horizon)
        windows.append((time, end))
        time = end
    return CrashSchedule(tuple(windows))
