"""Simulated node base class.

Nodes are the active entities of a monitoring system — Data Monitors,
Condition Evaluators, Alert Displayers.  A node is bound to a kernel,
receives messages via :meth:`receive` (links call this), and can schedule
its own activity.
"""

from __future__ import annotations

from typing import Any

from repro.simulation.kernel import Kernel

__all__ = ["Node"]


class Node:
    """A named participant in the simulation."""

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    def receive(self, message: Any) -> None:
        """Handle a message delivered by a link.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
