"""Deterministic discrete-event simulation kernel.

The paper's properties are *timing dependent*: the AD merge function M
depends on how the alert streams interleave (Appendix B).  To both explore
that timing space and replay any interesting run exactly, all components
execute on this kernel: a priority queue of timestamped events with a
deterministic total order — events fire in (time, insertion-sequence)
order, so identical seeds always produce identical runs.

The queue holds plain ``(time, seq, event)`` tuples so heap sifting
compares machine floats/ints directly instead of dispatching through
dataclass ``__lt__``.  Cancelled events are discarded lazily: they stay
inert in the heap until they reach the head, and when enough of them
accumulate in a large queue the kernel compacts the heap in one pass.

Observability: attaching a tracer (any object with
``emit(time, stage, kind, node, **data)`` — see
:mod:`repro.observability.tracer`) to :attr:`Kernel.tracer` records every
schedule/fire/cancel/compact as a structured event.  With no tracer
attached — the default — each hot-path operation pays exactly one
attribute load and ``is None`` check, so tracing is effectively free when
off (the disabled-path overhead is gated under 5% per trial by
``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["Event", "Kernel", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, runaway runs)."""


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Fires in (time, seq) order for determinism."""

    time: float
    seq: int
    action: Callable[[], None]
    note: str = ""
    cancelled: bool = False
    #: Back-reference to the kernel's tracer, set only while tracing is on,
    #: so ``cancel()`` can be observed without the event knowing its kernel.
    tracer: object | None = None

    def cancel(self) -> None:
        """Prevent this event from firing (it stays in the queue inert)."""
        if self.tracer is not None and not self.cancelled:
            self.tracer.emit(
                self.time, "kernel", "cancel", "", seq=self.seq, note=self.note
            )
        self.cancelled = True


#: Queues smaller than this are never compacted — the lazy pop-at-head
#: discipline already handles them, and small unit-test workloads keep
#: exactly the behaviour they had before compaction existed.
_COMPACT_MIN_QUEUE = 1024


class Kernel:
    """Event queue and simulated clock.

    Usage::

        kernel = Kernel()
        kernel.schedule(1.5, lambda: print("fired"), note="demo")
        kernel.run()
    """

    def __init__(self, tracer: object | None = None) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pushes_since_compact = 0
        #: Optional observability sink (duck-typed; see module docstring).
        self.tracer = tracer

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None], note: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, note)

    def schedule_at(self, time: float, action: Callable[[], None], note: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = next(self._counter)
        event = Event(time, seq, action, note)
        tracer = self.tracer
        if tracer is not None:
            event.tracer = tracer
            tracer.emit(
                self._now, "kernel", "schedule", "", seq=seq, at=time, note=note
            )
        heapq.heappush(self._queue, (time, seq, event))
        self._pushes_since_compact += 1
        if (
            self._pushes_since_compact >= _COMPACT_MIN_QUEUE
            and len(self._queue) >= _COMPACT_MIN_QUEUE
        ):
            self._maybe_compact()
        return event

    def _maybe_compact(self) -> None:
        """Drop cancelled entries wholesale when they dominate the queue.

        Amortized: the scan runs at most once per ``_COMPACT_MIN_QUEUE``
        pushes, and rebuilds only when at least half the entries are dead.
        """
        self._pushes_since_compact = 0
        queue = self._queue
        live = [entry for entry in queue if not entry[2].cancelled]
        if 2 * len(live) <= len(queue):
            heapq.heapify(live)
            self._queue = live
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    self._now, "kernel", "compact", "",
                    before=len(queue), after=len(live),
                )

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                continue
            self._now = time
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    time, "kernel", "fire", "", seq=_seq, note=event.note
                )
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the queue, optionally stopping at simulated time ``until``.

        ``max_events`` guards against runaway event loops (e.g. a component
        rescheduling itself unconditionally): exceeding it raises
        SimulationError instead of hanging.
        """
        executed = 0
        # Re-read the queue each iteration: a fired callback may schedule
        # enough events to trigger compaction, which rebuilds self._queue
        # as a fresh list — a cached reference would go stale and spin on
        # already-fired entries.
        while self._queue:
            queue = self._queue
            head = queue[0]
            # The until-check must precede cancelled-head cleanup: events
            # beyond the stop time — cancelled or not — belong to a later
            # run() call and must not be popped by this one.
            if until is not None and head[0] > until:
                break
            if head[2].cancelled:
                heapq.heappop(queue)
                continue
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
