"""Deterministic discrete-event simulation kernel.

The paper's properties are *timing dependent*: the AD merge function M
depends on how the alert streams interleave (Appendix B).  To both explore
that timing space and replay any interesting run exactly, all components
execute on this kernel: a priority queue of timestamped events with a
deterministic total order — events fire in (time, insertion-sequence)
order, so identical seeds always produce identical runs.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "Kernel", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, runaway runs)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    note: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (it stays in the queue inert)."""
        self.cancelled = True


class Kernel:
    """Event queue and simulated clock.

    Usage::

        kernel = Kernel()
        kernel.schedule(1.5, lambda: print("fired"), note="demo")
        kernel.run()
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None], note: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, note)

    def schedule_at(self, time: float, action: Callable[[], None], note: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, next(self._counter), action, note)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the queue, optionally stopping at simulated time ``until``.

        ``max_events`` guards against runaway event loops (e.g. a component
        rescheduling itself unconditionally): exceeding it raises
        SimulationError instead of hanging.
        """
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
