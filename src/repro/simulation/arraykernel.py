"""Array-native batched trial executor (struct-of-arrays fast path).

The object kernel (:mod:`repro.simulation.kernel` driven through
:class:`~repro.components.system.MonitoringSystem`) executes one trial as
a heap of per-event closures.  That is the right shape for observability
and for composing components, but it pays per event: a closure
allocation, a heap sift, and an attribute-dispatch chain through
DataMonitor → LossyFifoLink → CENode → expression-AST evaluation.

This module executes the *same* trial as flat passes over preallocated
lists — the struct-of-arrays layout:

* **Integer-coded events.**  The untraced fast path has no event objects
  at all.  The event graph of a monitoring run is feed-forward (readings
  → front deliveries → back deliveries; no stage feeds an earlier one),
  so the run decomposes into three phases executed as plain loops over
  sorted tuple arrays, with integer *rank* counters replicating the
  object kernel's ``(time, seq)`` tie-breaking exactly.
* **Batched RNG draws.**  Per-link draws come from the same named
  ``simulation/rng.py`` streams in the same order, but the draw sites are
  inlined (``lo + span * rng.random()`` instead of a DelayModel dispatch
  per message), so a whole trial's worth of draws for one link is
  materialized by tight repeated calls on one bound method.
* **Compiled conditions.**  :class:`~repro.core.condition.ExpressionCondition`
  ASTs are compiled once (cached by ``cache_key()``) into plain lambdas
  over the per-variable history buffers, replacing the per-delivery AST
  walk.  Opaque conditions fall back to the real
  :class:`~repro.core.evaluator.ConditionEvaluator`.

Differential oracle contract: for any ``(condition, workload, config,
seed)`` — including fault-injected configs — :func:`run_system_array`
returns a :class:`~repro.components.system.RunResult` equal to the object
kernel's, and when a tracer is attached it emits a bit-identical
``repro.trace/1`` event stream.  The traced path replays the object
kernel's global schedule-sequence counter natively rather than delegating
to it, so trace equality is a real end-to-end check, not a tautology.
The object kernel stays authoritative; this module must follow it.
"""

from __future__ import annotations

import heapq

from repro.components.system import RunResult, SystemConfig, Workload
from repro.core.alert import Alert
from repro.core.condition import Condition, ExpressionCondition
from repro.core.evaluator import ConditionEvaluator
from repro.core.expressions import (
    Abs,
    And,
    BinOp,
    BoolConst,
    Compare,
    Const,
    FieldRef,
    Neg,
    Not,
    Or,
)
from repro.core.history import HistorySnapshot
from repro.core.update import Update
from repro.displayers.ad5 import AD5
from repro.displayers.base import ADAlgorithm
from repro.displayers.registry import PassThrough, make_ad
from repro.membership.registry import (
    emit_membership_surface,
    membership_horizon,
    plan_membership,
)
from repro.simulation.kernel import SimulationError
from repro.simulation.network import FixedDelay, PerLinkSkewDelay, UniformDelay
from repro.simulation.rng import RandomStreams

__all__ = ["run_system_array", "compile_condition"]


# ---------------------------------------------------------------------------
# Condition compilation: ExpressionCondition AST -> plain lambda
# ---------------------------------------------------------------------------

class _Unsupported(Exception):
    """An AST node the code generator does not know (fall back to AST walk)."""


#: cache_key() -> compiled closure, or _UNSUPPORTED for uncompilable ASTs.
_CLOSURE_CACHE: dict[tuple, object] = {}
_UNSUPPORTED = object()


def _render_num(node, names: dict[str, str]) -> str:
    kind = type(node)
    if kind is Const:
        return repr(node.value)
    if kind is FieldRef:
        # Buffers are lists most-recent-first, so H.x[-i] is buf[i].
        # float() matches FieldRef.evaluate's coercion (seqnos are ints).
        return f"float({names[node.varname]}[{-node.index}].{node.fieldname})"
    if kind is BinOp:
        left = _render_num(node.left, names)
        right = _render_num(node.right, names)
        return f"({left} {node.op} {right})"
    if kind is Neg:
        return f"(-{_render_num(node.operand, names)})"
    if kind is Abs:
        return f"abs({_render_num(node.operand, names)})"
    raise _Unsupported(kind.__name__)


def _render_bool(node, names: dict[str, str]) -> str:
    kind = type(node)
    if kind is Compare:
        left = _render_num(node.left, names)
        right = _render_num(node.right, names)
        return f"({left} {node.op} {right})"
    if kind is And:
        return f"({_render_bool(node.left, names)} and {_render_bool(node.right, names)})"
    if kind is Or:
        return f"({_render_bool(node.left, names)} or {_render_bool(node.right, names)})"
    if kind is Not:
        return f"(not {_render_bool(node.operand, names)})"
    if kind is BoolConst:
        return "True" if node.value else "False"
    raise _Unsupported(kind.__name__)


def compile_condition(condition: Condition):
    """Compile a condition into ``lambda buf_0, ..., buf_n: bool``.

    Arguments are the per-variable history buffers in sorted-variable
    order, each a list of :class:`Update` most-recent-first and already
    filled to the variable's degree.  Returns None when the condition is
    not a plain :class:`ExpressionCondition` (subclasses may override
    evaluation hooks) or contains an unknown AST node — callers then use
    the real :class:`ConditionEvaluator`.

    The conservative gap-guard of :meth:`Condition.evaluate` is compiled
    in as integer seqno-consecutiveness conjuncts, mirroring
    ``UpdateHistory.is_consecutive``.
    """
    if type(condition) is not ExpressionCondition:
        return None
    key = condition.cache_key()
    cached = _CLOSURE_CACHE.get(key)
    if cached is not None:
        return None if cached is _UNSUPPORTED else cached
    variables = condition.variables
    names = {var: f"b{i}" for i, var in enumerate(variables)}
    try:
        body = _render_bool(condition.expression, names)
    except _Unsupported:
        _CLOSURE_CACHE[key] = _UNSUPPORTED
        return None
    degrees = condition.degrees
    if condition.is_conservative:
        # For non-historical conditions every degree is 1, so the guard is
        # vacuous and no clauses are emitted — exactly Condition.evaluate.
        guards = []
        for var in variables:
            buf = names[var]
            for i in range(degrees[var] - 1):
                guards.append(f"{buf}[{i}].seqno == {buf}[{i + 1}].seqno + 1")
        if guards:
            body = "(" + " and ".join(guards) + ") and " + body
    args = ", ".join(names[var] for var in variables)
    fn = eval(  # noqa: S307 - source is generated from a closed AST
        f"lambda {args}: {body}",
        {"abs": abs, "float": float, "__builtins__": {}},
    )
    _CLOSURE_CACHE[key] = fn
    return fn


# ---------------------------------------------------------------------------
# Delay-model dispatch codes for the inlined sampling sites
# ---------------------------------------------------------------------------

_D_UNIFORM, _D_FIXED, _D_SKEW, _D_GENERIC = 0, 1, 2, 3


def _delay_parts(delay) -> tuple:
    """(kind, params...) so hot loops can sample without method dispatch."""
    kind = type(delay)
    if kind is UniformDelay:
        return (_D_UNIFORM, delay.min_delay, delay.max_delay - delay.min_delay)
    if kind is FixedDelay:
        return (_D_FIXED, delay.delay, 0.0)
    if kind is PerLinkSkewDelay:
        b0, b1 = delay.base_range
        j0, j1 = delay.jitter_range
        return (_D_SKEW, b0, b1 - b0, j0, j1 - j0, delay._bases)
    return (_D_GENERIC,)


# Event kind codes for the traced path's native heap.
_E_READING, _E_FRONT, _E_BACK, _E_REJOIN, _E_CATCHUP = 0, 1, 2, 3, 4

_MAX_EVENTS = 1_000_000


class _Trial:
    """Shared setup for one trial: flattened link/CE/DM parameter arrays."""

    def __init__(
        self,
        condition: Condition,
        workload: Workload,
        config: SystemConfig,
        seed: int,
        algorithm: ADAlgorithm | None,
    ) -> None:
        missing = set(condition.variables) - set(workload)
        if missing:
            raise ValueError(
                f"workload lacks readings for condition variables: {sorted(missing)}"
            )
        self.condition = condition
        self.config = config
        self.seed = seed
        #: A caller-supplied algorithm may be observed (or pre-seeded with
        #: state) by the caller, so the inline AD scan below only replaces
        #: offer() dispatch for algorithms this trial built itself.
        self.own_algorithm = algorithm is None
        self.algorithm = algorithm if algorithm is not None else make_ad(
            config.ad_algorithm, condition
        )
        streams = RandomStreams(seed)
        replication = config.replication
        self.replication = replication

        # -- DMs, in sorted-variable order (MonitoringSystem build order) --
        self.variables = sorted(workload)
        self.readings: list[list[tuple[float, float]]] = []
        for var in self.variables:
            entries = workload[var]
            prev = float("-inf")
            for t, _ in entries:
                if t < prev:
                    raise ValueError(
                        "readings must be in non-decreasing time order"
                    )
                prev = t
            self.readings.append(entries)
        self.dm_crash = [
            config.dm_crash_schedules.get(var) for var in self.variables
        ]
        self.suppressed = [0] * len(self.variables)
        self.next_seqno = [1] * len(self.variables)
        self.sent: list[list[Update]] = [[] for _ in self.variables]
        self.sent_log: list[tuple[float, Update]] = []

        # -- front links, indexed dm_idx * replication + ce_idx --
        n_links = len(self.variables) * replication
        self.n_links = n_links
        self.fl_rng = [None] * n_links
        self.fl_rnd = [None] * n_links
        self.fl_loss = [0.0] * n_links
        self.fl_tag = [0] * n_links
        self.fl_last_tag = [-1] * n_links
        self.fl_skew_base: list[float | None] = [None] * n_links
        for dm_idx, var in enumerate(self.variables):
            for ce_idx in range(replication):
                li = dm_idx * replication + ce_idx
                rng = streams.stream(f"front/{var}/CE{ce_idx + 1}")
                self.fl_rng[li] = rng
                self.fl_rnd[li] = rng.random
                self.fl_loss[li] = config.front_loss_per_ce.get(
                    ce_idx, config.front_loss
                )
        self.front_parts = _delay_parts(config.front_delay)
        if self.front_parts[0] == _D_SKEW:
            bases = self.front_parts[5]
            for li in range(n_links):
                self.fl_skew_base[li] = bases.get(id(self.fl_rng[li]))

        # -- CEs and back links --
        self.ce_crash = [config.crash_schedules.get(i) for i in range(replication)]
        self.front_outage = [config.front_outages.get(i) for i in range(replication)]
        self.back_outage = [config.back_outages.get(i) for i in range(replication)]
        self.missed = [0] * replication
        self.bl_rng = [streams.stream(f"back/CE{i + 1}") for i in range(replication)]
        self.bl_rnd = [rng.random for rng in self.bl_rng]
        self.bl_last = [0.0] * replication
        self.back_parts = _delay_parts(config.back_delay)
        self.bl_skew_base: list[float | None] = [None] * replication
        if self.back_parts[0] == _D_SKEW:
            bases = self.back_parts[5]
            for ce_idx in range(replication):
                self.bl_skew_base[ce_idx] = bases.get(id(self.bl_rng[ce_idx]))

        # -- CE evaluation state: compiled fast path or real evaluator --
        self.closure = compile_condition(condition)
        if self.closure is not None:
            degrees = condition.degrees
            self.cond_vars = condition.variables
            self.cond_degrees = [degrees[var] for var in self.cond_vars]
            #: per CE: one history buffer (most-recent-first list) per
            #: condition variable, in condition-variable order (the order
            #: the compiled closure takes its arguments in).
            self.bufs = [
                [[] for _ in self.cond_vars] for _ in range(replication)
            ]
            #: per CE: varname -> (buffer, degree) for O(1) ingest lookup.
            self.buf_deg = [
                {
                    var: (bufs[i], self.cond_degrees[i])
                    for i, var in enumerate(self.cond_vars)
                }
                for bufs in self.bufs
            ]
            #: HistorySnapshot._entries keys must be in sorted-variable
            #: order (from_trusted canonicalizes with dict(sorted(...)));
            #: precompute (varname, buffer-index) pairs in that order so
            #: the hot path can build the dict pre-sorted.
            self.snap_pairs = sorted(
                (var, i) for i, var in enumerate(self.cond_vars)
            )
            self.defined = [False] * replication
            self.received: list[list[Update]] = [[] for _ in range(replication)]
            self.ce_alerts: list[list[Alert]] = [[] for _ in range(replication)]
            self.evaluators = None
        else:
            self.evaluators = [
                ConditionEvaluator(condition, source=f"CE{i + 1}")
                for i in range(replication)
            ]

        # -- dynamic membership (see repro.membership) --
        self.mem_on = config.membership is not None
        self.mem_plan = None
        if self.mem_on:
            self.mem_plan = plan_membership(
                config.crash_schedules,
                config.ad_crash_schedule,
                replication,
                config.membership,
                membership_horizon(workload),
            )
            self.rec_flag = [False] * replication
            self.mem_buf: list[list[Update]] = [[] for _ in range(replication)]
            self.hw: list[dict[str, int]] = [{} for _ in range(replication)]
            self.caught_up = [0] * replication
            # Membership events in the object kernel's *generation* order
            # (plan.recoveries order, rejoin then catch-up per event) —
            # exactly the schedule-seq order MonitoringSystem assigns, so
            # the traced path can replicate seqs 0..m-1 natively.  The
            # time-sorted view drives the untraced phase-2 merge; sorting
            # by (time, generation-order) equals (time, seq) order.
            sched: list[tuple[float, int, int, int, object]] = []
            for event in self.mem_plan.recoveries:
                sched.append(
                    (event.rejoin_time, len(sched), 0, event.ce_index, event)
                )
                if event.complete_time is not None:
                    sched.append(
                        (event.complete_time, len(sched), 1,
                         event.ce_index, event)
                    )
            self.mem_sched = sched
            self.mem_events = sorted(sched, key=lambda e: (e[0], e[1]))

        # -- AD --
        self.ad_arrivals: list[Alert] = []
        self.ad_times: list[float] = []
        self.ad_avail = config.ad_crash_schedule
        #: Filled by the untraced inline AD scan (pass/AD-5); None means
        #: the real ADAlgorithm object processed the stream and holds the
        #: output (the traced path and the generic-algorithm fallback).
        self.displayed: tuple[Alert, ...] | None = None
        self.filtered: tuple[Alert, ...] | None = None

    # -- shared inner steps --------------------------------------------------

    def _sample_front(self, li: int, now: float) -> float:
        """One front-link delay draw for link ``li`` at time ``now``.

        Mirrors ``Link._sample_delay``: model draw, then spike factor.
        The hot untraced loop inlines the uniform/skew cases; this helper
        serves the duplicate-copy path and the traced path.
        """
        parts = self.front_parts
        kind = parts[0]
        if kind == _D_UNIFORM:
            delay = parts[1] + parts[2] * self.fl_rnd[li]()
        elif kind == _D_SKEW:
            base = self.fl_skew_base[li]
            if base is None:
                base = parts[1] + parts[2] * self.fl_rnd[li]()
                self.fl_skew_base[li] = base
                parts[5][id(self.fl_rng[li])] = base
            delay = base + (parts[3] + parts[4] * self.fl_rnd[li]())
        elif kind == _D_FIXED:
            delay = parts[1]
        else:
            delay = self.config.front_delay.sample(self.fl_rng[li])
        spikes = self.config.front_delay_spikes
        if spikes is not None:
            delay *= spikes.factor_at(now)
        return delay

    def _sample_back(self, ce_idx: int, now: float) -> float:
        parts = self.back_parts
        kind = parts[0]
        if kind == _D_UNIFORM:
            delay = parts[1] + parts[2] * self.bl_rnd[ce_idx]()
        elif kind == _D_SKEW:
            base = self.bl_skew_base[ce_idx]
            if base is None:
                base = parts[1] + parts[2] * self.bl_rnd[ce_idx]()
                self.bl_skew_base[ce_idx] = base
                parts[5][id(self.bl_rng[ce_idx])] = base
            delay = base + (parts[3] + parts[4] * self.bl_rnd[ce_idx]())
        elif kind == _D_FIXED:
            delay = parts[1]
        else:
            delay = self.config.back_delay.sample(self.bl_rng[ce_idx])
        spikes = self.config.back_delay_spikes
        if spikes is not None:
            delay *= spikes.factor_at(now)
        return delay

    def _ingest(self, ce_idx: int, update: Update) -> Alert | None:
        """CE evaluation step; exact ConditionEvaluator.ingest semantics.

        Serves the traced path and the duplicate-heavy corners; the
        untraced phase-2 loop inlines an equivalent body.
        """
        if self.closure is None:
            return self.evaluators[ce_idx].ingest(update)
        pair = self.buf_deg[ce_idx].get(update.varname)
        if pair is None:
            # Variable outside V: ignored entirely, not recorded.
            return None
        buf, degree = pair
        buf.insert(0, update)
        if len(buf) > degree:
            buf.pop()
        self.received[ce_idx].append(update)
        bufs = self.bufs[ce_idx]
        if not self.defined[ce_idx]:
            for entries, deg in zip(bufs, self.cond_degrees):
                if len(entries) < deg:
                    return None
            self.defined[ce_idx] = True
        if not self.closure(*bufs):
            return None
        alert = Alert(
            self.condition.name,
            HistorySnapshot.from_trusted(
                {var: tuple(entries) for var, entries in zip(self.cond_vars, bufs)}
            ),
            f"CE{ce_idx + 1}",
        )
        self.ce_alerts[ce_idx].append(alert)
        return alert

    def _deliver_back(self, ce_idx: int, now: float) -> float:
        """Back-link delivery-time computation (ReliableLink/StoreAndForward).

        Returns the delivery time; updates the per-link monotone clamp.
        Used by the untraced path (the traced path re-derives it inline so
        it can emit the hold events at the right points).
        """
        raw = now + self._sample_back(ce_idx, now)
        outage = self.back_outage[ce_idx]
        if outage is not None:
            up_at = outage.next_up_time(raw)
            if up_at > raw:
                raw = up_at
        delivery = raw if raw > self.bl_last[ce_idx] else self.bl_last[ce_idx]
        if self.ad_avail is not None:
            available_at = self.ad_avail.next_up_time(delivery)
            if available_at > delivery:
                delivery = available_at
        self.bl_last[ce_idx] = delivery
        if delivery < now:
            raise SimulationError(
                f"cannot schedule at {delivery} before current time {now}"
            )
        return delivery

    # -- membership lifecycle (mirrors CENode emission for emission) --------

    def _mem_rejoin(self, ce_idx: int, event, now: float, emit=None) -> None:
        """Rejoin: flush an aborted recovery's buffer, enter recovering."""
        buf = self.mem_buf[ce_idx]
        if buf:
            self.missed[ce_idx] += len(buf)
            buf.clear()
        self.rec_flag[ce_idx] = event.source != "none"
        if emit is not None:
            emit(now, "membership", "rejoin", f"CE{ce_idx + 1}",
                 source=event.source, attempts=event.attempts,
                 aborted=event.aborted)

    def _mem_catchup(self, ce_idx: int, event, now: float, on_alert,
                     emit=None) -> None:
        """Catch-up: snapshot the source's knowledge at fire time,
        clock-filter, replay through evaluation, then the live buffer.

        ``on_alert(ce_idx, alert, now)`` ships a raised alert over the
        back link — the untraced path appends to the phase-3 queue, the
        traced path runs the full emit-and-schedule send block.
        """
        self.rec_flag[ce_idx] = False
        if event.source == "log":
            # sent_log append order is already (time, varname)-sorted;
            # the time filter matters on the untraced path, where phase 1
            # has logged the whole run's sends before any delivery fires.
            knowledge = [u for t, u in self.sent_log if t < now]
        else:
            peer = int(event.source.rsplit(":CE", 1)[1]) - 1
            if self.closure is not None:
                knowledge = list(self.received[peer])
            else:
                knowledge = list(self.evaluators[peer].received)
        hw = self.hw[ce_idx]
        name = f"CE{ce_idx + 1}"
        recovered = replayed = stale = 0
        for update in knowledge:
            if update.seqno <= hw.get(update.varname, 0):
                continue
            hw[update.varname] = update.seqno
            if emit is not None:
                emit(now, "membership", "catchup-ingest", name,
                     msg=str(update), source=event.source)
            recovered += 1
            alert = self._ingest(ce_idx, update)
            if alert is not None:
                if emit is not None:
                    emit(now, "ce", "alert-raised", name, alert=str(alert))
                on_alert(ce_idx, alert, now)
        for update in self.mem_buf[ce_idx]:
            if update.seqno <= hw.get(update.varname, 0):
                stale += 1
                continue
            hw[update.varname] = update.seqno
            if emit is not None:
                emit(now, "membership", "replay-buffered", name,
                     msg=str(update))
            replayed += 1
            alert = self._ingest(ce_idx, update)
            if alert is not None:
                if emit is not None:
                    emit(now, "ce", "alert-raised", name, alert=str(alert))
                on_alert(ce_idx, alert, now)
        self.mem_buf[ce_idx].clear()
        self.caught_up[ce_idx] += recovered
        if emit is not None:
            emit(now, "membership", "catchup-complete", name,
                 source=event.source, recovered=recovered,
                 replayed=replayed, stale=stale,
                 clock={var: hw[var] for var in sorted(hw)})

    # -- result assembly -----------------------------------------------------

    def result(self) -> RunResult:
        if self.mem_on:
            # A node still recovering at end of run never evaluated its
            # buffered arrivals — they count as missed (CENode.flush).
            for ce_idx, buf in enumerate(self.mem_buf):
                if buf:
                    self.missed[ce_idx] += len(buf)
                    buf.clear()
                self.rec_flag[ce_idx] = False
        if self.closure is None:
            received = tuple(e.received for e in self.evaluators)
            ce_alerts = tuple(e.alerts for e in self.evaluators)
        else:
            received = tuple(tuple(r) for r in self.received)
            ce_alerts = tuple(tuple(a) for a in self.ce_alerts)
        return RunResult(
            condition=self.condition,
            config=self.config,
            seed=self.seed,
            sent={
                var: tuple(sent)
                for var, sent in zip(self.variables, self.sent)
            },
            # Appended in fire order on both paths: readings execute in
            # (time, schedule-seq) order, scheduling is DM-major over
            # sorted variables, so append order is already the object
            # kernel's sorted (time, varname) order.
            sent_log=tuple(self.sent_log),
            received=received,
            ce_alerts=ce_alerts,
            ad_arrivals=tuple(self.ad_arrivals),
            ad_arrival_times=tuple(self.ad_times),
            displayed=(
                self.displayed if self.displayed is not None
                else self.algorithm.output
            ),
            filtered=(
                self.filtered if self.filtered is not None
                else self.algorithm.discarded
            ),
            missed_while_down=tuple(self.missed),
            dm_suppressed=tuple(self.suppressed),
            caught_up=tuple(self.caught_up) if self.mem_on else (),
            membership=self.mem_plan,
        )


# ---------------------------------------------------------------------------
# Untraced fast path: three flat phases, no heap, no event objects
# ---------------------------------------------------------------------------

def _run_untraced(trial: _Trial) -> RunResult:
    config = trial.config
    replication = trial.replication
    _new = object.__new__
    _oset = object.__setattr__

    # Phase 1 — readings.  The object kernel schedules every reading before
    # any delivery (so reading seqs globally precede delivery seqs) and
    # per-DM reading times are non-decreasing, so its fire order is exactly
    # (time, dm_idx, reading_idx).  Readings mutate only DM/send-side state,
    # so they can all run before any delivery.
    merged: list[tuple[float, int, int, float]] = []
    for dm_idx, entries in enumerate(trial.readings):
        for ridx, (time, value) in enumerate(entries):
            if time < 0.0:
                raise SimulationError(
                    f"cannot schedule at {time} before current time 0.0"
                )
            merged.append((time, dm_idx, ridx, value))
    merged.sort()

    variables = trial.variables
    dm_crash = trial.dm_crash
    suppressed = trial.suppressed
    next_seqno = trial.next_seqno
    sent_append = [s.append for s in trial.sent]
    sent_log_append = trial.sent_log.append
    fl_rnd = trial.fl_rnd
    fl_rng = trial.fl_rng
    fl_loss = trial.fl_loss
    fl_tag = trial.fl_tag
    fl_skew_base = trial.fl_skew_base
    front_outage = trial.front_outage
    parts = trial.front_parts
    front_kind = parts[0]
    fp1 = parts[1] if len(parts) > 1 else 0.0
    fp2 = parts[2] if len(parts) > 2 else 0.0
    fp3 = parts[3] if len(parts) > 3 else 0.0
    fp4 = parts[4] if len(parts) > 4 else 0.0
    front_spikes = config.front_delay_spikes
    loss_model = config.front_loss_model
    duplication = config.front_duplication
    ce_range = range(replication)

    #: (arrival_time, rank, tag, link_idx, update) — rank replicates the
    #: object kernel's schedule-seq *relative* order among front events.
    arrivals: list[tuple[float, int, int, int, Update]] = []
    arrivals_append = arrivals.append
    if loss_model is None and duplication is None:
        # Common path: per-link RNG streams are independent (Bernoulli
        # coin and delay draws both come from the link's own stream), so
        # after one merged pass materializes the surviving updates, each
        # link's whole trial of draws runs as one tight batch.  Ranks are
        # assigned ``reading_index * replication + ce_idx``: not dense,
        # but monotone in the object kernel's schedule order, which is
        # all the phase-2 sort needs.
        surviving: list[list[tuple[int, float, Update]]] = [
            [] for _ in variables
        ]
        r_index = 0
        for time, dm_idx, _ridx, value in merged:
            crash = dm_crash[dm_idx]
            if crash is not None and not crash.is_up(time):
                suppressed[dm_idx] += 1
                continue
            seqno = next_seqno[dm_idx]
            next_seqno[dm_idx] = seqno + 1
            # Fast frozen-dataclass construction: the inputs are valid by
            # construction (non-empty varname, seqno >= 1), so skip
            # __init__'s indirection and __post_init__ validation.
            update = _new(Update)
            _oset(update, "varname", variables[dm_idx])
            _oset(update, "seqno", seqno)
            _oset(update, "value", value)
            sent_append[dm_idx](update)
            sent_log_append((time, update))
            surviving[dm_idx].append((r_index, time, update))
            r_index += 1
        for dm_idx in range(len(variables)):
            batch = surviving[dm_idx]
            if not batch:
                continue
            base_li = dm_idx * replication
            for ce_idx in ce_range:
                li = base_li + ce_idx
                rnd = fl_rnd[li]
                loss = fl_loss[li]
                outage = front_outage[ce_idx]
                tag = fl_tag[li]
                skew_base = fl_skew_base[li]
                for r_index, time, update in batch:
                    mtag = tag
                    tag += 1
                    if outage is not None and not outage.is_up(time):
                        continue
                    if rnd() < loss:
                        continue
                    if front_kind == _D_UNIFORM:
                        delay = fp1 + fp2 * rnd()
                    elif front_kind == _D_SKEW:
                        if skew_base is None:
                            skew_base = fp1 + fp2 * rnd()
                            fl_skew_base[li] = skew_base
                            parts[5][id(fl_rng[li])] = skew_base
                        delay = skew_base + (fp3 + fp4 * rnd())
                    elif front_kind == _D_FIXED:
                        delay = fp1
                    else:
                        delay = config.front_delay.sample(fl_rng[li])
                    if front_spikes is not None:
                        delay *= front_spikes.factor_at(time)
                    if delay < 0:
                        raise SimulationError(
                            f"cannot schedule into the past (delay={delay})"
                        )
                    arrivals_append(
                        (time + delay,
                         r_index * replication + ce_idx, mtag, li, update)
                    )
                fl_tag[li] = tag
    else:
        # Adversarial path: a shared stateful loss model (Gilbert–Elliott
        # chain) or duplication draws consume randomness in global fire
        # order, so sends must interleave exactly as the object kernel's.
        rank = 0
        for time, dm_idx, _ridx, value in merged:
            crash = dm_crash[dm_idx]
            if crash is not None and not crash.is_up(time):
                suppressed[dm_idx] += 1
                continue
            seqno = next_seqno[dm_idx]
            next_seqno[dm_idx] = seqno + 1
            update = _new(Update)
            _oset(update, "varname", variables[dm_idx])
            _oset(update, "seqno", seqno)
            _oset(update, "value", value)
            sent_append[dm_idx](update)
            sent_log_append((time, update))
            base_li = dm_idx * replication
            for ce_idx in ce_range:
                li = base_li + ce_idx
                tag = fl_tag[li]
                fl_tag[li] = tag + 1
                outage = front_outage[ce_idx]
                if outage is not None and not outage.is_up(time):
                    continue
                rnd = fl_rnd[li]
                if loss_model is not None:
                    if loss_model.dropped(fl_rng[li]):
                        continue
                elif rnd() < fl_loss[li]:
                    continue
                if front_kind == _D_UNIFORM:
                    delay = fp1 + fp2 * rnd()
                elif front_kind == _D_SKEW:
                    base = fl_skew_base[li]
                    if base is None:
                        base = fp1 + fp2 * rnd()
                        fl_skew_base[li] = base
                        parts[5][id(fl_rng[li])] = base
                    delay = base + (fp3 + fp4 * rnd())
                elif front_kind == _D_FIXED:
                    delay = fp1
                else:
                    delay = config.front_delay.sample(fl_rng[li])
                if front_spikes is not None:
                    delay *= front_spikes.factor_at(time)
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule into the past (delay={delay})"
                    )
                arrivals_append((time + delay, rank, tag, li, update))
                rank += 1
                if duplication is not None:
                    for _ in range(duplication.draw_copies(fl_rng[li])):
                        delay = trial._sample_front(li, time)
                        if delay < 0:
                            raise SimulationError(
                                f"cannot schedule into the past (delay={delay})"
                            )
                        arrivals_append((time + delay, rank, tag, li, update))
                        rank += 1

    # Phase 2 — front deliveries in (time, rank) order.  Back-link sends
    # happen inline (their RNG draws occur in delivery-fire order, exactly
    # as in the object kernel); deliveries to the AD are deferred to phase 3
    # since they touch only AD state.
    arrivals.sort()
    fl_last_tag = trial.fl_last_tag
    ce_crash = trial.ce_crash
    missed = trial.missed
    back_events: list[tuple[float, int, Alert, tuple | None]] = []
    back_append = back_events.append
    brank = 0

    # Back-link locals, shared by both phase-2 bodies below.
    bparts = trial.back_parts
    back_kind = bparts[0]
    bp1 = bparts[1] if len(bparts) > 1 else 0.0
    bp2 = bparts[2] if len(bparts) > 2 else 0.0
    bp3 = bparts[3] if len(bparts) > 3 else 0.0
    bp4 = bparts[4] if len(bparts) > 4 else 0.0
    back_spikes = config.back_delay_spikes
    bl_rnd = trial.bl_rnd
    bl_rng = trial.bl_rng
    bl_skew_base = trial.bl_skew_base
    bl_last = trial.bl_last
    back_outage = trial.back_outage
    ad_avail = trial.ad_avail

    closure = trial.closure
    algorithm = trial.algorithm
    #: Inline AD-5 needs per-alert head seqnos in algorithm.varnames order;
    #: the closure path has them for free iff the buffer order matches.
    ad5_inline = (
        trial.own_algorithm
        and type(algorithm) is AD5
        and closure is not None
        and tuple(algorithm.varnames) == tuple(trial.cond_vars)
    )

    # Membership events merge into the phase-2 stream by (time, seq): they
    # hold the globally lowest schedule seqs, so at equal time a rejoin or
    # catch-up fires before any delivery.  ``fire_mem`` drains all events
    # due at or before the limit; the guard below keeps the membership-off
    # hot path at a single dead comparison per delivery.
    mem_events = trial.mem_events if trial.mem_on else ()
    mn = len(mem_events)
    mi = 0

    def mem_alert(ce_idx: int, alert: Alert, mtime: float) -> None:
        nonlocal brank
        seqs = (
            tuple([b[0].seqno for b in trial.bufs[ce_idx]])
            if ad5_inline else None
        )
        back_append((trial._deliver_back(ce_idx, mtime), brank, alert, seqs))
        brank += 1

    def fire_mem(limit: float) -> None:
        nonlocal mi
        while mi < mn and mem_events[mi][0] <= limit:
            mtime, _order, mkind, mce, mev = mem_events[mi]
            mi += 1
            if mkind == 0:
                trial._mem_rejoin(mce, mev, mtime)
            else:
                trial._mem_catchup(mce, mev, mtime, mem_alert)

    if closure is not None:
        buf_deg = trial.buf_deg
        bufs_all = trial.bufs
        cond_degrees = trial.cond_degrees
        defined = trial.defined
        recv_append = [r.append for r in trial.received]
        ce_alerts_append = [a.append for a in trial.ce_alerts]
        snap_pairs = trial.snap_pairs
        condname = trial.condition.name
        sources = [f"CE{i + 1}" for i in ce_range]
        # Per-link lookup tables: one list index replaces a modulo plus a
        # dict probe in the delivery loop.
        li_ce = [li % replication for li in range(trial.n_links)]
        li_pair = [
            buf_deg[li % replication].get(variables[li // replication])
            for li in range(trial.n_links)
        ]
        mem_on = trial.mem_on
        for time, _rank, tag, li, update in arrivals:
            if mi < mn and mem_events[mi][0] <= time:
                fire_mem(time)
            if tag <= fl_last_tag[li]:
                continue  # duplicate or reordered datagram: receiver drops it
            fl_last_tag[li] = tag
            ce_idx = li_ce[li]
            crash = ce_crash[ce_idx]
            if crash is not None and not crash.is_up(time):
                missed[ce_idx] += 1
                continue
            if mem_on:
                if trial.rec_flag[ce_idx]:
                    trial.mem_buf[ce_idx].append(update)
                    continue
                if update.seqno <= trial.hw[ce_idx].get(update.varname, 0):
                    continue  # stale in-flight datagram: catch-up beat it
                trial.hw[ce_idx][update.varname] = update.seqno
            # -- inline ConditionEvaluator.ingest ------------------------
            pair = li_pair[li]
            if pair is None:
                continue  # variable outside V: ignored entirely
            buf, degree = pair
            buf.insert(0, update)
            if len(buf) > degree:
                buf.pop()
            recv_append[ce_idx](update)
            bufs = bufs_all[ce_idx]
            if not defined[ce_idx]:
                short = False
                for hist, deg in zip(bufs, cond_degrees):
                    if len(hist) < deg:
                        short = True
                        break
                if short:
                    continue
                defined[ce_idx] = True
            if not closure(*bufs):
                continue
            # -- alert construction (fast frozen-dataclass path) ---------
            entries_map = {}
            for var, bi in snap_pairs:
                entries_map[var] = tuple(bufs[bi])
            snap = _new(HistorySnapshot)
            _oset(snap, "_entries", entries_map)
            alert = _new(Alert)
            _oset(alert, "condname", condname)
            _oset(alert, "histories", snap)
            _oset(alert, "source", sources[ce_idx])
            ce_alerts_append[ce_idx](alert)
            # -- inline back-link send (ReliableLink/StoreAndForward) ----
            if back_kind == _D_UNIFORM:
                bdelay = bp1 + bp2 * bl_rnd[ce_idx]()
            elif back_kind == _D_SKEW:
                base = bl_skew_base[ce_idx]
                if base is None:
                    base = bp1 + bp2 * bl_rnd[ce_idx]()
                    bl_skew_base[ce_idx] = base
                    bparts[5][id(bl_rng[ce_idx])] = base
                bdelay = base + (bp3 + bp4 * bl_rnd[ce_idx]())
            elif back_kind == _D_FIXED:
                bdelay = bp1
            else:
                bdelay = config.back_delay.sample(bl_rng[ce_idx])
            if back_spikes is not None:
                bdelay *= back_spikes.factor_at(time)
            raw = time + bdelay
            outage = back_outage[ce_idx]
            if outage is not None:
                up_at = outage.next_up_time(raw)
                if up_at > raw:
                    raw = up_at
            last = bl_last[ce_idx]
            delivery = raw if raw > last else last
            if ad_avail is not None:
                available_at = ad_avail.next_up_time(delivery)
                if available_at > delivery:
                    delivery = available_at
            bl_last[ce_idx] = delivery
            if delivery < time:
                raise SimulationError(
                    f"cannot schedule at {delivery} before current time {time}"
                )
            seqs = tuple([b[0].seqno for b in bufs]) if ad5_inline else None
            back_append((delivery, brank, alert, seqs))
            brank += 1
    else:
        ingest = trial._ingest
        deliver_back = trial._deliver_back
        mem_on = trial.mem_on
        for time, _rank, tag, li, update in arrivals:
            if mi < mn and mem_events[mi][0] <= time:
                fire_mem(time)
            if tag <= fl_last_tag[li]:
                continue
            fl_last_tag[li] = tag
            ce_idx = li % replication
            crash = ce_crash[ce_idx]
            if crash is not None and not crash.is_up(time):
                missed[ce_idx] += 1
                continue
            if mem_on:
                if trial.rec_flag[ce_idx]:
                    trial.mem_buf[ce_idx].append(update)
                    continue
                if update.seqno <= trial.hw[ce_idx].get(update.varname, 0):
                    continue
                trial.hw[ce_idx][update.varname] = update.seqno
            alert = ingest(ce_idx, update)
            if alert is not None:
                back_append((deliver_back(ce_idx, time), brank, alert, None))
                brank += 1
    if mi < mn:
        fire_mem(float("inf"))

    # Phase 3 — AD deliveries in (time, brank) order.  For the two
    # hottest algorithms the accept/record scan runs inline over plain
    # ints; anything else goes through the real ADAlgorithm object.
    back_events.sort()
    ad_arrivals_append = trial.ad_arrivals.append
    ad_times_append = trial.ad_times.append
    if trial.own_algorithm and type(algorithm) is PassThrough:
        displayed = []
        for time, _brank, alert, _seqs in back_events:
            ad_arrivals_append(alert)
            ad_times_append(time)
            displayed.append(alert)
        trial.displayed = tuple(displayed)
        trial.filtered = ()
    elif trial.own_algorithm and type(algorithm) is AD5:
        varnames = algorithm.varnames
        ad_last = [-1] * len(varnames)
        displayed = []
        filtered = []
        for time, _brank, alert, seqs in back_events:
            ad_arrivals_append(alert)
            ad_times_append(time)
            if seqs is None:
                seqno = alert.seqno
                seqs = tuple([seqno(var) for var in varnames])
            inverted = False
            duplicate = True
            for s, l in zip(seqs, ad_last):
                if s < l:
                    inverted = True
                    break
                if s != l:
                    duplicate = False
            if inverted or duplicate:
                filtered.append(alert)
            else:
                ad_last[:] = seqs
                displayed.append(alert)
        trial.displayed = tuple(displayed)
        trial.filtered = tuple(filtered)
    else:
        offer = algorithm.offer
        for time, _brank, alert, _seqs in back_events:
            ad_arrivals_append(alert)
            ad_times_append(time)
            offer(alert)

    return trial.result()


# ---------------------------------------------------------------------------
# Traced path: native heap replaying the object kernel's (time, seq) order
# and emitting a bit-identical repro.trace/1 event stream
# ---------------------------------------------------------------------------

def _emit_fault_surface(trial: _Trial, emit) -> None:
    """Identical to MonitoringSystem._emit_fault_surface, field for field."""
    config = trial.config
    for index in sorted(config.crash_schedules):
        for start, end in config.crash_schedules[index].windows:
            emit(0.0, "fault", "ce-crash-window", f"CE{index + 1}",
                 start=start, end=end)
    for varname in sorted(config.dm_crash_schedules):
        for start, end in config.dm_crash_schedules[varname].windows:
            emit(0.0, "fault", "dm-crash-window", f"DM-{varname}",
                 start=start, end=end)
    if config.ad_crash_schedule is not None:
        for start, end in config.ad_crash_schedule.windows:
            emit(0.0, "fault", "ad-crash-window", "AD", start=start, end=end)
    for index in sorted(config.front_outages):
        for start, end in config.front_outages[index].windows:
            emit(0.0, "fault", "front-outage-window", f"CE{index + 1}",
                 start=start, end=end)
    for index in sorted(config.back_outages):
        for start, end in config.back_outages[index].windows:
            emit(0.0, "fault", "back-outage-window", f"CE{index + 1}->AD",
                 start=start, end=end)
    if config.front_loss_model is not None:
        params = config.front_loss_model.params
        emit(0.0, "fault", "burst-loss", "front",
             good_to_bad=params.good_to_bad, bad_to_good=params.bad_to_good,
             loss_good=params.loss_good, loss_bad=params.loss_bad)
    if config.front_duplication is not None:
        emit(0.0, "fault", "duplication", "front",
             prob=config.front_duplication.duplicate_prob,
             max_copies=config.front_duplication.max_copies)
    for side, spikes in (
        ("front", config.front_delay_spikes),
        ("back", config.back_delay_spikes),
    ):
        if spikes is not None:
            for start, end in spikes.windows:
                emit(0.0, "fault", "delay-spike-window", side,
                     start=start, end=end, factor=spikes.factor)


def _run_traced(trial: _Trial, tracer) -> RunResult:
    config = trial.config
    replication = trial.replication
    emit = tracer.emit
    _emit_fault_surface(trial, emit)
    if trial.mem_on:
        emit_membership_surface(emit, trial.mem_plan)
    # Link display names are only needed for trace notes, so they are
    # built here rather than in the (hot) shared _Trial setup.
    trial.fl_name = [
        f"DM-{var}->CE{ce_idx + 1}"
        for var in trial.variables
        for ce_idx in range(replication)
    ]

    # Heap of (time, seq, kind, payload); seq replicates the object
    # kernel's global schedule counter exactly, including readings.
    heap: list[tuple[float, int, int, tuple]] = []
    seq = 0
    # Membership events are scheduled before any reading (MonitoringSystem
    # run-order), so they take seqs 0..m-1 and win every time tie.
    if trial.mem_on:
        for mtime, _order, mkind, mce, mev in trial.mem_sched:
            note = (
                f"CE{mce + 1} rejoin" if mkind == 0
                else f"CE{mce + 1} catch-up"
            )
            emit(0.0, "kernel", "schedule", "", seq=seq, at=mtime, note=note)
            heap.append(
                (mtime, seq,
                 _E_REJOIN if mkind == 0 else _E_CATCHUP, (mce, mev, note))
            )
            seq += 1
    for dm_idx, var in enumerate(trial.variables):
        note = f"DM-{var} reading"
        for time, value in trial.readings[dm_idx]:
            if time < 0.0:
                raise SimulationError(
                    f"cannot schedule at {time} before current time 0.0"
                )
            emit(0.0, "kernel", "schedule", "", seq=seq, at=time, note=note)
            heap.append((time, seq, _E_READING, (dm_idx, value, note)))
            seq += 1
    heapq.heapify(heap)

    def send_back(ce_idx: int, alert: Alert, now: float) -> None:
        """The CE->AD send block (ReliableLink/StoreAndForward semantics):
        emits link/send, the hold events, the monotone clamp, and the
        delivery schedule.  Shared by front-delivery alerts and catch-up
        replay alerts."""
        nonlocal seq
        back_name = f"CE{ce_idx + 1}->AD"
        amsg = str(alert)
        emit(now, "link", "send", back_name, msg=amsg)
        raw = now + trial._sample_back(ce_idx, now)
        outage = trial.back_outage[ce_idx]
        if outage is not None:
            up_at = outage.next_up_time(raw)
            if up_at > raw:
                emit(now, "link", "hold", back_name,
                     msg=amsg, until=up_at, reason="outage")
                raw = up_at
        delivery = raw if raw > trial.bl_last[ce_idx] else trial.bl_last[ce_idx]
        if trial.ad_avail is not None:
            available_at = trial.ad_avail.next_up_time(delivery)
            if available_at > delivery:
                emit(now, "link", "hold", back_name,
                     msg=amsg, until=available_at)
                delivery = available_at
        trial.bl_last[ce_idx] = delivery
        if delivery < now:
            raise SimulationError(
                f"cannot schedule at {delivery} before current time {now}"
            )
        note = f"{back_name} deliver"
        emit(now, "kernel", "schedule", "", seq=seq, at=delivery, note=note)
        heapq.heappush(heap, (delivery, seq, _E_BACK, (ce_idx, alert, note)))
        seq += 1

    loss_model = config.front_loss_model
    duplication = config.front_duplication
    processed = 0
    while heap:
        if processed >= _MAX_EVENTS:
            raise SimulationError(
                f"exceeded max_events={_MAX_EVENTS}; runaway simulation?"
            )
        time, eseq, kind, payload = heapq.heappop(heap)
        emit(time, "kernel", "fire", "", seq=eseq, note=payload[-1])
        processed += 1

        if kind == _E_READING:
            dm_idx, value, _note = payload
            crash = trial.dm_crash[dm_idx]
            if crash is not None and not crash.is_up(time):
                trial.suppressed[dm_idx] += 1
                emit(time, "dm", "suppressed", f"DM-{trial.variables[dm_idx]}",
                     value=value, reason="crashed")
                continue
            seqno = trial.next_seqno[dm_idx]
            trial.next_seqno[dm_idx] = seqno + 1
            update = Update(trial.variables[dm_idx], seqno, value)
            trial.sent[dm_idx].append(update)
            trial.sent_log.append((time, update))
            msg = str(update)
            for ce_idx in range(replication):
                li = dm_idx * replication + ce_idx
                name = trial.fl_name[li]
                tag = trial.fl_tag[li]
                trial.fl_tag[li] = tag + 1
                emit(time, "link", "send", name, msg=msg, tag=tag)
                outage = trial.front_outage[ce_idx]
                if outage is not None and not outage.is_up(time):
                    emit(time, "link", "drop", name,
                         msg=msg, tag=tag, reason="outage")
                    continue
                if loss_model is not None:
                    if loss_model.dropped(trial.fl_rng[li]):
                        emit(time, "link", "drop", name,
                             msg=msg, tag=tag, reason="burst")
                        continue
                elif trial.fl_rnd[li]() < trial.fl_loss[li]:
                    emit(time, "link", "drop", name,
                         msg=msg, tag=tag, reason="loss")
                    continue
                delay = trial._sample_front(li, time)
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule into the past (delay={delay})"
                    )
                note = f"{name} deliver"
                emit(time, "kernel", "schedule", "",
                     seq=seq, at=time + delay, note=note)
                heapq.heappush(
                    heap, (time + delay, seq, _E_FRONT, (li, tag, update, note))
                )
                seq += 1
                if duplication is not None:
                    for _ in range(duplication.draw_copies(trial.fl_rng[li])):
                        emit(time, "link", "duplicate", name, msg=msg, tag=tag)
                        delay = trial._sample_front(li, time)
                        if delay < 0:
                            raise SimulationError(
                                f"cannot schedule into the past (delay={delay})"
                            )
                        note = f"{name} dup-deliver"
                        emit(time, "kernel", "schedule", "",
                             seq=seq, at=time + delay, note=note)
                        heapq.heappush(
                            heap,
                            (time + delay, seq, _E_FRONT, (li, tag, update, note)),
                        )
                        seq += 1

        elif kind == _E_FRONT:
            li, tag, update, _note = payload
            name = trial.fl_name[li]
            msg = str(update)
            last = trial.fl_last_tag[li]
            if tag <= last:
                reason = "duplicate" if tag == last else "reorder"
                emit(time, "link", "drop", name, msg=msg, tag=tag, reason=reason)
                continue
            trial.fl_last_tag[li] = tag
            emit(time, "link", "deliver", name, msg=msg, tag=tag)
            ce_idx = li % replication
            ce_name = f"CE{ce_idx + 1}"
            crash = trial.ce_crash[ce_idx]
            if crash is not None and not crash.is_up(time):
                trial.missed[ce_idx] += 1
                emit(time, "ce", "missed", ce_name, msg=msg, reason="crashed")
                continue
            if trial.mem_on:
                if trial.rec_flag[ce_idx]:
                    trial.mem_buf[ce_idx].append(update)
                    emit(time, "membership", "buffered", ce_name,
                         msg=msg, reason="recovering")
                    continue
                if update.seqno <= trial.hw[ce_idx].get(update.varname, 0):
                    emit(time, "membership", "stale-drop", ce_name, msg=msg)
                    continue
                trial.hw[ce_idx][update.varname] = update.seqno
            emit(time, "ce", "update-received", ce_name, msg=msg)
            alert = trial._ingest(ce_idx, update)
            if alert is None:
                continue
            emit(time, "ce", "alert-raised", ce_name, alert=str(alert))
            send_back(ce_idx, alert, time)

        elif kind == _E_REJOIN:
            mce, mev, _note = payload
            trial._mem_rejoin(mce, mev, time, emit)

        elif kind == _E_CATCHUP:
            mce, mev, _note = payload
            trial._mem_catchup(mce, mev, time, send_back, emit)

        else:  # _E_BACK
            ce_idx, alert, _note = payload
            amsg = str(alert)
            emit(time, "link", "deliver", f"CE{ce_idx + 1}->AD", msg=amsg)
            trial.ad_arrivals.append(alert)
            trial.ad_times.append(time)
            emit(time, "ad", "arrive", "AD", alert=amsg)
            if trial.algorithm.offer(alert):
                emit(time, "ad", "display", "AD", alert=amsg)
            else:
                emit(time, "ad", "filter", "AD", alert=amsg,
                     reason=trial.algorithm.rejection_reason(alert))

    return trial.result()


def run_system_array(
    condition: Condition,
    workload: Workload,
    config: SystemConfig,
    seed: int = 0,
    algorithm: ADAlgorithm | None = None,
    tracer: object | None = None,
) -> RunResult:
    """Array-kernel equivalent of :func:`repro.components.system.run_system`.

    Same inputs, same RunResult, same trace stream — see the module
    docstring for the equivalence argument.  Dispatch to it via
    ``run_system(..., kernel="array")`` rather than calling it directly.
    """
    trial = _Trial(condition, workload, config, seed, algorithm)
    if tracer is None:
        return _run_untraced(trial)
    return _run_traced(trial, tracer)
