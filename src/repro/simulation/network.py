"""Network links (Section 2.1 assumptions).

Two link models, matching the paper's assumptions exactly:

* **Front links** (DM → CE) are *in-order but potentially lossy* — UDP
  datagrams with the sender tagging messages and the receiver discarding
  out-of-order arrivals.  :class:`LossyFifoLink` implements both effects:
  each message is independently dropped with probability ``loss_prob``,
  delivered after a random delay otherwise, and suppressed at the receiver
  if a later-sent message has already been delivered (reordering becomes
  loss, which is how the in-order guarantee is obtained cheaply).
* **Back links** (CE → AD) are *lossless and in-order* — a TCP-like
  protocol.  :class:`ReliableLink` delivers every message, with delivery
  times forced monotone per link (a later send never overtakes an earlier
  one), after a random per-message delay.  Randomising back-link delays is
  what explores the space of A1/A2 interleavings at the AD.

Delay models are pluggable; the default is uniform in ``[min_delay,
max_delay]``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from random import Random
from typing import Any

from repro.simulation.kernel import Kernel

__all__ = [
    "DelayModel",
    "UniformDelay",
    "FixedDelay",
    "PerLinkSkewDelay",
    "Link",
    "LossyFifoLink",
    "ReliableLink",
    "StoreAndForwardLink",
]

Receiver = Callable[[Any], None]


class DelayModel:
    """Draws a per-message propagation delay."""

    def sample(self, rng: Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniform delay in [min_delay, max_delay]."""

    min_delay: float = 0.1
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError(
                f"need 0 <= min_delay <= max_delay, got "
                f"[{self.min_delay}, {self.max_delay}]"
            )

    def sample(self, rng: Random) -> float:
        return rng.uniform(self.min_delay, self.max_delay)


class PerLinkSkewDelay(DelayModel):
    """Per-link base latency plus small per-message jitter.

    Models DMs at different network distances from each CE: the first draw
    from a link's RNG fixes that link's base latency in ``base_range``;
    every message then takes base + jitter.  With jitter small relative to
    the sending interval the link stays effectively FIFO, while different
    links (e.g. DM-x→CE1 vs DM-x→CE2) skew whole streams against each
    other — the mechanism behind the paper's multi-variable interleaving
    divergence (Theorem 10, Lemma 6).

    The base is cached per RNG instance; links each own a dedicated RNG
    stream, so one shared PerLinkSkewDelay instance still gives every link
    its own stable base.
    """

    def __init__(
        self,
        base_range: tuple[float, float] = (0.0, 25.0),
        jitter_range: tuple[float, float] = (0.05, 1.5),
    ) -> None:
        if base_range[0] < 0 or base_range[1] < base_range[0]:
            raise ValueError(f"invalid base_range {base_range}")
        if jitter_range[0] < 0 or jitter_range[1] < jitter_range[0]:
            raise ValueError(f"invalid jitter_range {jitter_range}")
        self.base_range = base_range
        self.jitter_range = jitter_range
        self._bases: dict[int, float] = {}

    def sample(self, rng: Random) -> float:
        base = self._bases.get(id(rng))
        if base is None:
            base = rng.uniform(*self.base_range)
            self._bases[id(rng)] = base
        return base + rng.uniform(*self.jitter_range)


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Constant delay — useful for deterministic trace replays."""

    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")

    def sample(self, rng: Random) -> float:
        return self.delay


class Link:
    """Base link: moves messages from a sender to a receiver callback."""

    def __init__(
        self,
        kernel: Kernel,
        receiver: Receiver,
        delay: DelayModel,
        rng: Random,
        name: str = "",
        spikes=None,
    ) -> None:
        self.kernel = kernel
        self.receiver = receiver
        self.delay = delay
        self.rng = rng
        self.name = name
        #: Optional DelaySpikeSchedule (see :mod:`repro.faults.model`):
        #: congestion windows multiplying sampled delays.  None — the
        #: default — keeps the delay path exactly as before.
        self.spikes = spikes
        self.sent = 0
        self.delivered = 0

    def send(self, message: Any) -> None:
        raise NotImplementedError

    def _sample_delay(self) -> float:
        """One propagation delay draw, spike-adjusted when spiking."""
        delay = self.delay.sample(self.rng)
        if self.spikes is not None:
            delay *= self.spikes.factor_at(self.kernel.now)
        return delay

    def _trace(self, kind: str, message: Any, **data: Any) -> None:
        """Emit a link-stage event (callers gate on ``kernel.tracer``)."""
        self.kernel.tracer.emit(
            self.kernel.now, "link", kind, self.name, msg=str(message), **data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} sent={self.sent} "
            f"delivered={self.delivered}>"
        )


class LossyFifoLink(Link):
    """Front link: lossy datagrams with receiver-side order enforcement."""

    def __init__(
        self,
        kernel: Kernel,
        receiver: Receiver,
        delay: DelayModel,
        rng: Random,
        loss_prob: float = 0.0,
        outage_schedule=None,
        name: str = "",
        loss_model=None,
        duplication=None,
        spikes=None,
    ) -> None:
        super().__init__(kernel, receiver, delay, rng, name, spikes=spikes)
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError(f"loss_prob must be in [0, 1], got {loss_prob}")
        self.loss_prob = loss_prob
        #: Optional CrashSchedule for the *link itself* — §1: "the computer
        #: network linking the DMs to the CE ... can also be out of
        #: service".  A datagram sent while the link is down is lost (no
        #: retransmission on front links).
        self.outage_schedule = outage_schedule
        #: Optional correlated-loss model (GilbertElliottLoss).  When set
        #: it replaces the Bernoulli ``loss_prob`` coin entirely.
        self.loss_model = loss_model
        #: Optional DuplicationAdversary: extra same-tag copies of a sent
        #: datagram, each with its own delay draw.  The receiver-side tag
        #: check deduplicates, so the CE still sees at-most-once delivery.
        self.duplication = duplication
        self.lost = 0
        self.lost_to_outage = 0
        self.reorder_drops = 0
        self.duplicates_sent = 0
        self.duplicates_dropped = 0
        self._send_tag = 0
        self._last_delivered_tag = -1

    def send(self, message: Any) -> None:
        self.sent += 1
        tag = self._send_tag
        self._send_tag += 1
        traced = self.kernel.tracer is not None
        if traced:
            self._trace("send", message, tag=tag)
        if self.outage_schedule is not None and not self.outage_schedule.is_up(
            self.kernel.now
        ):
            self.lost_to_outage += 1
            if traced:
                self._trace("drop", message, tag=tag, reason="outage")
            return
        if self.loss_model is not None:
            if self.loss_model.dropped(self.rng):
                self.lost += 1
                if traced:
                    self._trace("drop", message, tag=tag, reason="burst")
                return
        elif self.rng.random() < self.loss_prob:
            self.lost += 1
            if traced:
                self._trace("drop", message, tag=tag, reason="loss")
            return
        delay = self._sample_delay()
        self.kernel.schedule(
            delay, lambda: self._arrive(tag, message), note=f"{self.name} deliver"
        )
        if self.duplication is not None:
            for _ in range(self.duplication.draw_copies(self.rng)):
                self.duplicates_sent += 1
                if traced:
                    self._trace("duplicate", message, tag=tag)
                self.kernel.schedule(
                    self._sample_delay(),
                    lambda: self._arrive(tag, message),
                    note=f"{self.name} dup-deliver",
                )

    def _arrive(self, tag: int, message: Any) -> None:
        if tag <= self._last_delivered_tag:
            # A later-sent (or identical — a duplicated copy) message has
            # already been delivered: discard to preserve the in-order,
            # at-most-once guarantee (the paper's seqno-tagging mechanism).
            # Unique tags make equality impossible without duplication, so
            # duplication-free runs behave exactly as before.
            if tag == self._last_delivered_tag:
                self.duplicates_dropped += 1
                if self.kernel.tracer is not None:
                    self._trace("drop", message, tag=tag, reason="duplicate")
            else:
                self.reorder_drops += 1
                if self.kernel.tracer is not None:
                    self._trace("drop", message, tag=tag, reason="reorder")
            return
        self._last_delivered_tag = tag
        self.delivered += 1
        if self.kernel.tracer is not None:
            self._trace("deliver", message, tag=tag)
        self.receiver(message)


class StoreAndForwardLink(Link):
    """Back link with receiver-availability awareness (§1, §2.1).

    "If the PDA is off or disconnected, the CE logs the alert, and sends
    it later, when the AD becomes available."  This link models exactly
    that: delivery is lossless and in-order like :class:`ReliableLink`,
    but if the receiver is down at the delivery instant (per
    ``availability``, typically an AD CrashSchedule), the message is held
    and re-delivered at the receiver's next up-time, still in order.
    """

    def __init__(
        self,
        kernel: Kernel,
        receiver: Receiver,
        delay: DelayModel,
        rng: Random,
        availability,
        name: str = "",
        outage_schedule=None,
        spikes=None,
    ) -> None:
        super().__init__(kernel, receiver, delay, rng, name, spikes=spikes)
        self.availability = availability
        #: Optional CrashSchedule for the link itself.  Back links are
        #: TCP-like, so an outage stalls delivery (retransmission after
        #: the link recovers) instead of losing the message.
        self.outage_schedule = outage_schedule
        self.redelivered = 0
        self.stalled_by_outage = 0
        self._last_delivery_time = 0.0

    def send(self, message: Any) -> None:
        self.sent += 1
        traced = self.kernel.tracer is not None
        if traced:
            self._trace("send", message)
        raw = self.kernel.now + self._sample_delay()
        if self.outage_schedule is not None:
            up_at = self.outage_schedule.next_up_time(raw)
            if up_at > raw:
                self.stalled_by_outage += 1
                if traced:
                    self._trace("hold", message, until=up_at, reason="outage")
                raw = up_at
        delivery_time = max(raw, self._last_delivery_time)
        # If the receiver is down at the nominal delivery instant, the
        # message waits (logged at the CE) until the next up-time.
        available_at = self.availability.next_up_time(delivery_time)
        if available_at > delivery_time:
            self.redelivered += 1
            if traced:
                self._trace("hold", message, until=available_at)
            delivery_time = available_at
        self._last_delivery_time = delivery_time
        self.kernel.schedule_at(
            delivery_time, lambda: self._arrive(message), note=f"{self.name} deliver"
        )

    def _arrive(self, message: Any) -> None:
        self.delivered += 1
        if self.kernel.tracer is not None:
            self._trace("deliver", message)
        self.receiver(message)


class ReliableLink(Link):
    """Back link: lossless, in-order (TCP-like) delivery."""

    def __init__(
        self,
        kernel: Kernel,
        receiver: Receiver,
        delay: DelayModel,
        rng: Random,
        name: str = "",
        outage_schedule=None,
        spikes=None,
    ) -> None:
        super().__init__(kernel, receiver, delay, rng, name, spikes=spikes)
        #: Optional CrashSchedule for the link itself (TCP: outage stalls
        #: delivery until the link recovers, losing nothing).
        self.outage_schedule = outage_schedule
        self.stalled_by_outage = 0
        self._last_delivery_time = 0.0

    def send(self, message: Any) -> None:
        self.sent += 1
        traced = self.kernel.tracer is not None
        if traced:
            self._trace("send", message)
        raw = self.kernel.now + self._sample_delay()
        if self.outage_schedule is not None:
            up_at = self.outage_schedule.next_up_time(raw)
            if up_at > raw:
                self.stalled_by_outage += 1
                if traced:
                    self._trace("hold", message, until=up_at, reason="outage")
                raw = up_at
        # TCP semantics: a segment sent later is delivered later, so the
        # delivery time is clamped to be monotone per link.
        delivery_time = max(raw, self._last_delivery_time)
        self._last_delivery_time = delivery_time
        self.kernel.schedule_at(
            delivery_time, lambda: self._arrive(message), note=f"{self.name} deliver"
        )

    def _arrive(self, message: Any) -> None:
        self.delivered += 1
        if self.kernel.tracer is not None:
            self._trace("deliver", message)
        self.receiver(message)
