"""High-throughput trial engine.

The randomized experiments are thousands of independent simulated trials;
this package turns them into a planned, batched, reusable-pool workload:

* :mod:`repro.engine.spec` — picklable :class:`TrialSpec` descriptors
  (scenario named by matrix/row, resolved inside the executing process);
* :mod:`repro.engine.core` — :class:`TrialEngine`, the persistent
  executor (``processes="auto"``, bounded chunking, unordered completion
  with deterministic reassembly);
* :mod:`repro.engine.plan` — canonical trial-matrix layout per table, so
  every entry point derives identical seeds.
"""

from repro.engine.core import (
    DEFAULT_CHUNKS_PER_WORKER,
    MAX_CHUNKSIZE,
    TrialEngine,
    default_chunksize,
    resolve_processes,
)
from repro.engine.plan import TablePlan, plan_table, tabulate
from repro.engine.spec import SCENARIO_MATRICES, TrialSpec

__all__ = [
    "DEFAULT_CHUNKS_PER_WORKER",
    "MAX_CHUNKSIZE",
    "SCENARIO_MATRICES",
    "TablePlan",
    "TrialEngine",
    "TrialSpec",
    "default_chunksize",
    "plan_table",
    "resolve_processes",
    "tabulate",
]
