"""The persistent trial executor.

:class:`TrialEngine` owns a long-lived ``multiprocessing`` pool and maps
:class:`~repro.engine.spec.TrialSpec` batches over it.  Compared with the
one-shot ``Pool`` the old ``run_trials`` spun up per call:

* the pool (and each worker's imported scenario matrices, warmed by the
  spawn-safe initializer) is reused across batches — ``repro report``
  submits seven tables to the same workers;
* specs are index-tagged and submitted through ``imap_unordered``, so a
  straggler trial never blocks completed chunks from returning; results
  are reassembled into spec order before returning;
* chunk sizes are bounded (:func:`default_chunksize`): large batches no
  longer degenerate into a handful of huge chunks whose slowest member
  sets the wall-clock.

``processes="auto"`` sizes the pool to the machine.  ``processes=1``
executes inline — no pool, no pickling — and is bit-identical to the
sequential paths by construction.
"""

from __future__ import annotations

import logging
import os
from collections.abc import Iterable, Sequence
from multiprocessing import Pool

from repro.engine.spec import TrialSpec
from repro.props.report import PropertyReport

__all__ = [
    "TrialEngine",
    "resolve_processes",
    "default_chunksize",
    "DEFAULT_CHUNKS_PER_WORKER",
    "MAX_CHUNKSIZE",
]

logger = logging.getLogger(__name__)

#: Aim for this many chunks per worker so stragglers rebalance.
DEFAULT_CHUNKS_PER_WORKER = 4
#: Hard ceiling on chunk size: beyond this, amortization of per-chunk IPC
#: is negligible but tail imbalance keeps growing.
MAX_CHUNKSIZE = 32


def resolve_processes(processes: int | str) -> int:
    """Normalize a process-count knob: ``"auto"`` → CPU count, else int ≥ 1."""
    if processes == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(processes)
    if count < 1:
        raise ValueError(f"processes must be >= 1 or 'auto', got {processes!r}")
    return count


def default_chunksize(n_specs: int, processes: int) -> int:
    """Bounded chunk size for ``n_specs`` trials over ``processes`` workers.

    Large enough to amortize submission overhead, small enough that each
    worker sees several chunks (load balancing) and no chunk exceeds
    :data:`MAX_CHUNKSIZE`.  The old ``len(specs) // (4 * processes)``
    rule had no ceiling: 10 000 specs on 2 workers meant 1250-trial
    chunks — one slow chunk idled half the pool for minutes.
    """
    if n_specs <= 0 or processes <= 1:
        return 1
    target = -(-n_specs // (DEFAULT_CHUNKS_PER_WORKER * processes))
    return max(1, min(MAX_CHUNKSIZE, target))


def _worker_init() -> None:
    """Pool initializer: import and resolve the scenario matrices once.

    Under the ``spawn`` start method each worker begins with a blank
    interpreter; importing here moves the (non-trivial) module import cost
    out of the first task of every chunk.  Under ``fork`` it is a no-op
    re-import of already-cached modules.
    """
    import repro.engine.spec  # noqa: F401  (resolves SCENARIO_MATRICES)


def _execute_indexed(item: tuple[int, TrialSpec]) -> tuple[int, PropertyReport]:
    index, spec = item
    return index, spec.execute()


class TrialEngine:
    """Reusable trial executor with a lazily created, persistent pool.

    Usage::

        with TrialEngine(processes="auto") as engine:
            reports = engine.run(specs)        # pool created here
            more = engine.run(other_specs)     # same workers reused
    """

    def __init__(
        self, processes: int | str = "auto", chunksize: int | None = None
    ) -> None:
        self.processes = resolve_processes(processes)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self._pool: Pool | None = None

    def __enter__(self) -> "TrialEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self) -> Pool:
        if self._pool is None:
            logger.debug("starting trial pool with %d workers", self.processes)
            self._pool = Pool(processes=self.processes, initializer=_worker_init)
        return self._pool

    def run(
        self, specs: Iterable[TrialSpec], chunksize: int | None = None
    ) -> list[PropertyReport]:
        """Execute ``specs``, returning reports in spec order.

        Workers consume index-tagged specs via ``imap_unordered``;
        reassembly by index restores submission order, so the output is
        independent of worker scheduling.
        """
        specs = list(specs)
        if not specs:
            return []
        if self.processes == 1:
            return [spec.execute() for spec in specs]
        if len(specs) == 1:
            # A pool round-trip costs more than the trial; run inline but
            # say so — the old code silently ignored `processes` here.
            logger.debug(
                "running 1 spec inline despite processes=%d", self.processes
            )
            return [specs[0].execute()]
        if chunksize is None:
            chunksize = self.chunksize
        if chunksize is None:
            chunksize = default_chunksize(len(specs), self.processes)
        logger.debug(
            "dispatching %d trials over %d workers (chunksize=%d)",
            len(specs),
            self.processes,
            chunksize,
        )
        pool = self._ensure_pool()
        results: list[PropertyReport | None] = [None] * len(specs)
        for index, report in pool.imap_unordered(
            _execute_indexed, enumerate(specs), chunksize=chunksize
        ):
            results[index] = report
        return results

    def run_tally(
        self, specs: Sequence[TrialSpec], chunksize: int | None = None
    ):
        """Execute ``specs`` and fold the reports into one PropertyTally."""
        from repro.props.report import PropertyTally

        tally = PropertyTally()
        for spec, report in zip(specs, self.run(specs, chunksize=chunksize)):
            tally.add(report, seed=spec.seed)
        return tally
