"""Planning the trial matrix of a table experiment.

One place owns the spec layout — which (row, seed, n_updates) trials a
table comprises and in what order — so the sequential builder, the
parallel builder and the benchmark drivers cannot drift apart on seed
derivation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.spec import TrialSpec
from repro.props.report import PropertyReport, PropertyTally
from repro.workloads.scenarios import ROW_ORDER

if TYPE_CHECKING:  # imported lazily at runtime (analysis imports us back)
    from repro.analysis.tables import TableResult

__all__ = ["TablePlan", "plan_table", "tabulate"]

#: Seed offset separating the short-trace completeness batch from the
#: main batch (matches repro.analysis.tables.build_table).
COMPLETENESS_SEED_OFFSET = 7_000_000


@dataclass(frozen=True)
class TablePlan:
    """The full trial matrix for one table, in canonical order."""

    table_id: str
    algorithm: str
    multi_variable: bool
    trials: int
    specs: tuple[TrialSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)


def plan_table(
    table_id: str,
    trials: int = 100,
    n_updates: int = 30,
    base_seed: int = 20010800,
    completeness_trials: int | None = None,
    completeness_n_updates: int = 8,
    collect_counters: bool = False,
    faults=None,
    kernel: str = "array",
) -> TablePlan:
    """Lay out every trial of a table experiment as TrialSpecs.

    Seed derivation is identical to
    :func:`repro.analysis.tables.build_table`: stable per-cell offsets
    from ``zlib.crc32`` (process-independent, unlike ``hash()``), the
    completeness batch displaced by :data:`COMPLETENESS_SEED_OFFSET`.

    ``collect_counters`` runs every trial under a CountersTracer so the
    folded tallies carry aggregated per-stage observability counters
    (tracing never perturbs results — verdicts are unchanged).

    ``faults`` (a :class:`~repro.faults.plan.FaultProfile`) rides on
    every spec, so any table can be regenerated "under chaos" with the
    same seed derivation as its clean counterpart.
    """
    from repro.analysis.tables import TABLE_CONFIG

    algorithm, multi = TABLE_CONFIG[table_id]
    matrix = "multi" if multi else "single"
    if completeness_trials is None:
        completeness_trials = trials if multi else 0

    specs: list[TrialSpec] = []
    for row in ROW_ORDER:
        cell_offset = zlib.crc32(f"{table_id}/{row}".encode()) % 100_000
        for trial in range(trials):
            specs.append(
                TrialSpec(
                    matrix, row, algorithm, base_seed + cell_offset + trial,
                    n_updates, collect_counters=collect_counters,
                    faults=faults, kernel=kernel,
                )
            )
        for trial in range(completeness_trials):
            specs.append(
                TrialSpec(
                    matrix,
                    row,
                    algorithm,
                    base_seed + COMPLETENESS_SEED_OFFSET + cell_offset + trial,
                    completeness_n_updates,
                    collect_counters=collect_counters,
                    faults=faults,
                    kernel=kernel,
                )
            )
    return TablePlan(table_id, algorithm, multi, trials, tuple(specs))


def tabulate(plan: TablePlan, reports: list[PropertyReport]) -> "TableResult":
    """Fold spec-ordered reports back into a TableResult."""
    from repro.analysis.tables import TableResult

    if len(reports) != len(plan.specs):
        raise ValueError(
            f"{len(reports)} reports for {len(plan.specs)} planned trials"
        )
    result = TableResult(
        plan.table_id, plan.algorithm, plan.multi_variable, plan.trials
    )
    tallies = {row: PropertyTally() for row in ROW_ORDER}
    for spec, report in zip(plan.specs, reports):
        tallies[spec.row].add(report, seed=spec.seed)
    result.tallies.update(tallies)
    return result
