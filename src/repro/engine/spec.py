"""Picklable trial descriptors.

Scenarios hold lambdas (condition/workload factories), so they cannot
cross a process boundary.  A :class:`TrialSpec` instead names the
scenario by ``(matrix, row)`` and re-resolves it from the module matrices
inside whichever process executes the trial, carrying only plain values —
plus the two overrides the parameter sweeps need (``front_loss`` and
``replication``), so sweep points fan out through the same engine as the
table grids.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.props.report import PropertyReport
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    SINGLE_VARIABLE_SCENARIOS,
    Scenario,
    run_scenario,
)

if TYPE_CHECKING:
    from repro.faults.plan import FaultProfile
    from repro.membership.config import MembershipConfig
    from repro.sharding.ring import ShardConfig

__all__ = ["TrialSpec", "SCENARIO_MATRICES"]

#: The resolvable scenario matrices, by TrialSpec.matrix name.
SCENARIO_MATRICES = {
    "single": SINGLE_VARIABLE_SCENARIOS,
    "multi": MULTI_VARIABLE_SCENARIOS,
}


@dataclass(frozen=True)
class TrialSpec:
    """One randomized trial: scenario row × algorithm × seed × knobs."""

    matrix: str
    row: str
    algorithm: str
    seed: int
    n_updates: int
    replication: int = 2
    #: Sweep override: replaces the scenario's own front-link loss rate.
    front_loss: float | None = None
    #: Attach a CountersTracer to the run and carry its per-stage counters
    #: back on the report (``PropertyReport.counters``), so trial batches
    #: can aggregate observability counters across processes.
    collect_counters: bool = False
    #: Optional fault-injection profile (see :mod:`repro.faults`): the
    #: run materializes a concrete FaultPlan from its own seed.  A plain
    #: dict (e.g. reconstructed from a trace header) is converted to a
    #: FaultProfile, so specs survive the JSONL round trip.
    faults: "FaultProfile | None" = None
    #: Also compute ground-truth delivery stats and attach them to the
    #: report (``PropertyReport.delivery``) — what chaos sweeps aggregate.
    collect_delivery: bool = False
    #: Also compute event-keyed alert quality (precision/recall/latency
    #: against the single-replica ground truth) and attach it to the
    #: report (``PropertyReport.quality``) — what quality sweeps fold.
    collect_quality: bool = False
    #: Like ``collect_counters`` but with a ReasonCountersTracer, whose
    #: keys splice event ``reason`` payloads into the kind segment
    #: (``link/drop:burst/...``, ``ad/filter:<why>/...``) — the input of
    #: the fuzzer's behaviour-coverage signature (:mod:`repro.fuzz`).
    collect_coverage: bool = False
    #: Trial executor: "array" (struct-of-arrays fast path) or "object"
    #: (the event-object oracle).  Differentially tested to be
    #: result- and trace-identical, so this knob only affects speed —
    #: and old serialized specs without the field deserialize to "array".
    kernel: str = "array"
    #: Optional dynamic-membership config (see :mod:`repro.membership`):
    #: crashes become a detect → rejoin → catch-up lifecycle, and the
    #: report carries the run's churn digest (``PropertyReport.churn``).
    #: Dicts (from trace headers) are coerced like ``faults``.
    membership: "MembershipConfig | None" = None
    #: Optional shard-ring config (see :mod:`repro.sharding`): the run's
    #: condition is placed on the consistent-hash ring and the resulting
    #: assignment attached to the run.  Sharding is semantics-neutral
    #: (conformance-enforced), so this knob never changes verdicts or
    #: traces — it records *where* the run would execute at scale.
    #: Dicts (from trace/feed headers) are coerced like ``faults``.
    sharding: "ShardConfig | None" = None

    def __post_init__(self) -> None:
        if isinstance(self.faults, dict):
            from repro.faults.plan import FaultProfile

            object.__setattr__(self, "faults", FaultProfile(**self.faults))
        if isinstance(self.membership, dict):
            from repro.membership.config import MembershipConfig

            object.__setattr__(
                self, "membership", MembershipConfig(**self.membership)
            )
        if isinstance(self.sharding, dict):
            from repro.sharding.ring import ShardConfig

            object.__setattr__(
                self, "sharding", ShardConfig(**self.sharding)
            )

    def resolve_scenario(self) -> Scenario:
        scenario = SCENARIO_MATRICES[self.matrix][self.row]
        if self.front_loss is not None:
            scenario = replace(scenario, front_loss=self.front_loss)
        return scenario

    def execute(self) -> PropertyReport:
        """Run the trial and decide its properties (in any process)."""
        tracer = None
        if self.collect_coverage:
            from repro.observability.tracer import ReasonCountersTracer

            tracer = ReasonCountersTracer()
        elif self.collect_counters:
            from repro.observability.tracer import CountersTracer

            tracer = CountersTracer()
        run = run_scenario(
            self.resolve_scenario(),
            self.algorithm,
            self.seed,
            n_updates=self.n_updates,
            replication=self.replication,
            tracer=tracer,
            faults=self.faults,
            kernel=self.kernel,
            membership=self.membership,
            sharding=self.sharding,
        )
        report = run.evaluate_properties()
        if tracer is not None:
            report = replace(report, counters=tracer.as_dict())
        if run.membership is not None:
            from repro.membership.verdicts import churn_summary

            report = replace(report, churn=churn_summary(run))
        if self.collect_delivery:
            from repro.analysis.metrics import delivery_stats

            stats = delivery_stats(run)
            report = replace(
                report,
                delivery={
                    "expected": stats.expected,
                    "delivered": stats.delivered,
                    "extraneous": stats.extraneous,
                },
            )
        if self.collect_quality:
            from repro.quality.metrics import alert_quality

            report = replace(report, quality=alert_quality(run).as_dict())
        return report
