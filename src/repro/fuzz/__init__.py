"""Coverage-guided simulation fuzzing and full-simulator witness shrinking.

The table experiments witness the paper's ✗-cells by *sampling* seeds;
this package turns the observability and fault-injection machinery into
a correctness tool that *searches*:

* :mod:`repro.fuzz.coverage` — behaviour signatures of runs (which drop
  and AD-rejection reasons fired, per-stage count buckets, the property
  verdict vector);
* :mod:`repro.fuzz.mutate` — mutations over ``TrialSpec × FaultProfile``;
* :mod:`repro.fuzz.engine` — the corpus-keeping fuzz loop
  (:class:`FuzzEngine`), scheduling batches through the existing
  :class:`~repro.engine.core.TrialEngine` pool and deduplicating
  findings by violating signature;
* :mod:`repro.fuzz.shrink` — generalized delta debugging of a violating
  input at the full-simulator level, emitting a 1-minimal spec, a
  bit-replayable ``repro.trace/1`` recording and a paper-style
  :class:`~repro.analysis.witness.Counterexample`.

Driven by ``repro fuzz`` on the CLI and benchmarked against uniform
random sampling in ``benchmarks/bench_fuzz.py``.
"""

from repro.fuzz.coverage import coverage_signature, new_features, signature_key
from repro.fuzz.engine import (
    FUZZ_BASE_SEED,
    Finding,
    FuzzConfig,
    FuzzEngine,
    FuzzResult,
    uniform_specs,
)
from repro.fuzz.mutate import MutationLimits, mutate_spec
from repro.fuzz.shrink import ShrinkResult, shrink_spec

__all__ = [
    "FUZZ_BASE_SEED",
    "Finding",
    "FuzzConfig",
    "FuzzEngine",
    "FuzzResult",
    "MutationLimits",
    "ShrinkResult",
    "coverage_signature",
    "mutate_spec",
    "new_features",
    "shrink_spec",
    "signature_key",
    "uniform_specs",
]
