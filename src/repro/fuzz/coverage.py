"""Behaviour-coverage signatures of simulator runs.

Two runs are "the same" to the fuzzer when they exercise the same
behaviour, not when their seeds match.  The signature of a run is a
frozenset of string features derived from the run's reason-annotated
observability counters (:class:`~repro.observability.tracer.ReasonCountersTracer`,
attached via ``TrialSpec.collect_coverage``) and its property verdicts:

* ``hit:<stage>/<kind>`` — the instrumentation point fired at all.  The
  kind segment carries the event's reason where one exists, so
  ``hit:link/drop:burst`` and ``hit:link/drop:loss`` are distinct
  behaviours, as are the per-algorithm AD rejection reasons
  (``hit:ad/filter:<why>``).
* ``n:<stage>:<bucket>`` — the power-of-two bucket of the stage's
  event count summed over kinds and nodes (``bucket =
  count.bit_length()``), so "a few deviations" and "a storm of them"
  differ without every raw count minting a new signature.  Buckets are
  deliberately per *stage*, not per kind: per-kind counts are so
  high-entropy that their joint vector is distinct for nearly every
  seed, which would collapse "distinct signatures" into "distinct runs".
* ``verdict:<property>:<True|False|None>`` — the decided property
  vector, ``None`` meaning the checker skipped or exhausted its budget.

Only *behavioural* instrumentation points participate.  Bulk-traffic
kinds (``link/send``, ``link/deliver``, ``ce/update-received``, the whole
``kernel`` stage) track the reading count and the loss coin flips almost
bijectively — folding them in would mint a fresh signature for nearly
every seed, collapsing "distinct signatures" into "distinct runs" and
erasing the guidance signal.  What counts as behaviour: anything that
*deviates* (drops, holds, duplicates, crashes, suppressions, AD
rejections), the alert surface (raised/arrived/displayed), and the
materialized fault surface (``fault`` stage).

Signatures are value objects: hashable, picklable, order-free.  The
corpus keeps an input when its signature contains any feature never seen
before; violation dedup keys on whole signatures.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = [
    "coverage_signature",
    "covered_kind",
    "signature_key",
    "new_features",
]

#: The report.summary keys folded into the verdict feature vector.
_PROPERTIES = ("ordered", "complete", "consistent")

#: ``ce``-stage kinds that are behavioural (prefix match, so
#: reason-annotated forms like ``missed:crashed`` stay covered).
_CE_KINDS = ("missed", "alert-raised")
#: ``link``-stage kinds that are behavioural.
_LINK_KINDS = ("drop", "hold", "duplicate")


def covered_kind(stage: str, kind: str) -> bool:
    """Whether ``stage/kind`` participates in coverage signatures."""
    if stage in ("fault", "dm", "ad"):
        return True
    if stage == "link":
        return kind.startswith(_LINK_KINDS)
    if stage == "ce":
        return kind.startswith(_CE_KINDS)
    return False


def coverage_signature(
    counters: Mapping[str, int] | None,
    summary: Mapping[str, bool | None],
) -> frozenset[str]:
    """The behaviour signature of one run.

    ``counters`` are ``"stage/kind[:reason]/node"`` counts (absent or
    empty when the run was not traced — the signature then reduces to
    the verdict vector); ``summary`` is ``PropertyReport.summary``.
    """
    features: set[str] = set()
    for prop in _PROPERTIES:
        features.add(f"verdict:{prop}:{summary.get(prop)}")
    if counters:
        per_stage: dict[str, int] = {}
        for key, count in counters.items():
            stage, kind, _node = key.split("/", 2)
            if not covered_kind(stage, kind):
                continue
            features.add(f"hit:{stage}/{kind}")
            per_stage[stage] = per_stage.get(stage, 0) + count
        for stage, total in per_stage.items():
            features.add(f"n:{stage}:{total.bit_length()}")
    return frozenset(features)


def signature_key(signature: Iterable[str]) -> tuple[str, ...]:
    """A canonical (sorted) tuple form — stable across processes/runs."""
    return tuple(sorted(signature))


def new_features(
    signature: frozenset[str], seen: set[str]
) -> frozenset[str]:
    """The features of ``signature`` not yet in the global ``seen`` set."""
    return signature - seen
