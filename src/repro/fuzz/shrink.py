"""Full-simulator witness shrinking (generalized delta debugging).

:func:`repro.analysis.witness.shrink_counterexample` minimizes a
violation in a *replay model* — CE-received traces and a merge order.
This module instead delta-debugs the violating **input** at the full
simulator level: each candidate reduction re-runs the complete pipeline
(workload → DMs → lossy links → CEs → back links → AD → property
checkers) and is kept only if the *same* target property is still
violated.  The reduction catalog:

* drop a reading (``n_updates`` − 1, down to a floor),
* drop a CE replica (``replication`` − 1, down to 1),
* zero the front-link loss override, or halve it,
* zero a fault-profile field to its inert value
  (:func:`~repro.faults.plan.profile_field_identity` — crash rates and
  loss probabilities to 0, the delay-spike factor to 1, ...), or halve
  its distance from that value,
* drop the membership config entirely (back to static membership), or
  snap one membership knob to its default
  (:func:`~repro.membership.config.membership_field_default`),
* drop the shard ring entirely (back to one shard — sharding is
  semantics-neutral, so a surviving violation indicts the core), walk
  the shard count down, or snap a ring-shape knob to its default,

with a binary-descent accelerator on ``n_updates`` before the greedy
passes.  The result is **1-minimal over the catalog**: no single
remaining step preserves the violation.  Shrinking is a pure function of
``(spec, target)`` — no RNG is consumed — so it is idempotent, and
shrinking a spec reconstructed from its recorded trace yields the
bit-identical result (pinned by the Hypothesis suite).

The shrunk spec is finalized into a replayable witness: a
``repro.trace/1`` recording (:func:`~repro.observability.replay.record_trial`)
plus a paper-style :class:`~repro.analysis.witness.Counterexample`
extracted from the shrunk run.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.analysis.witness import Counterexample, counterexample_from_run, violates
from repro.engine.spec import TrialSpec
from repro.faults.plan import (
    PROFILE_FIELD_KINDS,
    FaultProfile,
    profile_field_identity,
)
from repro.membership.config import (
    MEMBERSHIP_FIELD_KINDS,
    membership_field_default,
)
from repro.sharding.ring import shard_field_default
from repro.observability.replay import RecordedTrace, record_trial
from repro.workloads.scenarios import run_scenario

__all__ = ["ShrinkResult", "shrink_spec"]

#: Below this distance from a field's inert value, snap to it (floats
#: halve forever; the simulator cannot tell 1e-7 from 0 anyway).
_EPSILON = 1e-6


@dataclass(frozen=True)
class ShrinkResult:
    """A 1-minimal, bit-replayable witness of one property violation."""

    #: The minimized input (collection flags stripped).
    spec: TrialSpec
    target: str
    #: Paper-style counterexample extracted from the shrunk run.
    counterexample: Counterexample
    #: Replayable ``repro.trace/1`` recording of the shrunk run.
    trace: RecordedTrace
    #: Simulator runs the shrink spent (cache misses only).
    attempts: int
    #: Greedy passes until the 1-minimal fixpoint.
    passes: int

    def describe(self) -> str:
        spec = self.spec
        lines = [
            f"shrunk witness: {spec.matrix}/{spec.row} {spec.algorithm} "
            f"seed={spec.seed} n_updates={spec.n_updates} "
            f"replication={spec.replication}"
            + ("" if spec.front_loss is None else f" front_loss={spec.front_loss:g}")
            + ("" if spec.faults is None else " (faults attached)")
            + ("" if spec.membership is None else " (membership attached)")
            + (
                ""
                if spec.sharding is None
                else f" (sharded x{spec.sharding.shards})"
            ),
            f"({self.attempts} shrink runs, {self.passes} passes)",
            self.counterexample.describe(),
        ]
        return "\n".join(lines)


def _normalize(spec: TrialSpec) -> TrialSpec:
    return replace(
        spec,
        collect_counters=False,
        collect_coverage=False,
        collect_delivery=False,
    )


def _snap_profile(profile: FaultProfile | None) -> FaultProfile | None:
    if profile is not None and profile.is_clean:
        return None
    return profile


def _profile_steps(spec: TrialSpec) -> Iterator[TrialSpec]:
    """Zero-then-halve candidates for every active fault-profile field."""
    profile = spec.faults
    if profile is None:
        return
    for name in PROFILE_FIELD_KINDS:
        value = getattr(profile, name)
        identity = profile_field_identity(name)
        if abs(value - identity) < _EPSILON:
            continue
        yield replace(
            spec, faults=_snap_profile(profile.with_value(name, identity))
        )
        if PROFILE_FIELD_KINDS[name] == "count":
            halved = value - 1
        else:
            halved = identity + (value - identity) / 2
            if abs(halved - identity) < _EPSILON:
                continue  # the zero candidate above already covers it
        yield replace(
            spec, faults=_snap_profile(profile.with_value(name, halved))
        )


def _membership_steps(spec: TrialSpec) -> Iterator[TrialSpec]:
    """Drop the recovery lifecycle, or snap one knob back to default.

    Dropping first asks the cheapest question — "does the violation need
    membership at all?" — and the per-field snaps then normalize any
    surviving config toward :class:`MembershipConfig()` so witnesses
    from different fuzz paths converge on the same canonical knobs.
    """
    config = spec.membership
    if config is None:
        return
    yield replace(spec, membership=None)
    for name in MEMBERSHIP_FIELD_KINDS:
        default = membership_field_default(name)
        if getattr(config, name) == default:
            continue
        yield replace(spec, membership=config.with_value(name, default))


def _sharding_steps(spec: TrialSpec) -> Iterator[TrialSpec]:
    """Drop sharding, or snap the surviving ring toward one shard.

    The drop-to-one-shard step mirrors the membership drop: sharding is
    semantics-neutral by contract, so a violation that survives the
    drop indicts the core semantics, while one that *needs* the ring is
    a sharding bug worth a minimal ring.  After the drop fails, the
    snaps walk ``shards`` down to the smallest still-violating count
    and normalize the ring-shape knobs to their defaults.
    """
    config = spec.sharding
    if config is None:
        return
    yield replace(spec, sharding=None)
    if config.shards > 2:
        yield replace(spec, sharding=config.resized(config.shards - 1))
    for name in ("virtual_nodes", "ring_seed"):
        default = shard_field_default(name)
        if getattr(config, name) == default:
            continue
        yield replace(spec, sharding=config.with_value(name, default))


def _candidates(spec: TrialSpec, min_updates: int) -> Iterator[TrialSpec]:
    """Single-step reductions of ``spec``, in deterministic order."""
    if spec.n_updates > min_updates:
        yield replace(spec, n_updates=spec.n_updates - 1)
    if spec.replication > 1:
        yield replace(spec, replication=spec.replication - 1)
    if spec.front_loss is None:
        # Make the implicit scenario loss explicit and zero — the
        # "remove all link nondeterminism" step.
        yield replace(spec, front_loss=0.0)
    elif spec.front_loss > _EPSILON:
        yield replace(spec, front_loss=0.0)
        halved = spec.front_loss / 2
        if halved > _EPSILON:
            yield replace(spec, front_loss=halved)
    yield from _sharding_steps(spec)
    yield from _profile_steps(spec)
    yield from _membership_steps(spec)


def shrink_spec(
    spec: TrialSpec,
    target: str,
    min_updates: int = 2,
    max_passes: int = 40,
) -> ShrinkResult:
    """Delta-debug a violating trial spec down to a 1-minimal witness.

    ``spec`` must violate ``target`` under full simulation (raises
    ``ValueError`` otherwise — shrinking a non-violation would "succeed"
    vacuously and hide fuzzer false positives).
    """
    spec = _normalize(spec)
    cache: dict[TrialSpec, bool] = {}
    attempts = 0

    def still_violates(candidate: TrialSpec) -> bool:
        nonlocal attempts
        cached = cache.get(candidate)
        if cached is not None:
            return cached
        attempts += 1
        verdict = violates(candidate.execute(), target)
        cache[candidate] = verdict
        return verdict

    if not still_violates(spec):
        raise ValueError(
            f"spec does not violate {target!r}; nothing to shrink"
        )

    # Accelerator: binary descent on the reading count before the greedy
    # 1-minimal passes — one run per halving instead of one per reading.
    while spec.n_updates > min_updates:
        candidate = replace(
            spec, n_updates=max(min_updates, spec.n_updates // 2)
        )
        if candidate.n_updates == spec.n_updates or not still_violates(candidate):
            break
        spec = candidate

    passes = 0
    improved = True
    while improved and passes < max_passes:
        improved = False
        passes += 1
        restart = True
        while restart:
            restart = False
            for candidate in _candidates(spec, min_updates):
                if still_violates(candidate):
                    spec = candidate
                    improved = True
                    restart = True
                    break

    run = run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        faults=spec.faults,
        membership=spec.membership,
        sharding=spec.sharding,
    )
    counterexample = counterexample_from_run(run, target=target)
    assert counterexample is not None  # still_violates(spec) held above
    return ShrinkResult(
        spec=spec,
        target=target,
        counterexample=counterexample,
        trace=record_trial(spec),
        attempts=attempts,
        passes=passes,
    )
