"""The coverage-guided mutational fuzz loop.

:class:`FuzzEngine` keeps a corpus of :class:`~repro.engine.spec.TrialSpec`
inputs for one scenario cell, mutates them through the catalog in
:mod:`repro.fuzz.mutate`, executes batches through the existing
:class:`~repro.engine.core.TrialEngine` worker pool (or inline), and

* **retains** an input in the corpus when its behaviour signature
  (:func:`~repro.fuzz.coverage.coverage_signature`) contains any feature
  the campaign has never seen — new drop reason, new AD rejection
  reason, new count bucket, new verdict vector;
* **reports** an input as a finding when it violates the target
  property, deduplicating findings by whole signature, so "how many
  distinct violating signatures" is the campaign's figure of merit
  (what ``benchmarks/bench_fuzz.py`` compares against uniform random
  sampling).

Everything is deterministic in ``FuzzConfig.fuzz_seed``: mutation draws
come from one dedicated ``random.Random``, batches preserve submission
order through the engine, and duplicate specs are skipped before
execution — so a campaign's findings replay exactly, and each finding's
spec can be handed to :func:`repro.fuzz.shrink.shrink_spec` and
:func:`repro.observability.replay.record_trial` for a bit-replayable
minimized witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random

from repro.analysis.witness import find_violation, violates
from repro.engine.spec import TrialSpec
from repro.faults.plan import DEFAULT_CHAOS_PROFILE
from repro.fuzz.coverage import coverage_signature, signature_key
from repro.fuzz.mutate import MutationLimits, mutate_spec
from repro.props.report import PropertyReport

__all__ = ["FuzzConfig", "Finding", "FuzzResult", "FuzzEngine", "uniform_specs"]

#: Default base seed for initial corpus entries and uniform baselines
#: (distinct from the table grids' and chaos sweeps').
FUZZ_BASE_SEED = 20010901

_TARGETS = ("ordered", "complete", "consistent")


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign: a scenario cell, a target, and a budget."""

    matrix: str = "single"
    row: str = "aggressive"
    algorithm: str = "AD-2"
    #: Property to hunt ("ordered" | "complete" | "consistent"), or None
    #: to count any violation as a finding.
    target: str | None = "consistent"
    #: Total simulator runs the campaign may spend (initial corpus
    #: included).
    budget: int = 1000
    #: Seed of the fuzzer's own RNG stream (mutation/selection draws).
    fuzz_seed: int = 0
    #: Specs submitted to the trial engine per round.
    batch_size: int = 32
    #: Reading count of the initial corpus entries.
    n_updates: int = 20
    replication: int = 2
    #: How many clean-seed entries the initial corpus starts from.
    initial_inputs: int = 8
    limits: MutationLimits = field(default_factory=MutationLimits)
    #: Trial executor every campaign spec runs under ("array" | "object").
    kernel: str = "array"

    def __post_init__(self) -> None:
        if self.target is not None and self.target not in _TARGETS:
            raise ValueError(
                f"unknown target {self.target!r}; expected one of {_TARGETS}"
            )
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def initial_specs(self) -> list[TrialSpec]:
        """The seed corpus: a few clean runs plus one chaos-profile run.

        Seeds are spread deterministically from the fuzz seed; the chaos
        entry makes every fault-surface feature *reachable* by mutation
        from round one instead of waiting for a lucky transplant.
        """
        rng = Random(f"fuzz/initial/{self.fuzz_seed}")
        specs = [
            TrialSpec(
                self.matrix,
                self.row,
                self.algorithm,
                rng.randrange(1 << 31),
                self.n_updates,
                replication=self.replication,
                collect_coverage=True,
                kernel=self.kernel,
            )
            for _ in range(max(1, self.initial_inputs))
        ]
        specs.append(
            replace(
                specs[0],
                seed=rng.randrange(1 << 31),
                faults=DEFAULT_CHAOS_PROFILE.scaled(0.5),
            )
        )
        return specs[: self.budget]


@dataclass(frozen=True)
class Finding:
    """One distinct violating behaviour the campaign discovered."""

    spec: TrialSpec
    signature: frozenset[str]
    summary: dict[str, bool | None]
    #: Which property the finding violates (the target, or the most
    #: severe violated one on target-free campaigns).
    violation: str

    @property
    def witness_spec(self) -> TrialSpec:
        """The spec stripped of collection flags — the canonical witness
        input to shrink, record and replay."""
        return replace(
            self.spec,
            collect_counters=False,
            collect_coverage=False,
            collect_delivery=False,
        )


@dataclass
class FuzzResult:
    """Aggregate outcome of one campaign."""

    config: FuzzConfig
    executed: int = 0
    skipped_duplicates: int = 0
    corpus_size: int = 0
    features: int = 0
    #: Count of distinct whole-run signatures observed.
    distinct_signatures: int = 0
    #: Distinct *violating* signatures, in discovery order.
    findings: list[Finding] = field(default_factory=list)

    @property
    def distinct_violating_signatures(self) -> int:
        return len(self.findings)


def _violation_of(report: PropertyReport, target: str | None) -> str | None:
    if target is not None:
        return target if violates(report, target) else None
    return find_violation(report)


class FuzzEngine:
    """Runs one campaign; optionally fans batches out over a TrialEngine."""

    def __init__(self, config: FuzzConfig, engine=None) -> None:
        self.config = config
        self.engine = engine

    def _execute(self, specs: list[TrialSpec]) -> list[PropertyReport]:
        if self.engine is not None:
            return self.engine.run(specs)
        return [spec.execute() for spec in specs]

    def run(self) -> FuzzResult:
        config = self.config
        rng = Random(f"fuzz/mutate/{config.fuzz_seed}")
        result = FuzzResult(config=config)
        corpus: list[TrialSpec] = []
        seen_features: set[str] = set()
        seen_signatures: set[tuple[str, ...]] = set()
        violating: set[tuple[str, ...]] = set()
        tried: set[TrialSpec] = set()

        def ingest(spec: TrialSpec, report: PropertyReport) -> None:
            signature = coverage_signature(report.counters, report.summary)
            key = signature_key(signature)
            seen_signatures.add(key)
            if signature - seen_features:
                seen_features.update(signature)
                corpus.append(spec)
            violation = _violation_of(report, config.target)
            if violation is not None and key not in violating:
                violating.add(key)
                result.findings.append(
                    Finding(
                        spec=spec,
                        signature=signature,
                        summary=dict(report.summary),
                        violation=violation,
                    )
                )

        batch = config.initial_specs()
        tried.update(batch)
        while batch:
            for spec, report in zip(batch, self._execute(batch)):
                ingest(spec, report)
            result.executed += len(batch)
            remaining = config.budget - result.executed
            if remaining <= 0:
                break
            batch = []
            misses = 0
            while len(batch) < min(config.batch_size, remaining):
                parent = self._pick_parent(corpus, rng)
                child = mutate_spec(parent, rng, config.limits)
                if misses >= 32:
                    # The neighbourhood is exhausted; force a fresh seed,
                    # which collides with vanishing probability.
                    child = replace(child, seed=rng.randrange(1 << 31))
                if child in tried:
                    misses += 1
                    result.skipped_duplicates += 1
                    continue
                misses = 0
                tried.add(child)
                batch.append(child)

        result.corpus_size = len(corpus)
        result.features = len(seen_features)
        result.distinct_signatures = len(seen_signatures)
        return result

    @staticmethod
    def _pick_parent(corpus: list[TrialSpec], rng: Random) -> TrialSpec:
        """Corpus entry to mutate, biased toward recent additions.

        Recent entries embody the newest behaviour; squaring the uniform
        draw skews selection toward the tail without starving the head.
        """
        index = len(corpus) - 1 - int(rng.random() ** 2 * len(corpus))
        return corpus[min(max(index, 0), len(corpus) - 1)]


def uniform_specs(config: FuzzConfig, base_seed: int = FUZZ_BASE_SEED) -> list[TrialSpec]:
    """The uniform-sampling baseline at the same budget: sequential seeds
    on the campaign's scenario cell with the default knobs and no faults —
    exactly how the table grids sample, made coverage-observable."""
    return [
        TrialSpec(
            config.matrix,
            config.row,
            config.algorithm,
            base_seed + trial,
            config.n_updates,
            replication=config.replication,
            collect_coverage=True,
            kernel=config.kernel,
        )
        for trial in range(config.budget)
    ]
