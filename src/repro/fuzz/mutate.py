"""Mutations over the fuzzer's input space: ``TrialSpec × FaultProfile``.

A corpus entry is a plain :class:`~repro.engine.spec.TrialSpec` (which
already carries the scenario cell, seed, reading count, replication, the
sweepable front-loss override and an optional
:class:`~repro.faults.plan.FaultProfile>`).  Mutations draw from a
dedicated fuzz RNG — never from the simulation's own streams — and only
produce values the simulator accepts, using the profile-field metadata
(:data:`~repro.faults.plan.PROFILE_FIELD_KINDS`) instead of hard-coded
field lists so new fault knobs become mutable automatically.

The catalog deliberately mixes small nudges (seed ±k, a few readings
more or less) with template jumps (a chaos-profile transplant, a fresh
random seed): nudges exploit a behaviour the corpus already reached,
jumps escape plateaus.
"""

from __future__ import annotations

from dataclasses import replace
from random import Random

from repro.engine.spec import SCENARIO_MATRICES, TrialSpec
from repro.faults.plan import (
    DEFAULT_CHAOS_PROFILE,
    DEFAULT_CHURN_PROFILE,
    PROFILE_FIELD_KINDS,
    FaultProfile,
)
from repro.membership.config import (
    MEMBERSHIP_FIELD_KINDS,
    MembershipConfig,
)
from repro.sharding.ring import ShardConfig

__all__ = ["MutationLimits", "mutate_spec"]

#: Value templates per profile-field kind — chosen to straddle the
#: regimes that matter over a run horizon of a few hundred time units
#: (readings arrive every 10 units).
_KIND_TEMPLATES: dict[str, tuple[float, ...]] = {
    "rate": (0.0, 0.002, 0.004, 0.008, 0.016, 0.03),
    "mean": (0.0, 10.0, 25.0, 40.0, 80.0),
    "prob": (0.0, 0.05, 0.15, 0.4, 0.8),
    "factor": (1.0, 2.0, 4.0, 6.0, 10.0),
    "count": (1, 2, 3),
}

#: Front-link loss overrides worth visiting (None = the scenario's own).
_LOSS_TEMPLATES = (None, 0.0, 0.1, 0.3, 0.5, 0.7)

#: Chaos intensities for whole-profile transplants.
_CHAOS_INTENSITIES = (0.25, 0.5, 1.0, 2.0)

#: Value templates per membership-field kind (see
#: :data:`~repro.membership.config.MEMBERSHIP_FIELD_KINDS`).  Means cover
#: detection timeouts and catch-up/backoff latencies from instant to
#: longer than a crash repair; intervals straddle the reading cadence.
_MEMBERSHIP_TEMPLATES: dict[str, tuple] = {
    "interval": (1.0, 2.5, 5.0, 10.0, 20.0),
    "mean": (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    "count": (1, 2, 3),
    "choice": ("peer-then-log", "peer", "log", "none"),
}

#: Shard counts worth visiting (sharding is semantics-neutral by
#: contract — the fuzzer hunts for specs where that contract breaks).
_SHARD_TEMPLATES = (1, 2, 3, 4, 8)

#: Ring-shape knobs: virtual-node counts straddle badly- and
#: well-balanced rings; seeds re-dice every ownership boundary.
_VNODE_TEMPLATES = (1, 4, 16, 64, 128)
_RING_SEED_TEMPLATES = (0, 1, 2, 7, 97)


class MutationLimits:
    """Bounds the mutator keeps spec scalars inside."""

    def __init__(
        self,
        min_updates: int = 4,
        max_updates: int = 40,
        max_replication: int = 3,
    ) -> None:
        if min_updates < 1 or max_updates < min_updates:
            raise ValueError(
                f"bad update bounds [{min_updates}, {max_updates}]"
            )
        self.min_updates = min_updates
        self.max_updates = max_updates
        self.max_replication = max(1, max_replication)


def _mutate_seed(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    return replace(spec, seed=rng.randrange(1 << 31))


def _nudge_seed(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    delta = rng.choice((-16, -4, -2, -1, 1, 2, 4, 16))
    return replace(spec, seed=abs(spec.seed + delta))


def _mutate_updates(spec: TrialSpec, rng: Random, limits: MutationLimits) -> TrialSpec:
    delta = rng.choice((-6, -3, -1, 1, 3, 6))
    n = min(max(spec.n_updates + delta, limits.min_updates), limits.max_updates)
    return replace(spec, n_updates=n)


def _mutate_replication(spec: TrialSpec, rng: Random, limits: MutationLimits) -> TrialSpec:
    return replace(spec, replication=rng.randint(1, limits.max_replication))


def _mutate_loss(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    return replace(spec, front_loss=rng.choice(_LOSS_TEMPLATES))


def _mutate_fault_field(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    name = rng.choice(sorted(PROFILE_FIELD_KINDS))
    profile = spec.faults if spec.faults is not None else FaultProfile()
    templates = _KIND_TEMPLATES[PROFILE_FIELD_KINDS[name]]
    profile = profile.with_value(name, rng.choice(templates))
    return replace(spec, faults=None if profile.is_clean else profile)


def _transplant_chaos(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    profile = DEFAULT_CHAOS_PROFILE.scaled(rng.choice(_CHAOS_INTENSITIES))
    return replace(spec, faults=profile)


def _drop_faults(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    return replace(spec, faults=None)


def _mutate_membership_field(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Turn one membership knob (detection timeout, heartbeat cadence,
    suspicion threshold, catch-up latency/backoff/source)."""
    name = rng.choice(sorted(MEMBERSHIP_FIELD_KINDS))
    config = spec.membership if spec.membership is not None else MembershipConfig()
    templates = _MEMBERSHIP_TEMPLATES[MEMBERSHIP_FIELD_KINDS[name]]
    return replace(spec, membership=config.with_value(name, rng.choice(templates)))


def _toggle_membership(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Flip the recovery lifecycle on or off for the same fault surface."""
    if spec.membership is not None:
        return replace(spec, membership=None)
    return replace(spec, membership=MembershipConfig())


def _transplant_churn(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Jump to a join/leave/recover regime: CE-crash-heavy faults plus a
    fresh default membership config, so detection and catch-up actually
    have crashes to heal."""
    profile = DEFAULT_CHURN_PROFILE.scaled(rng.choice(_CHAOS_INTENSITIES))
    return replace(spec, faults=profile, membership=MembershipConfig())


def _mutate_row(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Jump to another scenario row of the same matrix — including the
    diversity rows (bursty / zipfian / correlated traffic shapes), which
    live outside the tables' ROW_ORDER but are fully simulable.  Staying
    within the matrix preserves the variable count, so single-variable
    algorithms (AD-2/3/4) remain constructible."""
    rows = sorted(SCENARIO_MATRICES[spec.matrix])
    others = [row for row in rows if row != spec.row]
    if not others:
        return spec
    return replace(spec, row=rng.choice(others))


def _mutate_shards(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Move the run to a different shard count (1 = drop sharding)."""
    current = spec.sharding.shards if spec.sharding is not None else 1
    count = rng.choice([n for n in _SHARD_TEMPLATES if n != current])
    if count == 1:
        return replace(spec, sharding=None)
    base = spec.sharding if spec.sharding is not None else ShardConfig()
    return replace(spec, sharding=base.resized(count))


def _mutate_ring(spec: TrialSpec, rng: Random, limits) -> TrialSpec:
    """Re-dice the ring under the same shard count: turn the
    virtual-node or ring-seed knob, so ownership boundaries move while
    the fleet size stays put (a pure ring-resize/re-dice probe)."""
    base = spec.sharding if spec.sharding is not None else ShardConfig(shards=2)
    if rng.random() < 0.5:
        base = base.with_value("virtual_nodes", rng.choice(_VNODE_TEMPLATES))
    else:
        base = base.with_value("ring_seed", rng.choice(_RING_SEED_TEMPLATES))
    return replace(spec, sharding=base)


#: (mutation, weight) — seed moves dominate (they are the cheapest way
#: to re-roll timing), fault-surface edits follow, structural knobs are
#: rarer.
_CATALOG = (
    (_mutate_seed, 4),
    (_nudge_seed, 4),
    (_mutate_fault_field, 4),
    (_mutate_updates, 3),
    (_mutate_membership_field, 3),
    (_mutate_loss, 2),
    (_mutate_row, 2),
    (_transplant_chaos, 1),
    (_transplant_churn, 1),
    (_mutate_replication, 1),
    (_drop_faults, 1),
    (_toggle_membership, 1),
    (_mutate_shards, 1),
    (_mutate_ring, 1),
)
_MUTATIONS = tuple(m for m, w in _CATALOG for _ in range(w))


def mutate_spec(
    spec: TrialSpec, rng: Random, limits: MutationLimits | None = None
) -> TrialSpec:
    """One mutated child of ``spec`` (1–2 catalog mutations stacked)."""
    limits = limits or MutationLimits()
    child = spec
    for _ in range(rng.randint(1, 2)):
        child = rng.choice(_MUTATIONS)(child, rng, limits)
    return child
