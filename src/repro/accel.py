"""Optional-acceleration shims: numpy when present, ``array`` fallback.

The library's hot numeric paths (latency aggregation, property-checker
inner loops, the benchmark summaries) want vectorised primitives, but
numpy is an *optional* extra (``pip install repro[fast]``) — seed
environments without it must produce identical results through the
pure-python fallbacks below.  Every helper here therefore has two
implementations with one contract:

* the numpy path operates on ``numpy.ndarray``;
* the fallback operates on :class:`array.array` ('d') / plain lists and
  reproduces numpy's semantics exactly — in particular
  :func:`percentile` matches numpy's default *linear interpolation*
  (``q/100 * (n-1)`` fractional rank).

Code that needs numpy unconditionally (nothing in ``src/`` today) should
import :data:`np` and raise a helpful error when it is None rather than
importing numpy at module scope, so ``import repro`` never requires it.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence

try:  # pragma: no cover - exercised via HAVE_NUMPY in both CI legs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

__all__ = [
    "np",
    "HAVE_NUMPY",
    "as_float_array",
    "mean",
    "median",
    "percentile",
    "first_inversion",
]


def as_float_array(values: Iterable[float]):
    """Float container for bulk arithmetic: ndarray or ``array('d')``."""
    if HAVE_NUMPY:
        return np.asarray(list(values), dtype=float)
    return array("d", values)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.  ``values`` must be non-empty."""
    if not len(values):
        raise ValueError("mean of empty sequence")
    if HAVE_NUMPY:
        return float(np.asarray(values, dtype=float).mean())
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with numpy's default linear interpolation.

    Matches ``numpy.percentile(values, q)`` bit-for-bit on the fallback
    path: rank ``r = q/100 * (n-1)``, result
    ``v[floor(r)] + (r - floor(r)) * (v[ceil(r)] - v[floor(r)])`` over
    the sorted values.
    """
    n = len(values)
    if not n:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if HAVE_NUMPY:
        return float(np.percentile(np.asarray(values, dtype=float), q))
    ordered = sorted(float(v) for v in values)
    rank = q / 100.0 * (n - 1)
    lower = int(rank)
    upper = min(lower + 1, n - 1)
    fraction = rank - lower
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


def median(values: Sequence[float]) -> float:
    """The median (the 50th percentile; matches ``numpy.median``)."""
    return percentile(values, 50.0)


def first_inversion(seq: Sequence) -> int | None:
    """Index of the first ``seq[i] < seq[i-1]``, or None when ordered.

    Vectorised over numeric sequences when numpy is available (one
    ``diff``/``argmax`` sweep instead of a python-level loop — the
    orderedness checker's inner loop over alert-seqno projections);
    falls back to :func:`repro.core.sequences.first_inversion`, which
    also covers non-numeric comparables.
    """
    if HAVE_NUMPY and len(seq) > 1:
        try:
            values = np.asarray(seq)
        except (TypeError, ValueError):
            values = None
        if values is not None and values.dtype.kind in "iuf":
            drops = np.diff(values) < 0
            if not drops.any():
                return None
            return int(drops.argmax()) + 1
    from repro.core.sequences import first_inversion as _scalar

    return _scalar(seq)
