"""Completeness — property 2 of Section 3.1 / Appendix C.

Single variable: A is complete iff ``ΦA = ΦT(U1 ⊔ U2)`` — the user sees
exactly the alerts the corresponding non-replicated system would have
produced on the combined inputs (possibly reordered).

Multi variable (Appendix C): completeness requires ``ΦA = ΦT(UV)`` for an
interleaving UV of the per-variable ordered unions.  The definition reads
"any interleaving"; the proof of Lemma 6 establishes *in*completeness by
showing that *no* interleaving UV yields exactly ΦA, so the operative
reading — and the one we implement — is existential: A is complete iff
some interleaving realises exactly its alert set.  (For a single
variable there is exactly one interleaving, U1 ⊔ U2, so the definitions
coincide.)

The multi-variable decision enumerates interleavings and is exponential;
:func:`check_completeness_multi` therefore takes a hard ``limit`` and the
table benchmarks use deliberately short traces.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert, alert_identity_set
from repro.core.condition import Condition
from repro.core.reference import (
    apply_T,
    combine_received,
    count_interleavings,
    interleavings,
)
from repro.core.update import Update

__all__ = [
    "CompletenessResult",
    "check_completeness_single",
    "check_completeness_multi",
    "check_completeness",
]


@dataclass(frozen=True)
class CompletenessResult:
    """Verdict plus the witnessed discrepancies.

    ``missing`` are alert identities T(U1⊔U2) produces but A lacks;
    ``extraneous`` are identities in A that the reference never produces.
    For the multi-variable case the sets are relative to the *closest*
    interleaving examined (the one minimising the symmetric difference).
    """

    complete: bool
    missing: frozenset[tuple] = frozenset()
    extraneous: frozenset[tuple] = frozenset()
    #: Multi-variable only: a witnessing interleaving when complete.
    witness_interleaving: tuple[Update, ...] | None = field(
        default=None, compare=False
    )

    def __bool__(self) -> bool:
        return self.complete


def check_completeness_single(
    alerts: Sequence[Alert],
    condition: Condition,
    merged_updates: Sequence[Update],
) -> CompletenessResult:
    """Single-variable completeness: ΦA = ΦT(U1 ⊔ U2).

    ``merged_updates`` is the already-merged ``U1 ⊔ U2`` (see
    :func:`repro.core.reference.merge_single_variable`).
    """
    expected = alert_identity_set(apply_T(condition, merged_updates))
    actual = alert_identity_set(alerts)
    return CompletenessResult(
        complete=(expected == actual),
        missing=frozenset(expected - actual),
        extraneous=frozenset(actual - expected),
    )


def check_completeness_multi(
    alerts: Sequence[Alert],
    condition: Condition,
    per_variable_updates: dict[str, Sequence[Update]],
    limit: int = 500_000,
) -> CompletenessResult:
    """Multi-variable completeness: ∃ interleaving UV with ΦA = ΦT(UV).

    Exhaustive over interleavings of the per-variable ordered unions.
    Raises RuntimeError when the interleaving count exceeds ``limit``
    rather than guessing.
    """
    total = count_interleavings(per_variable_updates)
    if total > limit:
        raise RuntimeError(
            f"{total} interleavings exceed limit={limit}; shorten the traces "
            "for exact multi-variable completeness checking"
        )
    actual = alert_identity_set(alerts)
    best_missing: frozenset[tuple] = frozenset()
    best_extraneous: frozenset[tuple] = frozenset()
    best_score: int | None = None
    for candidate in interleavings(
        {var: list(seq) for var, seq in per_variable_updates.items()}
    ):
        expected = alert_identity_set(apply_T(condition, candidate))
        if expected == actual:
            return CompletenessResult(
                True, witness_interleaving=tuple(candidate)
            )
        missing = frozenset(expected - actual)
        extraneous = frozenset(actual - expected)
        score = len(missing) + len(extraneous)
        if best_score is None or score < best_score:
            best_score = score
            best_missing = missing
            best_extraneous = extraneous
    return CompletenessResult(False, missing=best_missing, extraneous=best_extraneous)


def check_completeness(
    alerts: Sequence[Alert],
    condition: Condition,
    traces: Sequence[Sequence[Update]],
    limit: int = 500_000,
) -> CompletenessResult:
    """Dispatch on variable count, combining the CE traces first.

    ``traces`` are the per-CE received update sequences (U1, U2, ...).
    """
    per_variable = combine_received(traces, condition.variables)
    if len(condition.variables) == 1:
        var = condition.variables[0]
        return check_completeness_single(alerts, condition, per_variable[var])
    return check_completeness_multi(alerts, condition, per_variable, limit=limit)
