"""Completeness — property 2 of Section 3.1 / Appendix C.

Single variable: A is complete iff ``ΦA = ΦT(U1 ⊔ U2)`` — the user sees
exactly the alerts the corresponding non-replicated system would have
produced on the combined inputs (possibly reordered).

Multi variable (Appendix C): completeness requires ``ΦA = ΦT(UV)`` for an
interleaving UV of the per-variable ordered unions.  The definition reads
"any interleaving"; the proof of Lemma 6 establishes *in*completeness by
showing that *no* interleaving UV yields exactly ΦA, so the operative
reading — and the one we implement — is existential: A is complete iff
some interleaving realises exactly its alert set.  (For a single
variable there is exactly one interleaving, U1 ⊔ U2, so the definitions
coincide.)

The multi-variable decision is implemented two ways:

* :func:`check_completeness_multi` — a memoized DFS over interleaving
  *prefixes*.  Two prefixes that have consumed the same per-variable
  positions leave the reference evaluator in the same state (its history
  windows are determined by the positions alone), so states are keyed on
  ``(positions, produced-alert-identity set)``; any prefix whose produced
  identities already exceed ΦA is pruned (alerts are never retracted, so
  the final set can only grow); and the search exits on the first
  witness.  Exact same verdicts as exhaustive enumeration, exponentially
  smaller search on typical traces.  ``limit`` bounds the number of
  explored states — when exceeded the result carries ``undecided=True``
  instead of guessing (or raising).
* :func:`check_completeness_multi_enumerated` — the blind interleaving
  enumeration the DFS replaced.  Kept as the cross-validation oracle and
  as the benchmark baseline; exponential, so only usable on short traces.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert, alert_identity_set
from repro.core.condition import Condition
from repro.core.history import HistorySnapshot
from repro.core.reference import (
    apply_T,
    combine_received,
    count_interleavings,
    interleavings,
)
from repro.core.update import Update

__all__ = [
    "CompletenessResult",
    "check_completeness_single",
    "check_completeness_multi",
    "check_completeness_multi_enumerated",
    "check_completeness",
]


@dataclass(frozen=True)
class CompletenessResult:
    """Verdict plus the witnessed discrepancies.

    ``missing`` are alert identities T(U1⊔U2) produces but A lacks;
    ``extraneous`` are identities in A that the reference never produces.
    For the multi-variable case the sets are relative to the *canonical*
    interleaving (each variable's run appended whole, in variable order) —
    a fixed, cheap reference point; the search itself proves that no
    interleaving matches exactly.

    ``undecided=True`` marks a multi-variable check that exhausted its
    state budget before finding a witness or exhausting the search space;
    the verdict must then be treated as unknown, not as a violation
    (:class:`~repro.props.report.PropertyTally` skips undecided results).
    """

    complete: bool
    missing: frozenset[tuple] = frozenset()
    extraneous: frozenset[tuple] = frozenset()
    #: Multi-variable only: a witnessing interleaving when complete.
    witness_interleaving: tuple[Update, ...] | None = field(
        default=None, compare=False
    )
    #: True when the state budget ran out before the search concluded.
    undecided: bool = False

    def __bool__(self) -> bool:
        return self.complete


def check_completeness_single(
    alerts: Sequence[Alert],
    condition: Condition,
    merged_updates: Sequence[Update],
) -> CompletenessResult:
    """Single-variable completeness: ΦA = ΦT(U1 ⊔ U2).

    ``merged_updates`` is the already-merged ``U1 ⊔ U2`` (see
    :func:`repro.core.reference.merge_single_variable`).
    """
    expected = alert_identity_set(apply_T(condition, merged_updates))
    actual = alert_identity_set(alerts)
    return CompletenessResult(
        complete=(expected == actual),
        missing=frozenset(expected - actual),
        extraneous=frozenset(actual - expected),
    )


def _canonical_interleaving(
    variables: Sequence[str], per_variable: dict[str, Sequence[Update]]
) -> list[Update]:
    """Each variable's run appended whole, in the given variable order —
    the first interleaving :func:`repro.core.reference.interleavings`
    yields, used as the fixed reference point for failure diagnostics."""
    canonical: list[Update] = []
    for var in variables:
        canonical.extend(per_variable[var])
    return canonical


def _failure_diagnostics(
    actual: frozenset[tuple],
    condition: Condition,
    variables: Sequence[str],
    per_variable: dict[str, Sequence[Update]],
) -> tuple[frozenset[tuple], frozenset[tuple]]:
    expected = alert_identity_set(
        apply_T(condition, _canonical_interleaving(variables, per_variable))
    )
    return frozenset(expected - actual), frozenset(actual - expected)


def check_completeness_multi(
    alerts: Sequence[Alert],
    condition: Condition,
    per_variable_updates: dict[str, Sequence[Update]],
    limit: int = 500_000,
) -> CompletenessResult:
    """Multi-variable completeness: ∃ interleaving UV with ΦA = ΦT(UV).

    Memoized DFS over interleaving prefixes (see module docstring).  The
    reference evaluator's state after a prefix is a pure function of the
    per-variable positions — each history window is the last ``degree``
    updates of that variable's fixed run — so the search space collapses
    from multinomially many interleavings to at most
    ``∏(len+1) × |reachable produced-sets|`` states.

    ``limit`` bounds explored states; exceeding it yields
    ``undecided=True`` rather than a guess.
    """
    actual = alert_identity_set(alerts)
    degrees = condition.degrees
    # Variables the evaluator would ignore contribute nothing to T(UV) and
    # may be interleaved anywhere — drop them from the search.  Empty runs
    # are dropped too (no moves to make).
    variables = [
        var
        for var, seq in per_variable_updates.items()
        if var in degrees and len(seq) > 0
    ]
    sequences = {var: list(per_variable_updates[var]) for var in variables}

    # A variable of the condition with fewer updates than its degree keeps
    # H undefined forever: T produces no alerts on any interleaving.
    producible = all(
        len(sequences.get(var, ())) >= degree for var, degree in degrees.items()
    )
    if not producible:
        if not actual:
            return CompletenessResult(
                True,
                witness_interleaving=tuple(
                    _canonical_interleaving(variables, sequences)
                ),
            )
        missing, extraneous = _failure_diagnostics(
            actual, condition, variables, sequences
        )
        return CompletenessResult(False, missing=missing, extraneous=extraneous)

    # Rolling history windows: windows[var][p] is H_var (most recent
    # first) after consuming the first p updates of var's run.
    windows: dict[str, list[tuple[Update, ...] | None]] = {}
    for var in variables:
        degree = degrees[var]
        run = sequences[var]
        per_pos: list[tuple[Update, ...] | None] = [None] * (len(run) + 1)
        for pos in range(degree, len(run) + 1):
            per_pos[pos] = tuple(reversed(run[pos - degree : pos]))
        windows[var] = per_pos

    # Produced identities are tracked as bitmasks over ΦA (pruning keeps
    # produced ⊆ ΦA, so nothing outside ΦA ever needs a bit).
    bit_of = {identity: 1 << i for i, identity in enumerate(sorted(actual))}
    full_mask = (1 << len(actual)) - 1

    lengths = [len(sequences[var]) for var in variables]
    n_vars = len(variables)
    evaluate = condition.evaluate
    condname = condition.name

    # identity-or-None of the alert triggered by the update that *moved
    # the search into* this position vector; the triggering variable does
    # not matter because the evaluator sees the same windows either way.
    eval_cache: dict[tuple[int, ...], tuple | None] = {}

    def produced_at(positions: tuple[int, ...]) -> tuple | None:
        cached = eval_cache.get(positions, _UNEVALUATED)
        if cached is not _UNEVALUATED:
            return cached
        entries = {}
        defined = True
        for index, var in enumerate(variables):
            window = windows[var][positions[index]]
            if window is None:
                defined = False
                break
            entries[var] = window
        identity: tuple | None = None
        if defined:
            snapshot = HistorySnapshot.from_trusted(entries)
            if evaluate(snapshot):
                identity = (condname, snapshot.identity())
        eval_cache[positions] = identity
        return identity

    failed: set[tuple[tuple[int, ...], int]] = set()
    witness: list[Update] = []
    states = 0

    class _BudgetExceeded(Exception):
        pass

    def search(positions: tuple[int, ...], produced: int) -> bool:
        nonlocal states
        if produced == full_mask and all(
            positions[i] == lengths[i] for i in range(n_vars)
        ):
            return True
        key = (positions, produced)
        if key in failed:
            return False
        states += 1
        if states > limit:
            raise _BudgetExceeded
        for index in range(n_vars):
            position = positions[index]
            if position == lengths[index]:
                continue
            advanced = (
                positions[:index] + (position + 1,) + positions[index + 1 :]
            )
            identity = produced_at(advanced)
            if identity is None:
                next_produced = produced
            else:
                bit = bit_of.get(identity)
                if bit is None:
                    # Produced an alert outside ΦA: the final set can only
                    # grow, so no extension of this prefix can match.
                    continue
                next_produced = produced | bit
            if search(advanced, next_produced):
                witness.append(sequences[variables[index]][position])
                return True
        failed.add(key)
        return False

    try:
        found = search(tuple([0] * n_vars), 0)
    except _BudgetExceeded:
        missing, extraneous = _failure_diagnostics(
            actual, condition, variables, sequences
        )
        return CompletenessResult(
            False, missing=missing, extraneous=extraneous, undecided=True
        )
    if found:
        witness.reverse()
        return CompletenessResult(True, witness_interleaving=tuple(witness))
    missing, extraneous = _failure_diagnostics(
        actual, condition, variables, sequences
    )
    return CompletenessResult(False, missing=missing, extraneous=extraneous)


_UNEVALUATED = object()


def check_completeness_multi_enumerated(
    alerts: Sequence[Alert],
    condition: Condition,
    per_variable_updates: dict[str, Sequence[Update]],
    limit: int = 500_000,
) -> CompletenessResult:
    """Exhaustive-enumeration oracle for multi-variable completeness.

    The implementation :func:`check_completeness_multi` replaced; kept
    for cross-validating the pruned search and as the benchmark baseline.
    Raises RuntimeError when the interleaving count exceeds ``limit``
    rather than guessing.  Failure diagnostics use the same canonical
    interleaving as the DFS so the two backends are result-identical.
    """
    total = count_interleavings(per_variable_updates)
    if total > limit:
        raise RuntimeError(
            f"{total} interleavings exceed limit={limit}; shorten the traces "
            "for exhaustive multi-variable completeness checking"
        )
    actual = alert_identity_set(alerts)
    for candidate in interleavings(
        {var: list(seq) for var, seq in per_variable_updates.items()}
    ):
        expected = alert_identity_set(apply_T(condition, candidate))
        if expected == actual:
            return CompletenessResult(
                True, witness_interleaving=tuple(candidate)
            )
    variables = [
        var for var, seq in per_variable_updates.items() if len(seq) > 0
    ]
    missing, extraneous = _failure_diagnostics(
        actual,
        condition,
        variables,
        {var: list(per_variable_updates[var]) for var in variables},
    )
    return CompletenessResult(False, missing=missing, extraneous=extraneous)


def check_completeness(
    alerts: Sequence[Alert],
    condition: Condition,
    traces: Sequence[Sequence[Update]],
    limit: int = 500_000,
) -> CompletenessResult:
    """Dispatch on variable count, combining the CE traces first.

    ``traces`` are the per-CE received update sequences (U1, U2, ...).
    """
    per_variable = combine_received(traces, condition.variables)
    if len(condition.variables) == 1:
        var = condition.variables[0]
        return check_completeness_single(alerts, condition, per_variable[var])
    return check_completeness_multi(alerts, condition, per_variable, limit=limit)
