"""Bounded-exhaustive verification of AD algorithm invariants.

Hypothesis samples the stream space; this module *enumerates* it: every
stream over a finite alert alphabet up to a length bound is replayed
through a fresh algorithm instance and checked against an invariant.
Within the bounds this is a proof, not a test — the paper's algorithm
guarantees (AD-2 ordered, AD-3 consistent, AD-4 both, AD-5/AD-6
multi-variable) are *prefix-closed* stream properties, so exhausting
streams of length L covers every reachable algorithm state at depth L.

The search prunes by prefix: an algorithm's decisions depend only on its
displayed prefix, so the enumeration walks the stream tree depth-first,
carrying the live algorithm state, and checks the invariant after each
accepted alert.  Cost is |alphabet|^max_length invariant checks in the
worst case — keep alphabets small (the helpers build degree-2 and
two-variable alphabets over tiny seqno ranges, which already exercise
every code path: duplicates, gaps, conflicts, inversions).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert
from repro.core.update import Update
from repro.core.alert import make_alert
from repro.displayers.base import ADAlgorithm

__all__ = [
    "VerificationResult",
    "verify_invariant_exhaustively",
    "degree2_alphabet",
    "two_variable_alphabet",
]

Invariant = Callable[[Sequence[Alert]], bool]


@dataclass
class VerificationResult:
    """Outcome of a bounded-exhaustive sweep."""

    streams_checked: int = 0
    states_visited: int = 0
    #: First stream whose displayed output violates the invariant.
    violation: tuple[Alert, ...] | None = field(default=None, repr=False)

    @property
    def holds(self) -> bool:
        return self.violation is None


def degree2_alphabet(max_seqno: int = 4, condname: str = "c") -> list[Alert]:
    """Every degree-2 single-variable alert with seqnos in [1, max_seqno]."""
    alphabet = []
    for prev in range(1, max_seqno):
        for head in range(prev + 1, max_seqno + 1):
            alphabet.append(
                make_alert(
                    condname,
                    {"x": [Update("x", head, 0.0), Update("x", prev, 0.0)]},
                )
            )
    return alphabet


def two_variable_alphabet(max_seqno: int = 3, condname: str = "cm") -> list[Alert]:
    """Every degree-1 two-variable alert with seqnos in [1, max_seqno]²."""
    return [
        make_alert(
            condname,
            {"x": [Update("x", sx, 0.0)], "y": [Update("y", sy, 0.0)]},
        )
        for sx in range(1, max_seqno + 1)
        for sy in range(1, max_seqno + 1)
    ]


def verify_invariant_exhaustively(
    algorithm_factory: Callable[[], ADAlgorithm],
    alphabet: Sequence[Alert],
    max_length: int,
    invariant: Invariant,
    max_states: int = 2_000_000,
) -> VerificationResult:
    """Check ``invariant(displayed)`` on every stream up to ``max_length``.

    Walks the stream tree depth-first, replaying incrementally (one fresh
    algorithm per branch via replays of the prefix — algorithms are cheap
    to re-run and this keeps them free of snapshot requirements).  The
    invariant is evaluated after every arrival, so any violating *prefix*
    is found at its shortest length.  ``max_states`` caps the walk and
    raises rather than silently truncating.
    """
    if max_length < 0:
        raise ValueError("max_length must be non-negative")
    result = VerificationResult()

    def walk(prefix: list[Alert]) -> bool:
        """Returns False when a violation was recorded (stops the walk)."""
        result.states_visited += 1
        if result.states_visited > max_states:
            raise RuntimeError(
                f"state budget {max_states} exhausted; shrink the alphabet "
                "or max_length"
            )
        if len(prefix) == max_length:
            result.streams_checked += 1
            return True
        for alert in alphabet:
            prefix.append(alert)
            algorithm = algorithm_factory()
            displayed = algorithm.offer_all(prefix)
            if not invariant(displayed):
                result.violation = tuple(prefix)
                prefix.pop()
                return False
            if not walk(prefix):
                prefix.pop()
                return False
            prefix.pop()
        return True

    walk([])
    return result
