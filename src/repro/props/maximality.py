"""Empirical maximality probes (Theorems 5, 7 and 9).

An algorithm G is *maximally P* (P = ordered / consistent / both) when G
guarantees P and no P-guaranteeing algorithm strictly dominates it.  The
paper proves maximality for AD-2, AD-3 and AD-4.  Maximality quantifies
over all algorithms, which cannot be tested directly — but the proofs all
share one structure: *every alert the algorithm discards would break P if
displayed*.  Any algorithm that lets such an alert through (at the point
it arrived) therefore fails P, so none can strictly dominate.

:func:`greedy_maximality_probe` operationalises exactly that argument:
replay an arrival stream, and for each discarded alert check that
appending it to the displayed-so-far prefix violates the property.  If
every discard is *justified* in this sense on every tested stream, the
measured data is consistent with the theorem; a single unjustified
discard would be a counterexample to maximality (the alert could have
been displayed by a better P-guaranteeing filter).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm

__all__ = ["MaximalityResult", "greedy_maximality_probe", "probe_streams"]

#: A property predicate over a displayed alert sequence.
PropertyChecker = Callable[[Sequence[Alert]], bool]


@dataclass
class MaximalityResult:
    """Tally of justified vs unjustified discards across streams."""

    algorithm: str
    streams: int = 0
    discards: int = 0
    unjustified: int = 0
    #: First (prefix, alert) pair whose re-addition kept the property.
    first_counterexample: tuple[tuple[Alert, ...], Alert] | None = field(
        default=None, repr=False
    )

    @property
    def maximal(self) -> bool:
        """True when every discard was necessary to preserve the property."""
        return self.unjustified == 0


def greedy_maximality_probe(
    algorithm: ADAlgorithm,
    arrivals: Sequence[Alert],
    property_holds: PropertyChecker,
    result: MaximalityResult | None = None,
) -> MaximalityResult:
    """Check that every alert ``algorithm`` discards had to be discarded.

    For each arriving alert the probe asks: would displaying it (after
    the alerts displayed so far) keep the property?  If yes but the
    algorithm discarded it, that discard is *unjustified* — evidence
    against maximality.
    """
    if result is None:
        result = MaximalityResult(algorithm.name)
    ad = algorithm.fresh()
    result.streams += 1
    for alert in arrivals:
        prefix = list(ad.output)
        displayed = ad.offer(alert)
        if displayed:
            continue
        result.discards += 1
        if property_holds(prefix + [alert]):
            result.unjustified += 1
            if result.first_counterexample is None:
                result.first_counterexample = (tuple(prefix), alert)
    return result


def probe_streams(
    algorithm: ADAlgorithm,
    arrival_streams: Iterable[Sequence[Alert]],
    property_holds: PropertyChecker,
) -> MaximalityResult:
    """Run the greedy probe over many arrival streams, accumulating."""
    result = MaximalityResult(algorithm.name)
    for stream in arrival_streams:
        greedy_maximality_probe(algorithm, tuple(stream), property_holds, result)
    return result
