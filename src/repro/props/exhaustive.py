"""Exhaustive interleaving analysis of a fixed CE-trace pair.

The merge function M is *timing dependent* (Appendix B): its output
depends on how the alert streams A1, A2 interleave at the AD.  The
randomized table experiments sample that timing space; this module
*enumerates* it.  Given what each CE received, it replays every possible
arrival interleaving through a fresh AD instance and classifies each
property as

* ``always`` — holds in every interleaving,
* ``never`` — violated in every interleaving,
* ``sometimes`` — depends on timing (with witnesses both ways).

This turns statements like "if alert a2 arrives before a1 …" (Examples
1–2) into machine-checked facts about *all* arrival orders, and lets the
tests prove per-instance claims like "no interleaving of this pair is
unordered" without trusting delay distributions.

Complexity is binomial in the stream lengths; :func:`count_merge_orders`
lets callers pre-check, and ``limit`` guards against misuse.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from math import comb

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update
from repro.displayers.base import ADAlgorithm
from repro.props.report import PropertyReport, evaluate_run

__all__ = [
    "iter_merge_orders",
    "count_merge_orders",
    "PropertyClassification",
    "ExhaustiveReport",
    "classify_trace_pair",
]


def count_merge_orders(lengths: Sequence[int]) -> int:
    """Number of distinct merge orders of streams with these lengths."""
    total = 0
    count = 1
    for length in lengths:
        total += length
        count *= comb(total, length)
    return count


def iter_merge_orders(lengths: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Yield every merge order as a tuple of stream indices.

    Each yielded tuple has ``sum(lengths)`` entries; entry ``k`` names the
    stream whose next alert arrives in slot ``k``.  Per-stream order is
    preserved (back links are FIFO).
    """
    remaining = list(lengths)

    def generate(prefix: list[int]) -> Iterator[tuple[int, ...]]:
        if all(r == 0 for r in remaining):
            yield tuple(prefix)
            return
        for index in range(len(remaining)):
            if remaining[index] > 0:
                remaining[index] -= 1
                prefix.append(index)
                yield from generate(prefix)
                prefix.pop()
                remaining[index] += 1

    return generate([])


@dataclass(frozen=True)
class PropertyClassification:
    """How one property behaves across all interleavings."""

    holds_count: int
    violated_count: int
    #: A merge order witnessing each side, when it exists.
    holding_witness: tuple[int, ...] | None = field(compare=False, default=None)
    violating_witness: tuple[int, ...] | None = field(compare=False, default=None)

    @property
    def total(self) -> int:
        return self.holds_count + self.violated_count

    @property
    def verdict(self) -> str:
        if self.violated_count == 0:
            return "always"
        if self.holds_count == 0:
            return "never"
        return "sometimes"


@dataclass(frozen=True)
class ExhaustiveReport:
    """Classification of all three properties over all interleavings."""

    interleavings: int
    ordered: PropertyClassification
    complete: PropertyClassification | None
    consistent: PropertyClassification


class _Tally:
    def __init__(self) -> None:
        self.holds = 0
        self.violated = 0
        self.holding_witness: tuple[int, ...] | None = None
        self.violating_witness: tuple[int, ...] | None = None
        self.checked = 0

    def add(self, holds: bool, order: tuple[int, ...]) -> None:
        self.checked += 1
        if holds:
            self.holds += 1
            if self.holding_witness is None:
                self.holding_witness = order
        else:
            self.violated += 1
            if self.violating_witness is None:
                self.violating_witness = order

    def freeze(self) -> PropertyClassification | None:
        if self.checked == 0:
            return None
        return PropertyClassification(
            self.holds, self.violated, self.holding_witness, self.violating_witness
        )


def classify_trace_pair(
    condition: Condition,
    traces: Sequence[Sequence[Update]],
    make_ad: Callable[[], ADAlgorithm],
    limit: int = 50_000,
) -> ExhaustiveReport:
    """Replay every arrival interleaving of the CE alert streams.

    ``traces`` are the update sequences each CE received; the CE stage is
    deterministic so it runs once, and only the AD merge varies.
    """
    streams: list[tuple[Alert, ...]] = []
    for index, trace in enumerate(traces):
        evaluator = ConditionEvaluator(condition, source=f"CE{index + 1}")
        evaluator.ingest_all(trace)
        streams.append(evaluator.alerts)

    lengths = [len(s) for s in streams]
    total = count_merge_orders(lengths)
    if total > limit:
        raise RuntimeError(
            f"{total} interleavings exceed limit={limit}; shorten the traces"
        )

    ordered_tally = _Tally()
    complete_tally = _Tally()
    consistent_tally = _Tally()

    for order in iter_merge_orders(lengths):
        positions = [0] * len(streams)
        arrivals: list[Alert] = []
        for stream_index in order:
            arrivals.append(streams[stream_index][positions[stream_index]])
            positions[stream_index] += 1
        ad = make_ad()
        displayed = ad.offer_all(arrivals)
        report: PropertyReport = evaluate_run(condition, traces, displayed)
        ordered_tally.add(bool(report.ordered), order)
        if report.complete is not None:
            complete_tally.add(bool(report.complete), order)
        if report.consistent is not None:
            consistent_tally.add(bool(report.consistent), order)

    ordered = ordered_tally.freeze()
    consistent = consistent_tally.freeze()
    assert ordered is not None and consistent is not None
    return ExhaustiveReport(
        interleavings=total,
        ordered=ordered,
        complete=complete_tally.freeze(),
        consistent=consistent,
    )
