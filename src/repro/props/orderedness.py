"""Orderedness — property 1 of Section 3.1 / Appendix C.

A replicated system is *ordered* if every alert sequence A it produces is
ordered: for every variable x in V, the projection ``Πx A`` (the sequence
of ``a.seqno.x`` values) is non-decreasing.  The corresponding
non-replicated system always delivers alerts in this order, so an ordered
replicated system "behaves similarly in this respect".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.accel import first_inversion
from repro.core.alert import Alert, project_alert_seqnos
from repro.core.sequences import is_ordered

__all__ = ["OrderednessResult", "check_orderedness", "is_alert_sequence_ordered"]


@dataclass(frozen=True)
class OrderednessResult:
    """Verdict plus, on failure, the first witnessed inversion."""

    ordered: bool
    #: Variable in which the first inversion occurs (None when ordered).
    violating_variable: str | None = None
    #: Index into A of the alert that regresses (None when ordered).
    violation_index: int | None = None

    def __bool__(self) -> bool:
        return self.ordered


def check_orderedness(alerts: Sequence[Alert], variables: Iterable[str]) -> OrderednessResult:
    """Decide orderedness of A with respect to every variable in V."""
    for var in variables:
        projection = project_alert_seqnos(alerts, var)
        index = first_inversion(projection)
        if index is not None:
            return OrderednessResult(False, var, index)
    return OrderednessResult(True)


def is_alert_sequence_ordered(alerts: Sequence[Alert], variables: Iterable[str]) -> bool:
    """Plain-bool convenience wrapper around :func:`check_orderedness`."""
    return all(is_ordered(project_alert_seqnos(alerts, var)) for var in variables)
