"""Consistency — property 3 of Section 3.1 / Appendix C.

A replicated system is *consistent* if for every alert sequence A it
produces there exists a ``U′`` with ``ΦA ⊆ ΦT(U′)`` and ``U′ ⊑ U1 ⊔ U2``
(single variable) or ``U′ ⊑ UV`` for an interleaving UV of the combined
per-variable updates (multi-variable, Appendix C).  Intuitively: the user
could have received this alert set from *some* non-replicated system fed
a subset of the combined inputs — no "extraneous" alerts.

Three checkers, in increasing generality and cost:

* :func:`check_consistency_single` — exact for single-variable conditions,
  linear time.  It is the constraint system from the proof of Theorem 7:
  each alert requires its history seqnos *received* and the gaps inside
  its history span *missed*; A is consistent iff no seqno is required
  both ways.  (The alert's own trigger truth is free: the emitting CE
  evaluated the condition on exactly that history.)
* :func:`check_consistency_multi` — exact for *non-historical*
  multi-variable conditions, polynomial time.  It is the precedence-graph
  construction from the proof of Lemma 5: alert a with seqnos (sx, sy, …)
  is in T(UV) iff sx precedes (sy+1) of y, etc.; A is consistent iff the
  constraint graph (plus per-variable chains) is acyclic.
* :func:`check_consistency_bruteforce` — exact for everything; a memoized
  DFS over prefixes of candidate U′ sequences (at each step a variable's
  next update is either *taken* into U′ or *skipped*), keyed on
  (per-variable positions, history windows of taken updates, covered
  target identities) with an early exit as soon as every displayed alert
  is covered.  Used to cross-validate the fast checkers and to decide
  historical multi-variable cases; ``limit`` bounds explored states.
"""

from __future__ import annotations

import bisect
import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import networkx as nx

from repro.core.alert import Alert, alert_identity_set
from repro.core.condition import Condition
from repro.core.history import HistorySnapshot
from repro.core.sequences import spanning_set
from repro.core.update import Update

__all__ = [
    "ConsistencyResult",
    "check_consistency_single",
    "check_consistency_multi",
    "check_consistency_bruteforce",
    "build_precedence_graph",
]


@dataclass(frozen=True)
class ConsistencyResult:
    """Verdict plus a witness (on success) or a conflict (on failure)."""

    consistent: bool
    #: On success: the required-received set used as U′ — seqnos for the
    #: single-variable checker, (var, seqno) pairs for the multi-variable one.
    witness_received: frozenset | None = None
    #: On failure: a human-readable description of the first conflict found.
    conflict: str | None = None
    #: On success for the brute-force checker: an explicit U′ sequence.
    witness_sequence: tuple[Update, ...] | None = field(default=None, compare=False)

    def __bool__(self) -> bool:
        return self.consistent


def check_consistency_single(
    alerts: Sequence[Alert],
    varname: str | None = None,
) -> ConsistencyResult:
    """Exact single-variable consistency check (Theorem 7's construction).

    ``varname`` defaults to the single variable of the first alert.  An
    empty A is trivially consistent.
    """
    if not alerts:
        return ConsistencyResult(True, witness_received=frozenset())
    if varname is None:
        variables = alerts[0].variables
        if len(variables) != 1:
            raise ValueError(
                "check_consistency_single needs a single-variable condition; "
                f"alert has variables {variables}"
            )
        varname = variables[0]

    received: set[int] = set()
    missed: set[int] = set()
    for index, alert in enumerate(alerts):
        history = set(alert.histories.seqnos(varname))
        gaps = spanning_set(history) - frozenset(history)
        conflict_recv = history & missed
        if conflict_recv:
            seqno = min(conflict_recv)
            return ConsistencyResult(
                False,
                conflict=(
                    f"alert #{index} {alert.shorthand()} requires update "
                    f"{seqno} received, but an earlier alert requires it missed"
                ),
            )
        conflict_miss = gaps & received
        if conflict_miss:
            seqno = min(conflict_miss)
            return ConsistencyResult(
                False,
                conflict=(
                    f"alert #{index} {alert.shorthand()} requires update "
                    f"{seqno} missed, but an earlier alert requires it received"
                ),
            )
        received |= history
        missed |= gaps
    return ConsistencyResult(True, witness_received=frozenset(received))


def build_precedence_graph(
    alerts: Iterable[Alert],
    variables: Sequence[str],
    max_seqnos: dict[str, int] | None = None,
) -> nx.DiGraph:
    """The Lemma-5 precedence graph over update instances ``(var, seqno)``.

    Edges:

    * per-variable chains ``(v, s) → (v, s+1)`` (Requirement 2);
    * for every alert and ordered variable pair (v, w):
      ``(v, a.seqno.v) → (w, a.seqno.w + 1)`` (Requirement 1) — the
      triggering v-update must precede the first w-update *newer* than the
      alert's w-history head.
    """
    graph = nx.DiGraph()
    alerts = list(alerts)
    highest: dict[str, int] = dict(max_seqnos or {})
    for alert in alerts:
        for var in variables:
            needed = alert.seqno(var) + 1
            highest[var] = max(highest.get(var, 0), needed)
    for var in variables:
        top = highest.get(var, 0)
        for seqno in range(1, top + 1):
            graph.add_node((var, seqno))
            if seqno > 1:
                graph.add_edge((var, seqno - 1), (var, seqno))
    for alert in alerts:
        for var_v, var_w in itertools.permutations(variables, 2):
            graph.add_edge(
                (var_v, alert.seqno(var_v)), (var_w, alert.seqno(var_w) + 1)
            )
    return graph


def check_consistency_multi(
    alerts: Sequence[Alert],
    variables: Sequence[str],
) -> ConsistencyResult:
    """Exact multi-variable consistency check (historical or not).

    A witness ``U′ ⊑ UV`` may drop updates, so w.l.o.g. take U′ to contain
    exactly the updates *required* by the alerts' histories — dropping
    anything else only removes constraints.  A is then consistent iff

    1. **membership** is satisfiable per variable: no seqno is both
       required (in some alert's history) and required-missing (inside
       some alert's history span but not in it) — the Received/Missed
       condition of Theorem 7, applied per variable; and
    2. **ordering** is satisfiable: the precedence digraph over the
       required updates is acyclic.  Edges are (a) per-variable chains
       between consecutive required seqnos and (b), per alert and ordered
       variable pair (v, w), an edge from the alert's v-head to the first
       required w-update *newer* than its w-head — the Lemma-5
       requirement that, at trigger time, no newer w-update had arrived.

    With only required members kept, condition 1 also forces each alert's
    per-variable history to be exactly the adjacent run it claims, so the
    construction covers historical conditions as well; the test-suite
    cross-validates this checker against the exhaustive oracle.
    """
    if not alerts:
        return ConsistencyResult(True)

    required: dict[str, set[int]] = {var: set() for var in variables}
    missed: dict[str, set[int]] = {var: set() for var in variables}
    for alert in alerts:
        for var in variables:
            history = set(alert.histories.seqnos(var))
            gaps = spanning_set(history) - frozenset(history)
            required[var] |= history
            missed[var] |= gaps
    for var in variables:
        conflict = required[var] & missed[var]
        if conflict:
            seqno = min(conflict)
            return ConsistencyResult(
                False,
                conflict=(
                    f"update {seqno}{var} is required received by one alert "
                    "and required missed by another"
                ),
            )

    # Plain-dict adjacency + Kahn's algorithm: this check runs once per
    # trial in the table benchmarks, and building a networkx.DiGraph per
    # run dominated its cost (build_precedence_graph still returns one
    # for callers that want the graph itself).
    successors: dict[tuple[str, int], list[tuple[str, int]]] = {}
    indegree: dict[tuple[str, int], int] = {}
    sorted_required = {var: sorted(required[var]) for var in variables}

    def add_edge(src: tuple[str, int], dst: tuple[str, int]) -> None:
        successors.setdefault(src, []).append(dst)
        indegree[dst] = indegree.get(dst, 0) + 1
        indegree.setdefault(src, 0)

    for var in variables:
        run = sorted_required[var]
        for seqno in run:
            indegree.setdefault((var, seqno), 0)
        for a, b in zip(run, run[1:]):
            add_edge((var, a), (var, b))
    for alert in alerts:
        for var_v, var_w in itertools.permutations(variables, 2):
            head_v = alert.seqno(var_v)
            head_w = alert.seqno(var_w)
            run_w = sorted_required[var_w]
            at = bisect.bisect_right(run_w, head_w)
            successor = run_w[at] if at < len(run_w) else None
            if successor is not None:
                add_edge((var_v, head_v), (var_w, successor))

    ready = [node for node, degree in indegree.items() if degree == 0]
    removed = 0
    while ready:
        node = ready.pop()
        removed += 1
        for succ in successors.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if removed == len(indegree):
        return ConsistencyResult(
            True,
            witness_received=frozenset(
                (var, s) for var in variables for s in required[var]
            ),
        )
    # Some node sits on (or behind) a cycle.  Every blocked node keeps at
    # least one blocked predecessor (its remaining indegree), so walking
    # predecessors inside the blocked set must revisit a node — that loop
    # is a cycle, recorded backwards.
    blocked = {node for node, degree in indegree.items() if degree > 0}
    predecessors: dict[tuple[str, int], tuple[str, int]] = {}
    for src, dsts in successors.items():
        if src in blocked:
            for dst in dsts:
                if dst in blocked:
                    predecessors.setdefault(dst, src)
    node = min(blocked)
    seen: dict[tuple[str, int], int] = {}
    walk: list[tuple[str, int]] = []
    while node not in seen:
        seen[node] = len(walk)
        walk.append(node)
        node = predecessors[node]
    cycle = list(reversed(walk[seen[node] :]))
    rendered = " -> ".join(f"{s}{v}" for (v, s) in cycle + [cycle[0]])
    return ConsistencyResult(
        False, conflict=f"precedence cycle over updates: {rendered}"
    )


def check_consistency_bruteforce(
    alerts: Sequence[Alert],
    condition: Condition,
    per_variable_updates: dict[str, Sequence[Update]],
    limit: int = 2_000_000,
) -> ConsistencyResult:
    """Exhaustive consistency oracle: search for an explicit witness U′.

    ``per_variable_updates`` holds, for each variable, the ordered union
    of updates received by all CEs (the building blocks of UV).  A valid
    witness is any interleaving of per-variable *subsequences* of those
    runs, so the search walks candidate prefixes directly: at each step
    one variable's next update is either taken into U′ or skipped.  The
    reference evaluator's behaviour on the rest of the candidate depends
    only on (per-variable positions, the history windows of *taken*
    updates, which target alerts are already covered), so states are
    memoized on exactly that triple, and the search exits as soon as every
    displayed alert is covered — dropping the remaining updates only
    removes constraints.  Exact same verdicts as enumerating every
    subset × interleaving, exponentially fewer states on typical traces.

    ``limit`` bounds the number of explored states; exceeding it raises
    RuntimeError rather than silently returning a wrong verdict.
    """
    if not alerts:
        return ConsistencyResult(True, witness_sequence=())
    targets = alert_identity_set(alerts)
    degrees = condition.degrees
    variables = [
        var
        for var, seq in per_variable_updates.items()
        if var in degrees and len(seq) > 0
    ]
    sequences = {var: list(per_variable_updates[var]) for var in variables}
    lengths = [len(sequences[var]) for var in variables]
    n_vars = len(variables)

    # A condition variable with fewer updates than its degree keeps H
    # undefined on every candidate: T(U′) is empty, so a non-empty A can
    # never be explained.
    if any(
        len(sequences.get(var, ())) < degree for var, degree in degrees.items()
    ):
        return ConsistencyResult(
            False,
            conflict=(
                "no U' explains A: some variable has fewer combined updates "
                "than the condition's degree"
            ),
        )

    bit_of = {identity: 1 << i for i, identity in enumerate(sorted(targets))}
    full_mask = (1 << len(targets)) - 1

    evaluate = condition.evaluate
    condname = condition.name
    eval_cache: dict[tuple, tuple | None] = {}

    def alert_identity(windows: tuple) -> tuple | None:
        """Identity of the alert triggered by the newest take, or None."""
        cached = eval_cache.get(windows, _UNEVALUATED)
        if cached is not _UNEVALUATED:
            return cached
        identity: tuple | None = None
        if all(
            len(window) == degrees[var]
            for var, window in zip(variables, windows)
        ):
            snapshot = HistorySnapshot.from_trusted(
                dict(zip(variables, windows))
            )
            if evaluate(snapshot):
                identity = (condname, snapshot.identity())
        eval_cache[windows] = identity
        return identity

    failed: set[tuple] = set()
    taken: list[Update] = []
    states = 0

    def search(positions: tuple[int, ...], windows: tuple, covered: int) -> bool:
        nonlocal states
        if covered == full_mask:
            return True
        if all(positions[i] == lengths[i] for i in range(n_vars)):
            return False
        key = (positions, windows, covered)
        if key in failed:
            return False
        states += 1
        if states > limit:
            raise RuntimeError(
                f"consistency brute-force exceeded limit={limit} states; "
                "use the constraint-based checkers for instances this size"
            )
        for index in range(n_vars):
            position = positions[index]
            if position == lengths[index]:
                continue
            advanced = (
                positions[:index] + (position + 1,) + positions[index + 1 :]
            )
            update = sequences[variables[index]][position]
            # Take the update into U′ ...
            degree = degrees[variables[index]]
            new_window = ((update,) + windows[index])[:degree]
            new_windows = (
                windows[:index] + (new_window,) + windows[index + 1 :]
            )
            identity = alert_identity(new_windows)
            new_covered = covered
            if identity is not None:
                bit = bit_of.get(identity)
                if bit is not None:
                    new_covered = covered | bit
            if search(advanced, new_windows, new_covered):
                taken.append(update)
                return True
            # ... or skip it (drop it from U′).
            if search(advanced, windows, covered):
                return True
        failed.add(key)
        return False

    initial_windows = tuple(() for _ in variables)
    if search(tuple([0] * n_vars), initial_windows, 0):
        taken.reverse()
        return ConsistencyResult(True, witness_sequence=tuple(taken))
    return ConsistencyResult(
        False, conflict=f"no U' among {states} explored states explains A"
    )


_UNEVALUATED = object()
