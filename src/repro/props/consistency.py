"""Consistency — property 3 of Section 3.1 / Appendix C.

A replicated system is *consistent* if for every alert sequence A it
produces there exists a ``U′`` with ``ΦA ⊆ ΦT(U′)`` and ``U′ ⊑ U1 ⊔ U2``
(single variable) or ``U′ ⊑ UV`` for an interleaving UV of the combined
per-variable updates (multi-variable, Appendix C).  Intuitively: the user
could have received this alert set from *some* non-replicated system fed
a subset of the combined inputs — no "extraneous" alerts.

Three checkers, in increasing generality and cost:

* :func:`check_consistency_single` — exact for single-variable conditions,
  linear time.  It is the constraint system from the proof of Theorem 7:
  each alert requires its history seqnos *received* and the gaps inside
  its history span *missed*; A is consistent iff no seqno is required
  both ways.  (The alert's own trigger truth is free: the emitting CE
  evaluated the condition on exactly that history.)
* :func:`check_consistency_multi` — exact for *non-historical*
  multi-variable conditions, polynomial time.  It is the precedence-graph
  construction from the proof of Lemma 5: alert a with seqnos (sx, sy, …)
  is in T(UV) iff sx precedes (sy+1) of y, etc.; A is consistent iff the
  constraint graph (plus per-variable chains) is acyclic.
* :func:`check_consistency_bruteforce` — exact for everything, exponential;
  enumerates candidate U′ sequences.  Used to cross-validate the fast
  checkers on small instances and to decide historical multi-variable
  cases.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import networkx as nx

from repro.core.alert import Alert, alert_identity_set
from repro.core.condition import Condition
from repro.core.reference import apply_T, interleavings
from repro.core.sequences import spanning_set
from repro.core.update import Update

__all__ = [
    "ConsistencyResult",
    "check_consistency_single",
    "check_consistency_multi",
    "check_consistency_bruteforce",
    "build_precedence_graph",
]


@dataclass(frozen=True)
class ConsistencyResult:
    """Verdict plus a witness (on success) or a conflict (on failure)."""

    consistent: bool
    #: On success: the required-received set used as U′ — seqnos for the
    #: single-variable checker, (var, seqno) pairs for the multi-variable one.
    witness_received: frozenset | None = None
    #: On failure: a human-readable description of the first conflict found.
    conflict: str | None = None
    #: On success for the brute-force checker: an explicit U′ sequence.
    witness_sequence: tuple[Update, ...] | None = field(default=None, compare=False)

    def __bool__(self) -> bool:
        return self.consistent


def check_consistency_single(
    alerts: Sequence[Alert],
    varname: str | None = None,
) -> ConsistencyResult:
    """Exact single-variable consistency check (Theorem 7's construction).

    ``varname`` defaults to the single variable of the first alert.  An
    empty A is trivially consistent.
    """
    if not alerts:
        return ConsistencyResult(True, witness_received=frozenset())
    if varname is None:
        variables = alerts[0].variables
        if len(variables) != 1:
            raise ValueError(
                "check_consistency_single needs a single-variable condition; "
                f"alert has variables {variables}"
            )
        varname = variables[0]

    received: set[int] = set()
    missed: set[int] = set()
    for index, alert in enumerate(alerts):
        history = set(alert.histories.seqnos(varname))
        gaps = spanning_set(history) - frozenset(history)
        conflict_recv = history & missed
        if conflict_recv:
            seqno = min(conflict_recv)
            return ConsistencyResult(
                False,
                conflict=(
                    f"alert #{index} {alert.shorthand()} requires update "
                    f"{seqno} received, but an earlier alert requires it missed"
                ),
            )
        conflict_miss = gaps & received
        if conflict_miss:
            seqno = min(conflict_miss)
            return ConsistencyResult(
                False,
                conflict=(
                    f"alert #{index} {alert.shorthand()} requires update "
                    f"{seqno} missed, but an earlier alert requires it received"
                ),
            )
        received |= history
        missed |= gaps
    return ConsistencyResult(True, witness_received=frozenset(received))


def build_precedence_graph(
    alerts: Iterable[Alert],
    variables: Sequence[str],
    max_seqnos: dict[str, int] | None = None,
) -> nx.DiGraph:
    """The Lemma-5 precedence graph over update instances ``(var, seqno)``.

    Edges:

    * per-variable chains ``(v, s) → (v, s+1)`` (Requirement 2);
    * for every alert and ordered variable pair (v, w):
      ``(v, a.seqno.v) → (w, a.seqno.w + 1)`` (Requirement 1) — the
      triggering v-update must precede the first w-update *newer* than the
      alert's w-history head.
    """
    graph = nx.DiGraph()
    alerts = list(alerts)
    highest: dict[str, int] = dict(max_seqnos or {})
    for alert in alerts:
        for var in variables:
            needed = alert.seqno(var) + 1
            highest[var] = max(highest.get(var, 0), needed)
    for var in variables:
        top = highest.get(var, 0)
        for seqno in range(1, top + 1):
            graph.add_node((var, seqno))
            if seqno > 1:
                graph.add_edge((var, seqno - 1), (var, seqno))
    for alert in alerts:
        for var_v, var_w in itertools.permutations(variables, 2):
            graph.add_edge(
                (var_v, alert.seqno(var_v)), (var_w, alert.seqno(var_w) + 1)
            )
    return graph


def check_consistency_multi(
    alerts: Sequence[Alert],
    variables: Sequence[str],
) -> ConsistencyResult:
    """Exact multi-variable consistency check (historical or not).

    A witness ``U′ ⊑ UV`` may drop updates, so w.l.o.g. take U′ to contain
    exactly the updates *required* by the alerts' histories — dropping
    anything else only removes constraints.  A is then consistent iff

    1. **membership** is satisfiable per variable: no seqno is both
       required (in some alert's history) and required-missing (inside
       some alert's history span but not in it) — the Received/Missed
       condition of Theorem 7, applied per variable; and
    2. **ordering** is satisfiable: the precedence digraph over the
       required updates is acyclic.  Edges are (a) per-variable chains
       between consecutive required seqnos and (b), per alert and ordered
       variable pair (v, w), an edge from the alert's v-head to the first
       required w-update *newer* than its w-head — the Lemma-5
       requirement that, at trigger time, no newer w-update had arrived.

    With only required members kept, condition 1 also forces each alert's
    per-variable history to be exactly the adjacent run it claims, so the
    construction covers historical conditions as well; the test-suite
    cross-validates this checker against the exhaustive oracle.
    """
    if not alerts:
        return ConsistencyResult(True)

    required: dict[str, set[int]] = {var: set() for var in variables}
    missed: dict[str, set[int]] = {var: set() for var in variables}
    for alert in alerts:
        for var in variables:
            history = set(alert.histories.seqnos(var))
            gaps = spanning_set(history) - frozenset(history)
            required[var] |= history
            missed[var] |= gaps
    for var in variables:
        conflict = required[var] & missed[var]
        if conflict:
            seqno = min(conflict)
            return ConsistencyResult(
                False,
                conflict=(
                    f"update {seqno}{var} is required received by one alert "
                    "and required missed by another"
                ),
            )

    graph = nx.DiGraph()
    sorted_required = {var: sorted(required[var]) for var in variables}
    for var in variables:
        run = sorted_required[var]
        graph.add_nodes_from((var, s) for s in run)
        graph.add_edges_from(
            ((var, a), (var, b)) for a, b in zip(run, run[1:])
        )
    for alert in alerts:
        for var_v, var_w in itertools.permutations(variables, 2):
            head_v = alert.seqno(var_v)
            head_w = alert.seqno(var_w)
            successor = next(
                (s for s in sorted_required[var_w] if s > head_w), None
            )
            if successor is not None:
                graph.add_edge((var_v, head_v), (var_w, successor))
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return ConsistencyResult(
            True,
            witness_received=frozenset(
                (var, s) for var in variables for s in required[var]
            ),
        )
    rendered = " -> ".join(f"{s}{v}" for (v, s), _ in cycle)
    return ConsistencyResult(
        False, conflict=f"precedence cycle over updates: {rendered}"
    )


def _ordered_subsequences(updates: Sequence[Update]) -> Iterable[tuple[Update, ...]]:
    """All subsequences of an ordered per-variable update run."""
    for mask in range(1 << len(updates)):
        yield tuple(u for i, u in enumerate(updates) if mask & (1 << i))


def check_consistency_bruteforce(
    alerts: Sequence[Alert],
    condition: Condition,
    per_variable_updates: dict[str, Sequence[Update]],
    limit: int = 2_000_000,
) -> ConsistencyResult:
    """Exhaustive consistency oracle: search for an explicit witness U′.

    ``per_variable_updates`` holds, for each variable, the ordered union
    of updates received by all CEs (the building blocks of UV).  The
    search enumerates every per-variable subset and every interleaving of
    the chosen subsets, applying T to each candidate U′.  ``limit`` bounds
    the number of candidate sequences examined; exceeding it raises
    RuntimeError rather than silently returning a wrong verdict.
    """
    if not alerts:
        return ConsistencyResult(True, witness_sequence=())
    targets = alert_identity_set(alerts)
    examined = 0
    subset_choices = [
        list(_ordered_subsequences(list(per_variable_updates[var])))
        for var in per_variable_updates
    ]
    varnames = list(per_variable_updates)
    for chosen in itertools.product(*subset_choices):
        per_var = {var: list(subset) for var, subset in zip(varnames, chosen)}
        for candidate in interleavings(per_var):
            examined += 1
            if examined > limit:
                raise RuntimeError(
                    f"consistency brute-force exceeded limit={limit}; "
                    "use the constraint-based checkers for instances this size"
                )
            produced = alert_identity_set(apply_T(condition, candidate))
            if targets <= produced:
                return ConsistencyResult(
                    True, witness_sequence=tuple(candidate)
                )
    return ConsistencyResult(
        False, conflict=f"no U' among {examined} candidates explains A"
    )
