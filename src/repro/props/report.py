"""Per-run property evaluation and aggregation across trials.

:func:`evaluate_run` decides all three properties for one completed run of
a replicated system — given the condition, the per-CE received traces
(U1, U2, …) and the displayed alert sequence A — picking the right
checker for the condition's shape.  :class:`PropertyTally` aggregates the
verdicts over many randomized trials into the ✓/✗ cells of the paper's
tables ("✓" = no violation ever witnessed, "✗" = at least one violation,
with the first witness retained for replay).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.reference import combine_received, count_interleavings
from repro.core.update import Update
from repro.props.completeness import (
    CompletenessResult,
    check_completeness_multi,
    check_completeness_multi_enumerated,
    check_completeness_single,
)
from repro.props.consistency import (
    ConsistencyResult,
    check_consistency_multi,
    check_consistency_single,
)
from repro.props.orderedness import OrderednessResult, check_orderedness

__all__ = [
    "PropertyReport",
    "PropertyTally",
    "evaluate_run",
    "legacy_completeness_backend",
]

#: Above this many interleavings, the exhaustive multi-variable
#: completeness/consistency oracles are skipped (verdict None).
DEFAULT_INTERLEAVING_LIMIT = 200_000

_LEGACY_COMPLETENESS = False


@contextmanager
def legacy_completeness_backend():
    """Route multi-variable completeness through the enumeration oracle.

    A benchmarking/cross-validation hook: inside the context,
    :func:`evaluate_run` decides multi-variable completeness with
    :func:`~repro.props.completeness.check_completeness_multi_enumerated`
    (the pre-engine implementation) instead of the pruned DFS.  Verdicts
    are identical by construction; only the cost differs.
    """
    global _LEGACY_COMPLETENESS
    previous = _LEGACY_COMPLETENESS
    _LEGACY_COMPLETENESS = True
    try:
        yield
    finally:
        _LEGACY_COMPLETENESS = previous


@dataclass(frozen=True)
class PropertyReport:
    """Verdicts for one run.

    ``None`` = checker skipped (instance too big); a completeness result
    with ``undecided=True`` (state budget exhausted mid-search) is
    likewise reported as ``None`` in :attr:`summary` and skipped by
    :class:`PropertyTally` — an exhausted search is not a violation.
    """

    ordered: OrderednessResult
    complete: CompletenessResult | None
    consistent: ConsistencyResult | None
    #: Optional per-stage observability counters from a CountersTracer
    #: (``"stage/kind/node"`` → count), attached when the trial ran with
    #: ``TrialSpec.collect_counters``.  Excluded from equality so traced
    #: and untraced reports of the same run still compare equal.
    counters: dict[str, int] | None = field(default=None, compare=False)
    #: Optional ground-truth delivery stats (``expected`` / ``delivered``
    #: / ``extraneous``) from :func:`repro.analysis.metrics.delivery_stats`,
    #: attached when the trial ran with ``TrialSpec.collect_delivery`` —
    #: what the chaos sweeps aggregate into missed-alert fractions.
    #: Excluded from equality like ``counters``.
    delivery: dict[str, int] | None = field(default=None, compare=False)
    #: Optional churn context from a membership-enabled run (the
    #: JSON-safe digest of :func:`repro.membership.churn_summary`),
    #: letting aggregators distinguish violations that happened while
    #: the replica set was below quorum from steady-state ones.
    #: Excluded from equality like ``counters``.
    churn: dict | None = field(default=None, compare=False)
    #: Optional event-keyed alert quality (the JSON-safe digest of
    #: :func:`repro.quality.alert_quality`), attached when the trial ran
    #: with ``TrialSpec.collect_quality`` — what quality sweeps fold into
    #: precision/recall/latency cells.  Excluded from equality like
    #: ``counters``.
    quality: dict | None = field(default=None, compare=False)

    @property
    def completeness_decided(self) -> bool:
        """True iff the completeness checker ran to a definite verdict."""
        return self.complete is not None and not self.complete.undecided

    @property
    def summary(self) -> dict[str, bool | None]:
        return {
            "ordered": bool(self.ordered),
            "complete": (
                bool(self.complete) if self.completeness_decided else None
            ),
            "consistent": None if self.consistent is None else bool(self.consistent),
        }

    @property
    def churn_verdicts(self) -> dict[str, str]:
        """Per-property verdicts classified against the churn context:
        ``ok`` / ``undecided`` / ``violated-degraded`` (the run spent
        time below quorum) / ``violated-steady``."""
        from repro.membership.verdicts import classify_verdicts

        return classify_verdicts(self.summary, self.churn)


def evaluate_run(
    condition: Condition,
    traces: Sequence[Sequence[Update]],
    displayed: Sequence[Alert],
    interleaving_limit: int = DEFAULT_INTERLEAVING_LIMIT,
) -> PropertyReport:
    """Decide orderedness, completeness and consistency for one run.

    ``traces`` are the update sequences actually received by each CE;
    ``displayed`` is the AD's final output A.
    """
    variables = condition.variables
    ordered = check_orderedness(displayed, variables)
    per_variable = combine_received(traces, variables)

    if len(variables) == 1:
        var = variables[0]
        complete: CompletenessResult | None = check_completeness_single(
            displayed, condition, per_variable[var]
        )
        consistent: ConsistencyResult | None = check_consistency_single(
            displayed, var
        )
        return PropertyReport(ordered, complete, consistent)

    # Multi-variable: exact completeness only when tractable.  The skip
    # policy is still phrased in interleaving counts (the historical cost
    # model, and what the golden fixtures pin); under it the pruned DFS
    # explores far fewer states than ``interleaving_limit``, so undecided
    # results are effectively impossible here — but they are propagated
    # faithfully if a caller passes an aggressive limit.
    n_interleavings = count_interleavings(per_variable)
    if n_interleavings <= interleaving_limit:
        checker = (
            check_completeness_multi_enumerated
            if _LEGACY_COMPLETENESS
            else check_completeness_multi
        )
        complete = checker(
            displayed, condition, per_variable, limit=interleaving_limit
        )
    else:
        complete = None

    # The member-based constraint checker is exact for historical and
    # non-historical multi-variable conditions alike (cross-validated
    # against check_consistency_bruteforce in the test-suite).
    consistent = check_consistency_multi(displayed, variables)
    return PropertyReport(ordered, complete, consistent)


@dataclass
class PropertyTally:
    """Aggregate verdicts over many runs of one (scenario, algorithm) cell."""

    runs: int = 0
    ordered_violations: int = 0
    completeness_violations: int = 0
    consistency_violations: int = 0
    completeness_checked: int = 0
    consistency_checked: int = 0
    #: Runs whose completeness search exhausted its budget (undecided).
    completeness_undecided: int = 0
    first_unordered_seed: int | None = None
    first_incomplete_seed: int | None = None
    first_inconsistent_seed: int | None = None
    #: Retained first-violation details for the experiment log.
    witnesses: dict[str, str] = field(default_factory=dict)
    #: Summed observability counters (``"stage/kind/node"`` → count) over
    #: every added report that carried them; empty when tracing was off.
    counters: dict[str, int] = field(default_factory=dict)
    #: Churn context (membership-enabled runs only): how many added runs
    #: spent any time below quorum, and how the violations split between
    #: degraded intervals and steady state.  A violation in a run that
    #: was ever below quorum counts as degraded — run-level granularity,
    #: matching :func:`repro.membership.classify_verdicts`.
    degraded_runs: int = 0
    violations_degraded: int = 0
    violations_steady: int = 0

    def add(self, report: PropertyReport, seed: int | None = None) -> None:
        self.runs += 1
        if report.counters:
            for key, count in report.counters.items():
                self.counters[key] = self.counters.get(key, 0) + count
        if report.churn is not None:
            degraded = bool(report.churn.get("below_quorum"))
            if degraded:
                self.degraded_runs += 1
            violated = sum(
                1 for verdict in report.summary.values() if verdict is False
            )
            if degraded:
                self.violations_degraded += violated
            else:
                self.violations_steady += violated
        if not report.ordered:
            self.ordered_violations += 1
            if self.first_unordered_seed is None:
                self.first_unordered_seed = seed
                self.witnesses.setdefault(
                    "ordered",
                    f"inversion in {report.ordered.violating_variable} at "
                    f"alert index {report.ordered.violation_index}",
                )
        if report.complete is not None and report.complete.undecided:
            self.completeness_undecided += 1
        elif report.complete is not None:
            self.completeness_checked += 1
            if not report.complete:
                self.completeness_violations += 1
                if self.first_incomplete_seed is None:
                    self.first_incomplete_seed = seed
                    self.witnesses.setdefault(
                        "complete",
                        f"missing={len(report.complete.missing)} "
                        f"extraneous={len(report.complete.extraneous)}",
                    )
        if report.consistent is not None:
            self.consistency_checked += 1
            if not report.consistent:
                self.consistency_violations += 1
                if self.first_inconsistent_seed is None:
                    self.first_inconsistent_seed = seed
                    self.witnesses.setdefault(
                        "consistent", report.consistent.conflict or "conflict"
                    )

    @property
    def always_ordered(self) -> bool:
        return self.ordered_violations == 0

    @property
    def always_complete(self) -> bool | None:
        if self.completeness_checked == 0:
            return None
        return self.completeness_violations == 0

    @property
    def always_consistent(self) -> bool | None:
        if self.consistency_checked == 0:
            return None
        return self.consistency_violations == 0

    def cell(self) -> dict[str, bool | None]:
        """The (ordered, complete, consistent) table cell for this tally."""
        return {
            "ordered": self.always_ordered,
            "complete": self.always_complete,
            "consistent": self.always_consistent,
        }

    def stage_counters(self) -> dict[str, dict[str, int]]:
        """Aggregated counters as ``{stage: {kind: count}}`` over nodes."""
        summary: dict[str, dict[str, int]] = {}
        for key, count in sorted(self.counters.items()):
            stage, kind, _node = key.split("/", 2)
            summary.setdefault(stage, {})
            summary[stage][kind] = summary[stage].get(kind, 0) + count
        return summary
