"""Domination between AD algorithms (Section 4.1).

``G1 ≥ G2`` (G1 dominates G2) iff, given the same input into the AD —
the same interleaved arrival stream of alerts — G1 always produces a
supersequence of G2's output.  ``G1 > G2`` (strict) iff additionally some
input makes G1's output a strict supersequence.  A dominant algorithm
filters fewer alerts: "all else being the same, if G1 > G2, G1 is
considered a better algorithm".

These are ∀-statements over inputs, so we *test* them empirically: replay
many arrival streams through fresh copies of both algorithms and check
the supersequence relation per stream, collecting strictness witnesses.
A single violated stream refutes domination with a concrete
counterexample; the paper's theorems (6 and 8) predict zero violations
for (AD-1, AD-2) and (AD-1, AD-3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert
from repro.core.sequences import is_strict_supersequence, is_subsequence
from repro.displayers.base import ADAlgorithm, run_ad

__all__ = ["DominationResult", "dominates_on", "test_domination"]


@dataclass
class DominationResult:
    """Outcome of replaying a set of arrival streams through G1 and G2."""

    g1_name: str
    g2_name: str
    streams: int = 0
    #: Streams where G2's output was NOT a subsequence of G1's.
    violations: int = 0
    #: Streams where G1's output was a strict supersequence of G2's.
    strict_witnesses: int = 0
    #: First violating stream, for replay/debugging.
    first_violation: tuple[Alert, ...] | None = field(default=None, repr=False)
    #: First strictness witness stream.
    first_strict_witness: tuple[Alert, ...] | None = field(default=None, repr=False)

    @property
    def dominates(self) -> bool:
        """G1 ≥ G2 on every replayed stream."""
        return self.violations == 0

    @property
    def strictly_dominates(self) -> bool:
        """G1 ≥ G2 everywhere and > G2 somewhere (within the tested streams)."""
        return self.dominates and self.strict_witnesses > 0


def dominates_on(
    g1: ADAlgorithm, g2: ADAlgorithm, arrivals: Sequence[Alert]
) -> tuple[bool, bool]:
    """(G2's output ⊑ G1's output, strictly?) on one arrival stream.

    Fresh copies of both algorithms are used; the passed instances are not
    mutated.
    """
    out1 = run_ad(g1, arrivals)
    out2 = run_ad(g2, arrivals)
    holds = is_subsequence(out2, out1)
    strict = holds and is_strict_supersequence(out1, out2)
    return holds, strict


def test_domination(
    g1: ADAlgorithm,
    g2: ADAlgorithm,
    arrival_streams: Iterable[Sequence[Alert]],
) -> DominationResult:
    """Replay every stream; tally violations and strictness witnesses."""
    result = DominationResult(g1.name, g2.name)
    for stream in arrival_streams:
        stream = tuple(stream)
        result.streams += 1
        holds, strict = dominates_on(g1, g2, stream)
        if not holds:
            result.violations += 1
            if result.first_violation is None:
                result.first_violation = stream
        elif strict:
            result.strict_witnesses += 1
            if result.first_strict_witness is None:
                result.first_strict_witness = stream
    return result
