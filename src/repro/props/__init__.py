"""Property checkers: orderedness, completeness, consistency, domination,
maximality (Sections 3.1, 4.1, Appendix C)."""

from repro.props.completeness import (
    CompletenessResult,
    check_completeness,
    check_completeness_multi,
    check_completeness_multi_enumerated,
    check_completeness_single,
)
from repro.props.consistency import (
    ConsistencyResult,
    build_precedence_graph,
    check_consistency_bruteforce,
    check_consistency_multi,
    check_consistency_single,
)
from repro.props.domination import DominationResult, dominates_on, test_domination
from repro.props.exhaustive import (
    ExhaustiveReport,
    PropertyClassification,
    classify_trace_pair,
    count_merge_orders,
    iter_merge_orders,
)
from repro.props.maximality import (
    MaximalityResult,
    greedy_maximality_probe,
    probe_streams,
)
from repro.props.orderedness import (
    OrderednessResult,
    check_orderedness,
    is_alert_sequence_ordered,
)
from repro.props.report import (
    PropertyReport,
    PropertyTally,
    evaluate_run,
    legacy_completeness_backend,
)
from repro.props.statespace import (
    VerificationResult,
    degree2_alphabet,
    two_variable_alphabet,
    verify_invariant_exhaustively,
)

__all__ = [
    "CompletenessResult",
    "ConsistencyResult",
    "DominationResult",
    "ExhaustiveReport",
    "PropertyClassification",
    "classify_trace_pair",
    "count_merge_orders",
    "iter_merge_orders",
    "MaximalityResult",
    "OrderednessResult",
    "PropertyReport",
    "PropertyTally",
    "VerificationResult",
    "degree2_alphabet",
    "two_variable_alphabet",
    "verify_invariant_exhaustively",
    "build_precedence_graph",
    "check_completeness",
    "check_completeness_multi",
    "check_completeness_multi_enumerated",
    "check_completeness_single",
    "legacy_completeness_backend",
    "check_consistency_bruteforce",
    "check_consistency_multi",
    "check_consistency_single",
    "check_orderedness",
    "dominates_on",
    "evaluate_run",
    "greedy_maximality_probe",
    "is_alert_sequence_ordered",
    "probe_streams",
    "test_domination",
]
