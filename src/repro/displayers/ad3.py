"""Algorithm AD-3 — consistency filter for single-variable systems (Fig A-3).

    Received = {};  Missed = {}
    On receiving new alert a:
        if Conflicts(a.history): discard a
        else: UpdateState(a.history); add a to output sequence A

    Conflicts(H):
        any s in Hx with s in Missed            -> True
        any s in SpanningSet(Hx) \\ Hx with s in Received -> True
        otherwise False

    UpdateState(H):
        Received += Hx
        Missed   += SpanningSet(Hx) - Hx

The AD refuses to display two alerts whose histories place some update in
a "conflicting state" — required received by one, required missed by the
other.  The displayed sequence is then explainable by a single input
``U′ = Received ⊑ U1 ⊔ U2``, which is exactly the consistency property.
Theorem 7 proves AD-3 maximally consistent; Theorem 8 shows the cost
(AD-1 > AD-3).

Implementation note: the paper's pseudo-code for AD-3 does not test for
*exact duplicates* — a duplicate's history re-asserts facts already in
``Received`` and never conflicts.  Taken literally it would therefore
display duplicates that AD-1 removes, contradicting the proof of
Theorem 8 ("AD-3 filters out at least all the alerts filtered by AD-1").
We follow the theorem: AD-3 additionally performs AD-1's duplicate
suppression.  This is also what Section 2 expects of any AD ("the AD may
need to suppress duplicate alerts").

The per-variable machinery lives in :class:`ConflictTracker` so that AD-6
can reuse it for the multi-variable extension of Figure A-6.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.core.sequences import spanning_set
from repro.displayers.base import ADAlgorithm

__all__ = ["AD3", "ConflictTracker"]


class ConflictTracker:
    """Received/Missed bookkeeping for one variable."""

    def __init__(self, varname: str) -> None:
        self.varname = varname
        self.received: set[int] = set()
        self.missed: set[int] = set()

    def conflicts(self, alert: Alert) -> bool:
        """Would displaying ``alert`` put some seqno in a conflicting state?"""
        if self.varname not in alert.histories:
            return False
        history = set(alert.histories.seqnos(self.varname))
        if history & self.missed:
            return True
        gaps = spanning_set(history) - frozenset(history)
        if gaps & self.received:
            return True
        return False

    def record(self, alert: Alert) -> None:
        """Fold an accepted alert's history into Received/Missed."""
        if self.varname not in alert.histories:
            return
        history = set(alert.histories.seqnos(self.varname))
        self.received |= history
        self.missed |= spanning_set(history) - frozenset(history)

    def snapshot(self) -> tuple[frozenset[int], frozenset[int]]:
        """(Received, Missed) — the AD's U′ witness components."""
        return frozenset(self.received), frozenset(self.missed)


class AD3(ADAlgorithm):
    """Received/Missed conflict filtering plus duplicate suppression."""

    name = "AD-3"

    def __init__(self, varname: str = "x") -> None:
        super().__init__()
        self.varname = varname
        self._tracker = ConflictTracker(varname)
        self._seen: set[tuple] = set()

    def _fresh_args(self) -> tuple:
        return (self.varname,)

    @property
    def received_set(self) -> frozenset[int]:
        """The AD's Received set — the witness U′ for consistency proofs."""
        return frozenset(self._tracker.received)

    @property
    def missed_set(self) -> frozenset[int]:
        return frozenset(self._tracker.missed)

    def _accept(self, alert: Alert) -> bool:
        if alert.identity() in self._seen:
            return False
        return not self._tracker.conflicts(alert)

    def _record(self, alert: Alert) -> None:
        self._seen.add(alert.identity())
        self._tracker.record(alert)

    def rejection_reason(self, alert: Alert) -> str:
        if alert.identity() in self._seen:
            return f"duplicate: history set of {alert.shorthand()} already displayed"
        return (
            f"history conflict in {self.varname}: Received/Missed state "
            f"contradicts {alert.shorthand()}"
        )
