"""Algorithm AD-4 — orderedness *and* consistency, single variable (Fig A-4).

"AD-4 removes any alert that would be removed by either Algorithm AD-2 or
AD-3."  Both constituent filters are consulted on every arrival; their
state advances only when the alert is actually displayed, so each
constituent sees exactly the displayed sequence — which is what makes the
combination maximal (Theorem 9).
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.base import ADAlgorithm

__all__ = ["AD4"]


class AD4(ADAlgorithm):
    """Conjunction of AD-2 (orderedness) and AD-3 (consistency)."""

    name = "AD-4"

    def __init__(self, varname: str = "x") -> None:
        super().__init__()
        self.varname = varname
        self._ad2 = AD2(varname)
        self._ad3 = AD3(varname)

    def _fresh_args(self) -> tuple:
        return (self.varname,)

    @property
    def received_set(self) -> frozenset[int]:
        return self._ad3.received_set

    @property
    def missed_set(self) -> frozenset[int]:
        return self._ad3.missed_set

    def _accept(self, alert: Alert) -> bool:
        return self._ad2._accept(alert) and self._ad3._accept(alert)

    def _record(self, alert: Alert) -> None:
        self._ad2._record(alert)
        self._ad3._record(alert)

    def rejection_reason(self, alert: Alert) -> str:
        if not self._ad2._accept(alert):
            return self._ad2.rejection_reason(alert)
        return self._ad3.rejection_reason(alert)
