"""The §4.2 "delayed displaying" alternative, implemented and measurable.

Instead of discarding out-of-order alerts (AD-2), "the AD could choose to
hold off displaying an alert until all its predecessors have been
received first. ... the AD could preset a timeout value t: at most t time
after it receives an alert a, it must display a even though a's
predecessors might not have all been received."  The paper dismisses the
approach because "unless system delays are bounded, orderedness is no
longer guaranteed" — but never quantifies the tradeoff.  This module
does.

:class:`DelayedDisplayAD` buffers arriving alerts and releases them in
sequence-number order; an alert is forcibly displayed when its timeout
expires.  Consequences, exactly as the paper predicts:

* nothing is ever *dropped* for ordering reasons (only exact duplicates),
  so strictly more alerts reach the user than under AD-2;
* displayed order is usually sorted, but a straggler arriving more than
  ``timeout`` after a newer alert was force-displayed causes an inversion;
* every displayed alert pays up to ``timeout`` of extra latency.

``benchmarks/bench_delayed.py`` sweeps the timeout against AD-2.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.alert import Alert
from repro.simulation.kernel import Kernel

if TYPE_CHECKING:  # avoid a displayers <-> components import cycle
    from repro.components.system import MonitoringSystem

__all__ = ["DelayedDisplayAD", "attach_delayed_ad"]


class DelayedDisplayAD:
    """Buffer-and-release Alert Displayer with a display timeout.

    Not an :class:`~repro.displayers.base.ADAlgorithm`: its decisions
    depend on *time*, so it lives on the kernel.  Alerts are released in
    seqno order whenever possible; each alert is displayed no later than
    ``timeout`` after its arrival.

    Parameters
    ----------
    kernel:
        The simulation kernel (for timeouts and timestamps).
    varname:
        The condition's (single) variable, whose ``a.seqno.x`` orders
        alerts.
    timeout:
        Maximum extra latency the AD may add to any alert.  ``0`` means
        display immediately in arrival order (AD-1-like);
        ``float("inf")`` means wait forever (the paper's "indefinite
        delays" problem — only ever releases in order).
    """

    def __init__(self, kernel: Kernel, varname: str, timeout: float) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self.kernel = kernel
        self.varname = varname
        self.timeout = timeout
        self._counter = itertools.count()
        #: Buffered alerts: list of (seqno, tie, deadline, alert).
        self._buffer: list[tuple[int, int, float, Alert]] = []
        self._seen: set[tuple] = set()
        self._displayed: list[Alert] = []
        self._display_times: list[float] = []
        self._arrival_times: dict[int, float] = {}
        self._arrivals = 0

    # -- inspection ----------------------------------------------------------
    @property
    def displayed(self) -> tuple[Alert, ...]:
        return tuple(self._displayed)

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def duplicates_dropped(self) -> int:
        return self._arrivals - len(self._displayed) - len(self._buffer)

    def mean_added_latency(self) -> float:
        """Mean (display time − arrival time) over displayed alerts."""
        if not self._displayed:
            return 0.0
        total = 0.0
        for alert, shown_at in zip(self._displayed, self._display_times):
            total += shown_at - self._arrival_times[id(alert)]
        return total / len(self._displayed)

    # -- operation -----------------------------------------------------------
    def receive(self, message) -> None:
        if not isinstance(message, Alert):
            raise TypeError(f"expected an Alert, got {type(message)!r}")
        self._arrivals += 1
        if message.identity() in self._seen:
            return  # duplicate suppression, as every AD must do
        self._seen.add(message.identity())
        self._arrival_times[id(message)] = self.kernel.now
        deadline = self.kernel.now + self.timeout
        self._buffer.append(
            (message.seqno(self.varname), next(self._counter), deadline, message)
        )
        self._buffer.sort()
        self._release_ready()
        if self.timeout != float("inf"):
            self.kernel.schedule(
                self.timeout, self._on_deadline, note="delayed-AD timeout"
            )

    def _on_deadline(self) -> None:
        now = self.kernel.now
        # Force out every alert whose deadline has passed — and, to keep
        # the output as sorted as possible, everything buffered with a
        # smaller seqno goes out first (in order).
        while self._buffer:
            expired = any(deadline <= now for _, _, deadline, _ in self._buffer)
            if not expired:
                break
            head = self._buffer[0]
            if head[2] <= now:
                self._display(self._buffer.pop(0)[3])
                continue
            # Head not expired, but something deeper is: release the head
            # early (it has the smallest seqno) to preserve order.
            self._display(self._buffer.pop(0)[3])
        self._release_ready()

    def _release_ready(self) -> None:
        """Release buffered alerts that cannot be pre-empted.

        An alert whose seqno continues the displayed prefix contiguously
        (last displayed seqno + 1) can never be preceded by a missing
        predecessor, so it is released immediately; this keeps latency
        near zero on gap-free streams.
        """
        while self._buffer:
            seqno = self._buffer[0][0]
            last = (
                self._displayed[-1].seqno(self.varname)
                if self._displayed
                else 0
            )
            if seqno == last + 1:
                self._display(self._buffer.pop(0)[3])
            else:
                break

    def _display(self, alert: Alert) -> None:
        self._displayed.append(alert)
        self._display_times.append(self.kernel.now)

    def flush(self) -> None:
        """Display everything still buffered, in seqno order (end of run)."""
        while self._buffer:
            self._display(self._buffer.pop(0)[3])


def attach_delayed_ad(
    system: "MonitoringSystem", timeout: float
) -> DelayedDisplayAD:
    """Replace a built system's AD with a delayed-display AD.

    The system must be single-variable and not yet run.  Back links are
    rewired to the delayed AD; the original ADNode sees nothing.
    """
    variables = system.condition.variables
    if len(variables) != 1:
        raise ValueError("delayed display is defined for single-variable systems")
    delayed = DelayedDisplayAD(system.kernel, variables[0], timeout)
    for ce in system.ces:
        if ce.back_link is not None:
            ce.back_link.receiver = delayed.receive
    return delayed
