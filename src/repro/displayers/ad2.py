"""Algorithm AD-2 — orderedness filter for single-variable systems (Fig A-2).

    last = -1
    On receiving new alert a:
        if a.seqno.x <= last: discard a
        else: last = a.seqno.x; add a to output sequence A

AD-2 discards any alert that arrives out of (or in duplicate) sequence
order with respect to the condition's single variable, so its output is
trivially ordered.  Theorem 5 proves AD-2 is *maximally* ordered: no
orderedness-guaranteeing algorithm strictly dominates it.  The price is
completeness (Theorem 6, Example 2): in-order-generated alerts that arrive
late are lost.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm

__all__ = ["AD2"]


class AD2(ADAlgorithm):
    """Drop alerts whose seqno does not strictly increase."""

    name = "AD-2"

    def __init__(self, varname: str = "x") -> None:
        super().__init__()
        self.varname = varname
        self._last = -1

    def _fresh_args(self) -> tuple:
        return (self.varname,)

    def _accept(self, alert: Alert) -> bool:
        return alert.seqno(self.varname) > self._last

    def _record(self, alert: Alert) -> None:
        self._last = alert.seqno(self.varname)

    def rejection_reason(self, alert: Alert) -> str:
        return (
            f"seqno regression: a.seqno.{self.varname}="
            f"{alert.seqno(self.varname)} <= last displayed {self._last}"
        )
