"""Alert Displayer filtering algorithms AD-1 … AD-6 (Section 4, Appendix A)."""

from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3, ConflictTracker
from repro.displayers.ad4 import AD4
from repro.displayers.ad5 import AD5
from repro.displayers.ad6 import AD6
from repro.displayers.adaptive import AdaptiveAD
from repro.displayers.base import ADAlgorithm, run_ad
from repro.displayers.delayed import DelayedDisplayAD, attach_delayed_ad
from repro.displayers import pseudocode
from repro.displayers.registry import (
    AlgorithmInfo,
    PassThrough,
    algorithm_info,
    algorithm_names,
    make_ad,
)

__all__ = [
    "AD1",
    "AD2",
    "AD3",
    "AD4",
    "AD5",
    "AD6",
    "ADAlgorithm",
    "AdaptiveAD",
    "AlgorithmInfo",
    "ConflictTracker",
    "DelayedDisplayAD",
    "attach_delayed_ad",
    "PassThrough",
    "algorithm_info",
    "algorithm_names",
    "make_ad",
    "pseudocode",
    "run_ad",
]
