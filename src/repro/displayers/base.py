"""Alert Displayer filtering algorithms — the common interface.

The AD collects the alert streams from all CEs (already merged by arrival
order — the function ``M`` of Appendix B) and decides, alert by alert,
whether to display or discard each one.  Every algorithm in the paper is
*online* and *deterministic given the arrival order*: state is updated as
alerts are accepted, and the output sequence ``A`` is the subsequence of
arrivals that passed the filter.

Subclasses implement :meth:`_accept`; the base class keeps the displayed
output, the discarded alerts (useful for domination/maximality analysis),
and enforces the offer/record discipline.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alert import Alert

__all__ = ["ADAlgorithm", "run_ad"]


class ADAlgorithm:
    """Base class for AD filtering algorithms AD-1 … AD-6.

    Usage::

        ad = AD2("x")
        for alert in arrival_stream:
            ad.offer(alert)
        displayed = ad.output      # the final alert sequence A
    """

    #: Short name used in tables and the registry ("AD-1", ...).
    name: str = "AD-?"

    def __init__(self) -> None:
        self._output: list[Alert] = []
        self._discarded: list[Alert] = []

    @property
    def output(self) -> tuple[Alert, ...]:
        """The displayed alert sequence A (so far)."""
        return tuple(self._output)

    @property
    def discarded(self) -> tuple[Alert, ...]:
        """Alerts filtered out (so far), in arrival order."""
        return tuple(self._discarded)

    def offer(self, alert: Alert) -> bool:
        """Process one arriving alert; return True iff it was displayed."""
        if self._accept(alert):
            self._record(alert)
            self._output.append(alert)
            return True
        self._discarded.append(alert)
        return False

    def offer_all(self, alerts: Iterable[Alert]) -> list[Alert]:
        """Process a whole arrival stream; return the displayed alerts."""
        return [a for a in alerts if self.offer(a)]

    def rejection_reason(self, alert: Alert) -> str:
        """Explain why ``alert`` would be rejected *in the current state*.

        Called by the observability layer after :meth:`offer` returned
        False; a rejected offer leaves state untouched, so the explanation
        is computed against exactly the state that made the decision.
        Must not mutate state.  Subclasses override with algorithm-specific
        reasons; the default names the concrete cause it can deduce from
        the base-class state — an exact re-arrival of a displayed alert is
        reported as a duplicate, anything else as a predicate rejection of
        that specific alert.  Reason strings are load-bearing: the
        fuzzer's coverage signatures and the adaptive displayer's policy
        counters both classify on them.
        """
        if any(alert.identity() == shown.identity() for shown in self._output):
            return (
                f"duplicate: history set of {alert.shorthand()} already displayed"
            )
        return (
            f"predicate rejection: {self.name} state excludes {alert.shorthand()}"
        )

    # -- to be implemented by concrete algorithms ---------------------------
    def _accept(self, alert: Alert) -> bool:
        """Decide whether ``alert`` may be displayed; must not mutate state."""
        raise NotImplementedError

    def _record(self, alert: Alert) -> None:
        """Update internal state after ``alert`` has been accepted."""
        # Default: no state beyond the output sequence.

    def fresh(self) -> "ADAlgorithm":
        """A new instance of the same algorithm with pristine state.

        Used by the domination and maximality analyses, which replay the
        same arrival stream through multiple algorithm copies.
        """
        return type(self)(*self._fresh_args())

    def _fresh_args(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.name} displayed={len(self._output)} "
            f"discarded={len(self._discarded)}>"
        )


def run_ad(algorithm: ADAlgorithm, arrivals: Iterable[Alert]) -> list[Alert]:
    """Run an arrival stream through a *fresh* copy of ``algorithm``.

    Returns the displayed sequence A.  The passed instance is not mutated.
    """
    copy = algorithm.fresh()
    return copy.offer_all(arrivals)
