"""Name → AD algorithm factory, used by scenarios, benches and examples.

``make_ad("AD-4", condition)`` builds the right algorithm instance for a
condition: single-variable algorithms receive the condition's variable,
multi-variable ones its full variable set.  The registry also records
which properties each algorithm is *claimed* (by the paper) to guarantee,
which the table benchmarks compare against measurements.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.condition import Condition
from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.ad4 import AD4
from repro.displayers.ad5 import AD5
from repro.displayers.ad6 import AD6
from repro.displayers.adaptive import AdaptiveAD
from repro.displayers.base import ADAlgorithm

__all__ = ["make_ad", "algorithm_names", "AlgorithmInfo", "algorithm_info", "PassThrough"]


class PassThrough(ADAlgorithm):
    """No filtering at all — the AD of the non-replicated system N.

    Also useful as the worst-case baseline: it trivially dominates every
    algorithm but guarantees nothing, not even duplicate suppression.
    """

    name = "pass"

    def _accept(self, alert) -> bool:
        return True


@dataclass(frozen=True)
class AlgorithmInfo:
    """What the paper claims an algorithm guarantees, and where."""

    name: str
    multi_variable: bool
    guarantees_ordered: bool
    guarantees_consistent: bool
    paper_figure: str


_INFO = {
    "pass": AlgorithmInfo("pass", True, False, False, "Fig 2(b)"),
    "AD-1": AlgorithmInfo("AD-1", True, False, False, "Fig A-1"),
    "AD-2": AlgorithmInfo("AD-2", False, True, False, "Fig A-2"),
    "AD-3": AlgorithmInfo("AD-3", False, False, True, "Fig A-3"),
    "AD-4": AlgorithmInfo("AD-4", False, True, True, "Fig A-4"),
    "AD-5": AlgorithmInfo("AD-5", True, True, False, "Fig A-5"),
    "AD-6": AlgorithmInfo("AD-6", True, True, True, "Fig A-6"),
    # AD-7: runtime selection over the ladder above.  The recall guard
    # deliberately trades the formal guarantees for maximal event
    # detection, so it claims neither orderedness nor consistency.
    "adaptive": AlgorithmInfo("adaptive", True, False, False, "—"),
}


def algorithm_names() -> tuple[str, ...]:
    return tuple(_INFO)


def algorithm_info(name: str) -> AlgorithmInfo:
    try:
        return _INFO[name]
    except KeyError:
        raise KeyError(f"unknown AD algorithm {name!r}; known: {list(_INFO)}") from None


def make_ad(name: str, condition: Condition) -> ADAlgorithm:
    """Instantiate algorithm ``name`` configured for ``condition``.

    Single-variable algorithms (AD-2/3/4) require a single-variable
    condition; multi-variable algorithms accept any variable count.
    """
    variables = condition.variables
    if name == "pass":
        return PassThrough()
    if name == "AD-1":
        return AD1()
    if name in ("AD-2", "AD-3", "AD-4"):
        if len(variables) != 1:
            raise ValueError(
                f"{name} is a single-variable algorithm; condition "
                f"{condition.name!r} has variables {variables}"
            )
        cls = {"AD-2": AD2, "AD-3": AD3, "AD-4": AD4}[name]
        return cls(variables[0])
    if name == "AD-5":
        return AD5(variables)
    if name == "AD-6":
        return AD6(variables)
    if name == "adaptive":
        # Seed the policy from the condition name so different conditions
        # jitter their windows differently, yet every run of the same
        # condition — any kernel, any runtime — derives the same policy.
        return AdaptiveAD(
            variables, policy_seed=zlib.crc32(condition.name.encode())
        )
    raise KeyError(f"unknown AD algorithm {name!r}; known: {list(_INFO)}")
