"""Algorithm AD-6 — orderedness and consistency, multi-variable (Fig A-6).

"Algorithm AD-6 combines AD-5 with the multi-variable version of Algorithm
AD-3.  To extend Algorithm AD-3 to multi-variable systems, the AD keeps
two lists (Received and Missed) each for variable x and variable y."

We keep one :class:`~repro.displayers.ad3.ConflictTracker` per variable;
an alert conflicts if its history conflicts in *any* variable.  As with
AD-4, constituent state advances only for displayed alerts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alert import Alert
from repro.displayers.ad3 import ConflictTracker
from repro.displayers.ad5 import AD5
from repro.displayers.base import ADAlgorithm

__all__ = ["AD6"]


class AD6(ADAlgorithm):
    """Conjunction of AD-5 and the multi-variable AD-3."""

    name = "AD-6"

    def __init__(self, varnames: Iterable[str] = ("x", "y")) -> None:
        super().__init__()
        self.varnames = tuple(varnames)
        if not self.varnames:
            raise ValueError("AD-6 needs at least one variable")
        self._ad5 = AD5(self.varnames)
        self._trackers = {var: ConflictTracker(var) for var in self.varnames}

    def _fresh_args(self) -> tuple:
        return (self.varnames,)

    def received_set(self, varname: str) -> frozenset[int]:
        return frozenset(self._trackers[varname].received)

    def missed_set(self, varname: str) -> frozenset[int]:
        return frozenset(self._trackers[varname].missed)

    def _accept(self, alert: Alert) -> bool:
        if not self._ad5._accept(alert):
            return False
        return not any(t.conflicts(alert) for t in self._trackers.values())

    def _record(self, alert: Alert) -> None:
        self._ad5._record(alert)
        for tracker in self._trackers.values():
            tracker.record(alert)

    def rejection_reason(self, alert: Alert) -> str:
        if not self._ad5._accept(alert):
            return self._ad5.rejection_reason(alert)
        for var, tracker in self._trackers.items():
            if tracker.conflicts(alert):
                return (
                    f"history conflict in {var}: Received/Missed state "
                    f"contradicts {alert.shorthand()}"
                )
        # Reached only when called off-contract (the alert would in fact
        # be accepted); say so concretely rather than naming the algorithm.
        return f"no rejection: {self.name} would accept {alert.shorthand()}"
