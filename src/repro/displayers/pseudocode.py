"""Literal transcriptions of the paper's AD pseudo-code (Appendix A).

Each function here follows the corresponding figure line by line —
mutable state passed explicitly, the same variable names, no
clean-ups — so the production classes in :mod:`repro.displayers` can be
*differentially tested* against the paper's own text (see
``tests/unit/test_pseudocode_conformance.py``).

Known, deliberate divergence: Figure A-3's AD-3 does not test for exact
duplicates, which contradicts Theorem 8 (AD-1 ≥ AD-3 requires AD-3 to
filter everything AD-1 filters).  The production :class:`~repro.
displayers.ad3.AD3` follows the theorem; :func:`ad3_step` follows the
figure.  The conformance tests assert both facts: the implementations
agree on duplicate-free streams, and the literal pseudo-code breaks the
domination theorem on streams with duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.alert import Alert

__all__ = [
    "AD1State",
    "AD2State",
    "AD3State",
    "AD5State",
    "ad1_step",
    "ad2_step",
    "ad3_step",
    "ad5_step",
    "spanning_set",
]


def spanning_set(values: set[int]) -> set[int]:
    """Figure A-3's SpanningSet: consecutive ints between min and max."""
    if not values:
        return set()
    return set(range(min(values), max(values) + 1))


# -- Figure A-1: Algorithm AD-1 (Exact Duplicate Removal) ---------------------

@dataclass
class AD1State:
    """``P = {}  // the empty set``"""

    P: set = field(default_factory=set)


def ad1_step(state: AD1State, a: Alert) -> bool:
    """
    On receiving new alert a:
        if a is in P: discard a
        else: P = P + {a}; add a to output sequence A
    """
    if a in state.P:
        return False
    state.P = state.P | {a}
    return True


# -- Figure A-2: Algorithm AD-2 -------------------------------------------------

@dataclass
class AD2State:
    """``last = -1``"""

    last: int = -1


def ad2_step(state: AD2State, a: Alert, varname: str = "x") -> bool:
    """
    On receiving new alert a:
        if a.seqno.x <= last: discard a
        else: last = a.seqno.x; add a to output sequence A
    """
    if a.seqno(varname) <= state.last:
        return False
    state.last = a.seqno(varname)
    return True


# -- Figure A-3: Algorithm AD-3 -------------------------------------------------

@dataclass
class AD3State:
    """``Received = {};  Missed = {}``"""

    Received: set = field(default_factory=set)
    Missed: set = field(default_factory=set)


def _ad3_conflicts(state: AD3State, Hx: set[int]) -> bool:
    """
    Conflicts(H):
        foreach sequence number s in Hx:
            if (s in Missed) return True
        foreach s in SpanningSet(Hx):
            if (s not in Hx AND s in Received) return True
        return False
    """
    for s in Hx:
        if s in state.Missed:
            return True
    for s in spanning_set(Hx):
        if s not in Hx and s in state.Received:
            return True
    return False


def ad3_step(state: AD3State, a: Alert, varname: str = "x") -> bool:
    """
    On receiving new alert a:
        if Conflicts(a.history): discard a
        else: UpdateState(a.history); add a to output sequence A

    UpdateState(H):
        Received = Received + Hx
        Missed = Missed + (SpanningSet(Hx) - Hx)
    """
    Hx = set(a.histories.seqnos(varname))
    if _ad3_conflicts(state, Hx):
        return False
    state.Received = state.Received | Hx
    state.Missed = state.Missed | (spanning_set(Hx) - Hx)
    return True


# -- Figure A-5: Algorithm AD-5 -------------------------------------------------

@dataclass
class AD5State:
    """``lastx = -1;  lasty = -1``"""

    lastx: int = -1
    lasty: int = -1


def ad5_step(state: AD5State, a: Alert, var_x: str = "x", var_y: str = "y") -> bool:
    """
    Conflicts(a):
        if (a.seqno.x < lastx OR a.seqno.y < lasty) return True  // conflict
        if (a.seqno.x == lastx AND a.seqno.y == lasty) return True  // dup
        return False
    UpdateState(a): lastx = a.seqno.x; lasty = a.seqno.y
    """
    if a.seqno(var_x) < state.lastx or a.seqno(var_y) < state.lasty:
        return False
    if a.seqno(var_x) == state.lastx and a.seqno(var_y) == state.lasty:
        return False
    state.lastx = a.seqno(var_x)
    state.lasty = a.seqno(var_y)
    return True
