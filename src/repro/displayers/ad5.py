"""Algorithm AD-5 — orderedness filter for multi-variable systems (Fig A-5).

    lastx = -1;  lasty = -1
    On receiving new alert a:
        if Conflicts(a): discard a
        else: UpdateState(a); add a to output sequence A

    Conflicts(a):
        a.seqno.x < lastx OR a.seqno.y < lasty   -> True  (inversion)
        a.seqno.x == lastx AND a.seqno.y == lasty -> True  (duplicate)
        otherwise False

    UpdateState(a): lastx = a.seqno.x; lasty = a.seqno.y

The paper's pseudo-code assumes two variables but notes the algorithm
"can be easily extended" — this implementation handles any number: an
alert is discarded if its seqno regresses in *any* variable, or if it
equals the recorded seqno in *every* variable (duplicate).

Lemma 4 shows the output is ordered w.r.t. every variable; Lemma 5 shows
the system is additionally consistent unless the condition is historical
and aggressive; Lemma 6 shows it is never complete (non-trivially).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm

__all__ = ["AD5"]


class AD5(ADAlgorithm):
    """Per-variable monotone seqno filter for multi-variable conditions."""

    name = "AD-5"

    def __init__(self, varnames: Iterable[str] = ("x", "y")) -> None:
        super().__init__()
        self.varnames = tuple(varnames)
        if not self.varnames:
            raise ValueError("AD-5 needs at least one variable")
        self._last = {var: -1 for var in self.varnames}

    def _fresh_args(self) -> tuple:
        return (self.varnames,)

    def _accept(self, alert: Alert) -> bool:
        seqnos = {var: alert.seqno(var) for var in self.varnames}
        if any(seqnos[var] < self._last[var] for var in self.varnames):
            return False  # would invert the order of some variable
        if all(seqnos[var] == self._last[var] for var in self.varnames):
            return False  # duplicate of the last displayed alert
        return True

    def _record(self, alert: Alert) -> None:
        for var in self.varnames:
            self._last[var] = alert.seqno(var)

    def rejection_reason(self, alert: Alert) -> str:
        for var in self.varnames:
            if alert.seqno(var) < self._last[var]:
                return (
                    f"seqno inversion in {var}: a.seqno.{var}="
                    f"{alert.seqno(var)} < last displayed {self._last[var]}"
                )
        return "duplicate: seqnos equal last displayed alert in every variable"
