"""AD-7 — adaptive algorithm selection from observed rejection reasons.

The paper fixes one filtering algorithm per deployment; the adaptive-
monitoring literature (see PAPERS.md) closes the loop instead: watch the
monitor's own error signals and reconfigure at runtime.  ``AdaptiveAD``
does exactly that over the paper's own ladder of filters:

* single-variable conditions climb AD-1 → AD-2 → AD-3 → AD-4,
* multi-variable conditions climb AD-1 → AD-5 → AD-6,

escalating to a stricter constituent when a sliding window of offers
shows the current one rejecting nothing but exact duplicates (the
stream is clean — stronger guarantees are free), and backing off when
the *recall guard* keeps overriding it (the stricter filter is fighting
genuinely novel events, which happens under loss and faults).

Two invariants make the adaptive displayer safe and replayable:

**Recall guard.**  Every arrival is keyed by its head-seqno vector
(:func:`~repro.core.alert.alert_event_key` — the real-world event it
reports).  If the active constituent rejects an alert whose event key
has never been displayed, the guard displays it anyway.  AD-1 displays
the first arrival of every event key (a fresh key implies a fresh
identity), and no online filter can display an event that never
arrives, so the guard makes the adaptive displayer's detected-event set
*equal* to AD-1's — the maximum any algorithm achieves — at every loss
and fault intensity, by construction.  Exact duplicates (same identity)
are always suppressed, so the adaptive displayer also never does worse
than AD-1 on duplicate volume.

**Determinism.**  Decisions are a pure function of the constructor
arguments and the arrival order.  The seeded policy RNG only jitters
window boundaries (so switch points do not resonate with periodic
workloads) and is consumed at a deterministic rate — one draw per
window — which is what lets adaptive runs record→replay bit-identically
on both kernels and through every service runtime: they all present the
same merged arrival order.

Unlike AD-1…AD-6, the adaptive displayer updates policy state on
*rejected* offers too (the window counters are its sensor).  It
therefore overrides :meth:`offer` and caches the rejection reason the
deciding constituent produced, so the observability contract — the
reason reported for a rejection is the one computed by the state that
made the decision — still holds.
"""

from __future__ import annotations

from collections.abc import Iterable
from random import Random

from repro.core.alert import Alert, alert_event_key
from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.ad4 import AD4
from repro.displayers.ad5 import AD5
from repro.displayers.ad6 import AD6
from repro.displayers.base import ADAlgorithm

__all__ = ["AdaptiveAD", "DEFAULT_WINDOW"]

#: Nominal sliding-window length (offers per policy evaluation).
DEFAULT_WINDOW = 8

#: Window-boundary jitter drawn per window from the policy RNG.
_JITTER = (-2, -1, 0, 1, 2)

#: De-escalate when guard overrides exceed this fraction of the window.
GUARD_BACKOFF_FRACTION = 0.25


def _ladder(varnames: tuple[str, ...]) -> list[ADAlgorithm]:
    """Constituents in escalation order, least to most strict."""
    if len(varnames) == 1:
        var = varnames[0]
        return [AD1(), AD2(var), AD3(var), AD4(var)]
    return [AD1(), AD5(varnames), AD6(varnames)]


class AdaptiveAD(ADAlgorithm):
    """Sliding-window adaptive selection over the AD-1…AD-6 ladder."""

    name = "AD-7"

    def __init__(
        self,
        varnames: Iterable[str] = ("x",),
        policy_seed: int = 0,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__()
        self.varnames = tuple(varnames)
        if not self.varnames:
            raise ValueError("AdaptiveAD needs at least one variable")
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.policy_seed = policy_seed
        self.window = window
        self._ladder = _ladder(self.varnames)
        self._active = 0
        self._rng = Random(policy_seed)
        self._window_left = self._next_window_length()
        #: Reason-class counters for the current window.
        self._window_counts = {
            "display": 0,
            "duplicate": 0,
            "guard-override": 0,
            "filtered": 0,
        }
        #: Identities ever displayed (AD-1's duplicate suppression).
        self._seen: set[tuple] = set()
        #: Event keys ever displayed (the recall guard's memory).
        self._detected: set[tuple] = set()
        #: (offer_index, from_name, to_name) switch history.
        self._switches: list[tuple[int, str, str]] = []
        self._offers = 0
        self._last_rejection: tuple[Alert, str] | None = None

    # -- introspection -------------------------------------------------------
    @property
    def active_name(self) -> str:
        """The name of the constituent currently making decisions."""
        return self._ladder[self._active].name

    @property
    def ladder_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._ladder)

    @property
    def switch_log(self) -> tuple[tuple[int, str, str], ...]:
        return tuple(self._switches)

    def _fresh_args(self) -> tuple:
        return (self.varnames, self.policy_seed, self.window)

    # -- policy --------------------------------------------------------------
    def _next_window_length(self) -> int:
        return max(4, self.window + self._rng.choice(_JITTER))

    def _evaluate_window(self) -> None:
        counts = self._window_counts
        total = sum(counts.values())
        overrides = counts["guard-override"]
        if total and overrides > GUARD_BACKOFF_FRACTION * total:
            target = max(0, self._active - 1)
        elif overrides == 0:
            target = min(len(self._ladder) - 1, self._active + 1)
        else:
            target = self._active
        if target != self._active:
            self._switches.append(
                (self._offers, self.active_name, self._ladder[target].name)
            )
            self._active = target
        for key in counts:
            counts[key] = 0
        self._window_left = self._next_window_length()

    def _tick(self, outcome: str) -> None:
        self._window_counts[outcome] += 1
        self._window_left -= 1
        if self._window_left <= 0:
            self._evaluate_window()

    # -- the filter ----------------------------------------------------------
    def _display(self, alert: Alert, key: tuple) -> None:
        self._seen.add(alert.identity())
        self._detected.add(key)
        # Every constituent observes the whole displayed sequence (the
        # AD-4 composition discipline), so any rung is switch-ready.
        for constituent in self._ladder:
            constituent._record(alert)
        self._output.append(alert)

    def offer(self, alert: Alert) -> bool:
        self._offers += 1
        key = alert_event_key(alert, self.varnames)
        if alert.identity() in self._seen:
            reason = (
                f"duplicate: history set of {alert.shorthand()} "
                f"already displayed"
            )
            self._last_rejection = (alert, reason)
            self._discarded.append(alert)
            self._tick("duplicate")
            return False
        active = self._ladder[self._active]
        if active._accept(alert):
            self._display(alert, key)
            self._tick("display")
            return True
        if key not in self._detected:
            # Recall guard: a rejected but never-displayed event — show it.
            self._display(alert, key)
            self._tick("guard-override")
            return True
        reason = active.rejection_reason(alert)
        self._last_rejection = (alert, reason)
        self._discarded.append(alert)
        self._tick("filtered")
        return False

    def rejection_reason(self, alert: Alert) -> str:
        """The reason computed by the state that rejected ``alert``.

        Policy state advances on rejections, so (unlike the static
        algorithms) the post-offer state differs from the deciding one;
        the reason is cached at decision time instead of recomputed.
        """
        if self._last_rejection is not None and self._last_rejection[0] == alert:
            return self._last_rejection[1]
        if alert.identity() in self._seen:
            return (
                f"duplicate: history set of {alert.shorthand()} "
                f"already displayed"
            )
        return self._ladder[self._active].rejection_reason(alert)

    def _accept(self, alert: Alert) -> bool:  # pragma: no cover - bypassed
        raise NotImplementedError("AdaptiveAD decides inside offer()")
