"""Algorithm AD-1 — exact duplicate removal (Figure A-1).

    P = {}                      // the empty set
    On receiving new alert a:
        if a is in P: discard a
        else: P = P + {a}; add a to output sequence A

Two alerts are identical iff their history sets H are the same.  AD-1 is
the baseline algorithm of Section 3: it guarantees none of the three
properties on its own (Table 1) but dominates every other algorithm in
the paper (Theorems 6 and 8) — it filters the fewest alerts.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm

__all__ = ["AD1"]


class AD1(ADAlgorithm):
    """Exact duplicate removal."""

    name = "AD-1"

    def __init__(self) -> None:
        super().__init__()
        self._seen: set[tuple] = set()

    def _accept(self, alert: Alert) -> bool:
        return alert.identity() not in self._seen

    def _record(self, alert: Alert) -> None:
        self._seen.add(alert.identity())

    def rejection_reason(self, alert: Alert) -> str:
        return f"duplicate: history set of {alert.shorthand()} already displayed"
