"""Textual condition expressions.

Conditions can be written as plain text — handy for config files, CLIs
and tests — and parsed into the same AST the ``H`` DSL builds::

    parse_condition("c1", "H.x[0].value > 3000")
    parse_condition("c3", "H.x[0].value - H.x[-1].value > 200 "
                          "and H.x[0].seqno == H.x[-1].seqno + 1")
    parse_condition("cm", "abs(H.x[0].value - H.y[0].value) > 100")

The text is parsed with Python's ``ast`` module and *translated*, never
executed: only a whitelisted grammar is accepted — history references
``H.<var>[<int>]`` / ``H['<var>'][<int>]`` with ``.value``/``.seqno``
fields, numeric literals, arithmetic (+ − * /), unary minus, ``abs``,
comparisons, and ``and`` / ``or`` / ``not``.  Anything else (names,
calls, attributes outside the grammar) raises
:class:`ConditionSyntaxError` with the offending fragment, so a malformed
config fails loudly and nothing smuggles code into the evaluator.
"""

from __future__ import annotations

import ast

from repro.core.condition import ExpressionCondition
from repro.core.expressions import (
    Abs,
    And,
    BinOp,
    BoolExpr,
    Compare,
    Const,
    Expr,
    FieldRef,
    Neg,
    Not,
    Or,
)

__all__ = ["ConditionSyntaxError", "parse_expression", "parse_condition"]


class ConditionSyntaxError(ValueError):
    """The condition text falls outside the supported grammar."""


_ARITH_OPS = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}
_COMPARE_OPS = {
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


def _fail(node: ast.AST, message: str) -> ConditionSyntaxError:
    fragment = ast.unparse(node) if hasattr(ast, "unparse") else "<expr>"
    return ConditionSyntaxError(f"{message}: {fragment!r}")


def _translate_field_ref(node: ast.Attribute) -> FieldRef:
    """``H.<var>[<int>].value`` or ``H['<var>'][<int>].seqno``."""
    if node.attr not in ("value", "seqno"):
        raise _fail(node, "unknown update field (use .value or .seqno)")
    subscript = node.value
    if not isinstance(subscript, ast.Subscript):
        raise _fail(node, "expected H.<var>[<index>].<field>")
    index_node = subscript.slice
    index_expr = index_node
    # Accept plain ints and unary-minus ints.
    if isinstance(index_expr, ast.UnaryOp) and isinstance(index_expr.op, ast.USub):
        inner = index_expr.operand
        if not (isinstance(inner, ast.Constant) and isinstance(inner.value, int)):
            raise _fail(node, "history index must be an integer literal")
        index = -inner.value
    elif isinstance(index_expr, ast.Constant) and isinstance(index_expr.value, int):
        index = index_expr.value
    else:
        raise _fail(node, "history index must be an integer literal")

    target = subscript.value
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
            and target.value.id == "H":
        varname = target.attr
    elif (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id == "H"
        and isinstance(target.slice, ast.Constant)
        and isinstance(target.slice.value, str)
    ):
        varname = target.slice.value
    else:
        raise _fail(node, "expected H.<var> or H['<var>']")
    try:
        return FieldRef(varname, index, node.attr)
    except ValueError as error:
        raise ConditionSyntaxError(str(error)) from None


def _translate_numeric(node: ast.AST) -> Expr:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            raise _fail(node, "only numeric literals are allowed")
        return Const(float(node.value))
    if isinstance(node, ast.Attribute):
        return _translate_field_ref(node)
    if isinstance(node, ast.BinOp):
        op = _ARITH_OPS.get(type(node.op))
        if op is None:
            raise _fail(node, "unsupported arithmetic operator")
        return BinOp(op, _translate_numeric(node.left), _translate_numeric(node.right))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        # Fold negation of constants into constants (so "-5" — and nested
        # shapes like "-(-5)" — round-trip as literals rather than Neg
        # nodes); keep Neg for everything else.  Folding the *translated*
        # operand rather than the syntactic literal makes one parse/render
        # round a normalisation fixpoint.
        operand = _translate_numeric(node.operand)
        if isinstance(operand, Const):
            return Const(-operand.value)
        return Neg(operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "abs"
        and len(node.args) == 1
        and not node.keywords
    ):
        return Abs(_translate_numeric(node.args[0]))
    raise _fail(node, "unsupported numeric expression")


def _translate_boolean(node: ast.AST) -> BoolExpr:
    if isinstance(node, ast.BoolOp):
        parts = [_translate_boolean(value) for value in node.values]
        combined = parts[0]
        for part in parts[1:]:
            combined = (
                And(combined, part)
                if isinstance(node.op, ast.And)
                else Or(combined, part)
            )
        return combined
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return Not(_translate_boolean(node.operand))
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise _fail(node, "chained comparisons are not supported")
        op = _COMPARE_OPS.get(type(node.ops[0]))
        if op is None:
            raise _fail(node, "unsupported comparison operator")
        return Compare(
            op,
            _translate_numeric(node.left),
            _translate_numeric(node.comparators[0]),
        )
    raise _fail(node, "condition must be a boolean expression")


def parse_expression(text: str) -> BoolExpr:
    """Parse condition text into a boolean expression AST."""
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as error:
        raise ConditionSyntaxError(f"invalid syntax: {error}") from None
    return _translate_boolean(tree.body)


def parse_condition(
    name: str, text: str, conservative: bool = False
) -> ExpressionCondition:
    """Parse condition text into a ready-to-monitor condition."""
    return ExpressionCondition(name, parse_expression(text), conservative)
