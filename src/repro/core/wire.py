"""Alert wire encodings (§2).

The paper notes that although an alert conceptually carries all update
histories, "in practice this is often not necessary.  ... some systems do
not need this information at all.  Others need only the update sequence
numbers contained in the histories.  Still others only use these sequence
numbers in a simple equality test, in which case it may be sufficient to
send just a checksum of the histories."

This module makes that concrete:

* four encodings — FULL, SEQNOS, HEADS, CHECKSUM — with byte-size
  accounting (:func:`encode_alert`);
* the *minimum* encoding each AD algorithm needs
  (:func:`minimum_encoding`): AD-2/AD-5 compare only per-variable head
  seqnos (HEADS); AD-3/AD-4/AD-6 need the full seqno lists (SEQNOS);
  AD-1 only equality-tests histories, so a CHECKSUM suffices;
* :class:`ChecksumAD1` — AD-1 reimplemented over checksums alone, which
  the test-suite shows is decision-for-decision identical to AD-1
  (collisions aside);
* a length-prefixed **frame codec** (:func:`encode_frame` /
  :class:`FrameDecoder`) — the byte-stream transport the service runtime
  (:mod:`repro.service`) speaks over its local sockets.  Frames are a
  big-endian 4-byte payload length followed by the payload; a declared
  length above the decoder's ceiling poisons the stream (raises
  :class:`FrameError`) rather than buffering unboundedly.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm

__all__ = [
    "AlertEncoding",
    "WireAlert",
    "encode_alert",
    "minimum_encoding",
    "ChecksumAD1",
    "checksum_histories",
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "FrameDecoder",
    "iter_frames",
]

#: Assumed fixed-width field sizes (bytes) for size accounting.
_SEQNO_BYTES = 4
_VALUE_BYTES = 8
_CHECKSUM_BYTES = 8
_VARNAME_BYTES = 8  # fixed-width variable identifier
_CONDNAME_BYTES = 8


class AlertEncoding(Enum):
    """How much of the history set travels with an alert."""

    #: Full histories: every (varname, seqno, value) tuple.
    FULL = "full"
    #: All sequence numbers per variable, no values.
    SEQNOS = "seqnos"
    #: Only the head seqno per variable (``a.seqno.x``).
    HEADS = "heads"
    #: A fixed-size digest of the history seqnos.
    CHECKSUM = "checksum"


@dataclass(frozen=True)
class WireAlert:
    """An alert as it would travel on the back link."""

    condname: str
    encoding: AlertEncoding
    payload: tuple
    size_bytes: int


def checksum_histories(alert: Alert) -> bytes:
    """A stable digest of the alert's history identity.

    Values are excluded (identity is seqno-based, §2.2); the digest is
    deterministic across processes.
    """
    hasher = hashlib.blake2b(digest_size=_CHECKSUM_BYTES)
    hasher.update(alert.condname.encode())
    for var in alert.histories.variables:
        hasher.update(var.encode())
        for seqno in alert.histories.seqnos(var):
            hasher.update(struct.pack("<I", seqno))
    return hasher.digest()


def encode_alert(alert: Alert, encoding: AlertEncoding) -> WireAlert:
    """Encode an alert, computing its on-the-wire payload and size."""
    variables = alert.histories.variables
    if encoding is AlertEncoding.FULL:
        payload = tuple(
            (var, tuple((u.seqno, u.value) for u in alert.histories[var]))
            for var in variables
        )
        size = _CONDNAME_BYTES + sum(
            _VARNAME_BYTES + len(entries) * (_SEQNO_BYTES + _VALUE_BYTES)
            for _, entries in payload
        )
    elif encoding is AlertEncoding.SEQNOS:
        payload = tuple((var, alert.histories.seqnos(var)) for var in variables)
        size = _CONDNAME_BYTES + sum(
            _VARNAME_BYTES + len(seqnos) * _SEQNO_BYTES for _, seqnos in payload
        )
    elif encoding is AlertEncoding.HEADS:
        payload = tuple((var, alert.histories.seqno(var)) for var in variables)
        size = _CONDNAME_BYTES + len(payload) * (_VARNAME_BYTES + _SEQNO_BYTES)
    elif encoding is AlertEncoding.CHECKSUM:
        payload = (checksum_histories(alert),)
        size = _CONDNAME_BYTES + _CHECKSUM_BYTES
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown encoding {encoding!r}")
    return WireAlert(alert.condname, encoding, payload, size)


#: What each algorithm actually reads from an alert.
_MINIMUM: dict[str, AlertEncoding] = {
    "pass": AlertEncoding.CHECKSUM,   # reads nothing; smallest on offer
    "AD-1": AlertEncoding.CHECKSUM,   # equality test on H only
    "AD-2": AlertEncoding.HEADS,      # compares a.seqno.x to `last`
    "AD-3": AlertEncoding.SEQNOS,     # needs every seqno + spanning gaps
    "AD-4": AlertEncoding.SEQNOS,
    "AD-5": AlertEncoding.HEADS,      # per-variable head comparisons
    "AD-6": AlertEncoding.SEQNOS,
    "adaptive": AlertEncoding.SEQNOS,  # may escalate to AD-3/AD-6
}


def minimum_encoding(algorithm_name: str) -> AlertEncoding:
    """The smallest encoding sufficient for an AD algorithm (§2)."""
    try:
        return _MINIMUM[algorithm_name]
    except KeyError:
        raise KeyError(
            f"unknown AD algorithm {algorithm_name!r}; known: {list(_MINIMUM)}"
        ) from None


# -- length-prefixed frame codec ---------------------------------------------

#: Frame header: big-endian unsigned 32-bit payload length.
_FRAME_HEADER = struct.Struct(">I")

#: Default ceiling on a single frame's payload.  Large enough for any
#: alert or feed message the service ships, small enough that a corrupt
#: length prefix cannot make a decoder buffer gigabytes.
MAX_FRAME_BYTES = 1 << 24  # 16 MiB


class FrameError(ValueError):
    """A malformed frame: oversized, or a stream truncated mid-frame."""


def encode_frame(payload: bytes, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame.

    Zero-length payloads are legal (they encode to a bare header); a
    payload above ``max_bytes`` raises :class:`FrameError` — the sender
    must never emit a frame its peer is obliged to reject.
    """
    if len(payload) > max_bytes:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte ceiling"
        )
    return _FRAME_HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunking of the stream.

    Feed it whatever the socket produced; it returns every complete
    payload and buffers the remainder.  Call :meth:`close` at end of
    stream — a non-empty buffer there means the peer died mid-frame,
    which is a :class:`FrameError`, not silent truncation.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return the payloads completed by it, in order."""
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while len(self._buffer) >= _FRAME_HEADER.size:
            (length,) = _FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_bytes:
                raise FrameError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_bytes}-byte ceiling"
                )
            end = _FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payloads.append(bytes(self._buffer[_FRAME_HEADER.size:end]))
            del self._buffer[:end]
            self.frames_decoded += 1
        return payloads

    def close(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise FrameError(
                f"stream truncated mid-frame: {len(self._buffer)} trailing "
                "bytes do not form a complete frame"
            )


def iter_frames(
    data: bytes, *, max_bytes: int = MAX_FRAME_BYTES
) -> Iterator[bytes]:
    """Decode a fully-buffered byte string of concatenated frames.

    Raises :class:`FrameError` on truncation or an oversized frame.
    """
    decoder = FrameDecoder(max_bytes)
    yield from decoder.feed(data)
    decoder.close()


class ChecksumAD1(ADAlgorithm):
    """AD-1 operating on history checksums instead of full histories.

    Demonstrates the paper's point: since AD-1 only performs an equality
    test on H, a fixed-size digest carries all the information it needs.
    Modulo hash collisions (2^-64 per pair), its decisions are identical
    to :class:`~repro.displayers.ad1.AD1`'s.
    """

    name = "AD-1/checksum"

    def __init__(self) -> None:
        super().__init__()
        self._seen: set[bytes] = set()

    def _accept(self, alert: Alert) -> bool:
        return checksum_histories(alert) not in self._seen

    def _record(self, alert: Alert) -> None:
        self._seen.add(checksum_histories(alert))
