"""Sequence notation from Section 2.2 of the paper.

The paper's analysis is phrased in terms of sequences of natural numbers
(update or alert sequence numbers).  This module implements that notation:

* ``is_ordered(S)`` -- S's elements appear in non-decreasing order.
* ``phi(S)`` -- the unordered *set* of S's elements (written ``ΦS``).
* ``is_subsequence(S1, S2)`` -- ``S1 ⊑ S2``: S1 obtainable from S2 by
  deleting zero or more elements.
* ``ordered_union(S1, S2)`` -- ``S1 ⊔ S2``: the ordered, duplicate-free
  sequence whose element set is ``ΦS1 ∪ ΦS2``.
* ``project(U, var)`` -- ``Πx U``: the sequence of sequence numbers of
  x-updates (or x-alert-seqnos) in U.

These functions accept any iterable of comparable elements; the rest of the
library uses them both on raw integers and on :class:`~repro.core.update.Update`
objects (via the projection helpers).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = [
    "is_ordered",
    "is_strictly_ordered",
    "phi",
    "is_subsequence",
    "is_supersequence",
    "is_strict_supersequence",
    "sequences_equal",
    "ordered_union",
    "merge_ordered",
    "project_seqnos",
    "spanning_set",
    "first_inversion",
]


def is_ordered(seq: Iterable) -> bool:
    """Return True iff the elements of ``seq`` appear in non-decreasing order.

    Matches the paper's definition: ``⟨3, 8, 100⟩`` and ``⟨2, 2⟩`` are
    ordered, ``⟨2, 1, 6⟩`` is not.  The empty sequence is ordered.
    """
    iterator = iter(seq)
    try:
        previous = next(iterator)
    except StopIteration:
        return True
    for element in iterator:
        if element < previous:
            return False
        previous = element
    return True


def is_strictly_ordered(seq: Iterable) -> bool:
    """Return True iff elements appear in strictly increasing order."""
    iterator = iter(seq)
    try:
        previous = next(iterator)
    except StopIteration:
        return True
    for element in iterator:
        if element <= previous:
            return False
        previous = element
    return True


def first_inversion(seq: Sequence) -> int | None:
    """Return the index ``i`` of the first element with ``seq[i] < seq[i-1]``.

    Returns None when ``seq`` is ordered.  Useful for reporting *where* an
    orderedness violation occurred in an alert sequence.
    """
    for i in range(1, len(seq)):
        if seq[i] < seq[i - 1]:
            return i
    return None


def phi(seq: Iterable[T]) -> frozenset[T]:
    """``ΦS``: the (unordered) set whose elements are those of sequence S.

    ``phi([2, 1, 2, 6]) == frozenset({1, 2, 6})``.
    """
    return frozenset(seq)


def is_subsequence(s1: Sequence, s2: Sequence) -> bool:
    """``S1 ⊑ S2``: S1 can be obtained from S2 by removing zero or more
    of S2's elements (order preserved).
    """
    it = iter(s2)
    for wanted in s1:
        for candidate in it:
            if candidate == wanted:
                break
        else:
            return False
    return True


def is_supersequence(s1: Sequence, s2: Sequence) -> bool:
    """``S1 ⊒ S2``: S2 is a subsequence of S1."""
    return is_subsequence(s2, s1)


def sequences_equal(s1: Sequence, s2: Sequence) -> bool:
    """``S1 = S2`` in the paper's sense: ``S1 ⊑ S2`` and ``S2 ⊑ S1``.

    For finite sequences this coincides with element-wise equality, which is
    how we implement it.
    """
    return list(s1) == list(s2)


def is_strict_supersequence(s1: Sequence, s2: Sequence) -> bool:
    """True iff S2 ⊑ S1 and S1 has at least one element more than S2 keeps.

    This is the relation behind *strict domination* (Section 4.1): an
    algorithm strictly dominates another when, for some input, its output is
    a strict supersequence of the other's.
    """
    return is_subsequence(s2, s1) and not is_subsequence(s1, s2)


def ordered_union(s1: Iterable, s2: Iterable) -> list:
    """``S1 ⊔ S2``: the ordered union of two ordered sequences.

    The result is the ordered sequence satisfying
    ``Φ(S1 ⊔ S2) = ΦS1 ∪ ΦS2`` with duplicates removed, e.g.
    ``ordered_union([1, 4, 8], [2, 4, 5]) == [1, 2, 4, 5, 8]``.

    Raises ValueError if either input is not ordered, since the operation is
    only defined on ordered sequences in the paper.
    """
    list1, list2 = list(s1), list(s2)
    if not is_ordered(list1) or not is_ordered(list2):
        raise ValueError("ordered_union is only defined on ordered sequences")
    return merge_ordered(list1, list2)


def merge_ordered(list1: list, list2: list) -> list:
    """Merge two ordered lists into an ordered, duplicate-free list."""
    result: list = []
    i = j = 0
    while i < len(list1) or j < len(list2):
        if j >= len(list2) or (i < len(list1) and list1[i] <= list2[j]):
            candidate = list1[i]
            i += 1
        else:
            candidate = list2[j]
            j += 1
        if not result or result[-1] != candidate:
            result.append(candidate)
    return result


def project_seqnos(updates: Iterable, varname: str) -> list[int]:
    """``Πx U``: sequence numbers of x-updates in U, in U's order.

    Works on anything with ``.varname`` and ``.seqno`` attributes
    (updates), e.g. ``project_seqnos([2x, 6y, 1y, 3x], "x") == [2, 3]``.
    """
    return [u.seqno for u in updates if u.varname == varname]


def spanning_set(values: Iterable[int]) -> frozenset[int]:
    """The set of consecutive integers between min and max of ``values``.

    ``spanning_set({1, 2, 5}) == {1, 2, 3, 4, 5}`` (Figure A-3).  The
    spanning set of the empty collection is empty.
    """
    collected = list(values)
    if not collected:
        return frozenset()
    return frozenset(range(min(collected), max(collected) + 1))
