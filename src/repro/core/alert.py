"""Alerts — the messages CEs send to the AD (Section 2).

An alert is ``a(condname, histories)``: ``condname`` identifies the
condition, ``histories`` is the full H the CE used when the condition
evaluated true.  The histories let the AD identify duplicates and
conflicts.  ``a.seqno.x`` — the alert's sequence number with respect to
variable x — is ``Hx[0].seqno``, the seqno of the last x-update received
when the alert was triggered (§2.2); it is what the orderedness property
and algorithms AD-2/AD-5 examine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.history import HistorySnapshot
from repro.core.update import Update

__all__ = [
    "Alert",
    "make_alert",
    "alert_identity_set",
    "alert_event_key",
    "project_alert_seqnos",
]


@dataclass(frozen=True)
class Alert:
    """A single alert ``a(condname, histories)``.

    ``source`` records which CE emitted the alert (for analysis and for
    pretty-printing runs); it is *not* part of the alert's identity, since
    "two alerts are considered identical if their history sets H are the
    same" regardless of origin (Algorithm AD-1, §3).
    """

    condname: str
    histories: HistorySnapshot
    source: str = field(default="", compare=False)

    def seqno(self, varname: str) -> int:
        """``a.seqno.x`` = ``Hx[0].seqno`` (§2.2)."""
        return self.histories.seqno(varname)

    @property
    def variables(self) -> tuple[str, ...]:
        return self.histories.variables

    def identity(self) -> tuple:
        """Hashable identity used for ΦA set comparisons and by AD-1."""
        return (self.condname, self.histories.identity())

    def with_source(self, source: str) -> "Alert":
        return Alert(self.condname, self.histories, source)

    def shorthand(self) -> str:
        """Paper-style rendering, e.g. ``a(2x, 1y)`` for a two-var alert.

        For degree > 1 histories all seqnos appear, most recent first:
        ``a(3x,1x)`` is an alert that triggered on 3x with 1x as history.
        """
        parts = []
        for var in self.histories.variables:
            seqnos = self.histories.seqnos(var)
            parts.append(",".join(f"{s}{var}" for s in seqnos))
        return f"a({'; '.join(parts)})"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.shorthand()


def make_alert(
    condname: str,
    histories: dict[str, tuple[Update, ...] | list[Update]],
    source: str = "",
) -> Alert:
    """Convenience constructor used by tests and examples.

    ``histories`` maps variable → updates most-recent-first, e.g.
    ``make_alert("c2", {"x": [u3, u1]})`` for an alert that triggered on
    update 3 with update 1 as the previous history entry.
    """
    snapshot = HistorySnapshot({var: tuple(ups) for var, ups in histories.items()})
    return Alert(condname, snapshot, source)


def alert_identity_set(alerts: Iterable[Alert]) -> frozenset[tuple]:
    """``ΦA`` with alert identity = (condname, history seqnos)."""
    return frozenset(a.identity() for a in alerts)


def alert_event_key(alert: Alert, variables: Iterable[str]) -> tuple:
    """The real-world *event* an alert reports: its head-seqno vector.

    Two CEs that observed the same trigger through different histories
    (a lossy replica has gaps where its peer does not) emit alerts with
    different identities but the same head seqnos — the same event, seen
    twice.  The quality metrics and the adaptive displayer key on this
    coarser equivalence: full identity distinguishes *evidence*, the
    event key distinguishes *occurrences*.
    """
    return (alert.condname, tuple(alert.seqno(var) for var in variables))


def project_alert_seqnos(alerts: Iterable[Alert], varname: str) -> list[int]:
    """``Πx A``: the sequence ⟨a.seqno.x | a ∈ A⟩ (§2.2)."""
    return [a.seqno(varname) for a in alerts]
