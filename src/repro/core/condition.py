"""Conditions — boolean predicates over update histories (Section 2).

A condition ``c`` evaluates to true or false over the history set H.  Key
classifications from the paper, all surfaced as properties here:

* **degree** with respect to variable x: how deep an ``Hx`` the condition
  needs.  Inferred automatically from the expression AST.
* **non-historical** vs **historical**: degree 1 in every variable vs
  degree > 1 in some variable.
* **conservative** vs **aggressive** triggering (historical conditions
  only): a conservative condition always evaluates false when the seqnos
  in any Hx are not consecutive (i.e. it refuses to trigger across a lost
  update); an aggressive condition substitutes older received values and
  may trigger anyway.

The module also provides the paper's canonical conditions:

* ``c1``  — "reactor temperature is over 3000 degrees" (non-historical);
* ``c2``  — "temperature has risen > 200 degrees since last reading
  *received*" (historical, aggressive);
* ``c3``  — conservative variant of c2: "... since last reading *taken at
  the DM*" (historical, conservative);
* ``cm``  — "temperature difference between the two reactors exceeds 100
  degrees" (two-variable, non-historical, Theorem 10);
* ``sharp_price_drop`` — the stock example from the introduction (> 20%
  drop between two consecutive quotes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.core.expressions import H, BoolExpr
from repro.core.history import HistorySet, HistorySnapshot, history_is_consecutive

__all__ = [
    "Condition",
    "ExpressionCondition",
    "PredicateCondition",
    "conservative_guard",
    "c1",
    "c2",
    "c3",
    "cm",
    "sharp_price_drop",
    "always_true",
]

# A practical ceiling: the paper excludes conditions of infinite degree, and
# anything near this bound indicates a mis-built expression rather than a
# legitimate monitoring condition.
MAX_DEGREE = 1024


class Condition(ABC):
    """A named boolean condition over the history set H."""

    def __init__(self, name: str, degrees: Mapping[str, int], conservative: bool) -> None:
        if not name:
            raise ValueError("condition name must be non-empty")
        if not degrees:
            raise ValueError("condition must reference at least one variable")
        for var, degree in degrees.items():
            if not isinstance(degree, int) or degree < 1:
                raise ValueError(f"degree of {var!r} must be a positive int")
            if degree > MAX_DEGREE:
                raise ValueError(
                    f"degree {degree} for {var!r} exceeds the finite-degree "
                    f"bound {MAX_DEGREE} (the paper excludes infinite-degree "
                    "conditions)"
                )
        self.name = name
        self._degrees = dict(degrees)
        self._conservative = bool(conservative)

    # -- classification ----------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """The variable set V, in a stable order."""
        return tuple(sorted(self._degrees))

    @property
    def degrees(self) -> dict[str, int]:
        return dict(self._degrees)

    def degree(self, varname: str) -> int:
        """The condition's degree with respect to ``varname``."""
        return self._degrees[varname]

    @property
    def is_historical(self) -> bool:
        """True iff degree > 1 for some variable (§2)."""
        return any(d > 1 for d in self._degrees.values())

    @property
    def is_conservative(self) -> bool:
        """True iff the condition is conservatively triggered.

        Non-historical conditions are trivially conservative: a degree-1
        history is a single update, so its seqnos are vacuously
        consecutive and the aggressive/conservative distinction is moot.
        """
        return self._conservative or not self.is_historical

    @property
    def is_aggressive(self) -> bool:
        return not self.is_conservative

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        """Evaluate the condition; applies the conservative gap-guard first."""
        if self._conservative and not self._histories_consecutive(histories):
            return False
        return self._evaluate(histories)

    def _histories_consecutive(self, histories: HistorySet | HistorySnapshot) -> bool:
        if isinstance(histories, HistorySnapshot):
            return all(
                history_is_consecutive(histories[var]) for var in self.variables
            )
        # Live history sets check their ring buffers directly, avoiding a
        # snapshot tuple per evaluation on the simulation hot path.
        return all(histories[var].is_consecutive() for var in self.variables)

    @abstractmethod
    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        """Evaluate the underlying predicate (gap-guard already applied)."""

    # -- caching -------------------------------------------------------------
    def cache_key(self) -> tuple | None:
        """A content key identifying this condition's *semantics*, or None.

        Two conditions with equal cache keys must evaluate identically on
        every history set; the reference-semantics cache in
        :mod:`repro.core.reference` uses this to share ``T(U)`` results
        across trials that rebuild structurally identical conditions.
        Conditions whose semantics cannot be fingerprinted (opaque
        predicates) return None and bypass the cache.
        """
        return None

    # -- derivation ----------------------------------------------------------
    def as_conservative(self, name: str | None = None) -> "Condition":
        """The conservative variant: same predicate plus the gap-guard.

        This is how the paper derives c3 from c2.
        """
        return _ConservativeWrapper(name or f"{self.name}_conservative", self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "conservative" if self.is_conservative else "aggressive"
        degs = ", ".join(f"{v}:{d}" for v, d in sorted(self._degrees.items()))
        return f"<Condition {self.name} [{degs}] {kind}>"


class ExpressionCondition(Condition):
    """A condition defined by an expression AST; degrees are inferred.

    >>> cond = ExpressionCondition("c1", H.x[0].value > 3000)
    >>> cond.degree("x")
    1
    """

    def __init__(self, name: str, expression: BoolExpr, conservative: bool = False) -> None:
        if not isinstance(expression, BoolExpr):
            raise TypeError(
                "condition expression must be boolean-valued (did you forget "
                "a comparison?)"
            )
        degrees = expression.degrees()
        super().__init__(name, degrees, conservative)
        self.expression = expression

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return bool(self.expression.evaluate(histories))

    def cache_key(self) -> tuple | None:
        # The AST repr is a faithful, deterministic rendering of the
        # expression (including literal constants), so together with the
        # gap-guard flag it pins down the condition's semantics.
        return ("expr", self.name, repr(self.expression), self._conservative)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Condition {self.name}: {self.expression!r}>"


class PredicateCondition(Condition):
    """A condition defined by an arbitrary Python predicate over H.

    Degrees must be declared explicitly since they cannot be inferred from
    an opaque callable.  The predicate receives the history set/snapshot
    and must be a pure function of it (the paper excludes conditions that
    keep extra state at the CE).
    """

    def __init__(
        self,
        name: str,
        degrees: Mapping[str, int],
        predicate,
        conservative: bool = False,
    ) -> None:
        super().__init__(name, degrees, conservative)
        self._predicate = predicate

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return bool(self._predicate(histories))


class _ConservativeWrapper(Condition):
    """Wraps any condition with the consecutive-seqno guard."""

    def __init__(self, name: str, inner: Condition) -> None:
        super().__init__(name, inner.degrees, conservative=True)
        self._inner = inner

    def _evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        # The guard already ran in Condition.evaluate; delegate to the inner
        # predicate without re-applying the inner condition's own guard
        # semantics (the guard is idempotent anyway).
        return self._inner._evaluate(histories)

    def cache_key(self) -> tuple | None:
        inner = self._inner.cache_key()
        if inner is None:
            return None
        return ("conservative", self.name, inner)


def conservative_guard(*varnames: str) -> BoolExpr:
    """An explicit seqno-consecutiveness expression for degree-2 conditions.

    ``conservative_guard("x")`` is ``Hx[0].seqno == Hx[-1].seqno + 1`` —
    the conjunct the paper adds to turn c2 into c3.  For deeper histories
    compose multiple guards or use :meth:`Condition.as_conservative`.
    """
    if not varnames:
        raise ValueError("need at least one variable name")
    expr: BoolExpr | None = None
    for var in varnames:
        clause = H[var][0].seqno == H[var][-1].seqno + 1
        expr = clause if expr is None else (expr & clause)
    assert expr is not None
    return expr


# ---------------------------------------------------------------------------
# Canonical conditions from the paper.
# ---------------------------------------------------------------------------

def c1(threshold: float = 3000.0, varname: str = "x", name: str = "c1") -> ExpressionCondition:
    """"Reactor temperature is over ``threshold`` degrees" (non-historical)."""
    return ExpressionCondition(name, H[varname][0].value > threshold)


def c2(delta: float = 200.0, varname: str = "x", name: str = "c2") -> ExpressionCondition:
    """"Temperature has risen more than ``delta`` since last reading
    *received*" — historical and aggressively triggered: it does not check
    seqno consecutiveness, so a lost update makes it compare against an
    older received value.
    """
    expr = H[varname][0].value - H[varname][-1].value > delta
    return ExpressionCondition(name, expr, conservative=False)


def c3(delta: float = 200.0, varname: str = "x", name: str = "c3") -> ExpressionCondition:
    """Conservative variant of c2: "... since last reading *taken at the
    DM*".  Encodes the seqno guard in the expression, exactly as the paper
    defines c3.
    """
    expr = (H[varname][0].value - H[varname][-1].value > delta) & (
        H[varname][0].seqno == H[varname][-1].seqno + 1
    )
    return ExpressionCondition(name, expr, conservative=True)


def cm(gap: float = 100.0, var_x: str = "x", var_y: str = "y", name: str = "cm") -> ExpressionCondition:
    """Theorem 10's two-variable condition: ``|Hx[0].value − Hy[0].value| >
    gap`` — degree 1 in both variables.
    """
    return ExpressionCondition(name, abs(H[var_x][0].value - H[var_y][0].value) > gap)


def sharp_price_drop(
    fraction: float = 0.2,
    varname: str = "price",
    conservative: bool = False,
    name: str = "sharp_drop",
) -> ExpressionCondition:
    """The introduction's stock example: a drop greater than ``fraction``
    between two consecutive quotes.

    The aggressive form compares against the last *received* quote (this
    is what produces the confusing two-alert scenario in §1); pass
    ``conservative=True`` for the variant that refuses to trigger across a
    lost quote.
    """
    if not 0 < fraction < 1:
        raise ValueError("fraction must be in (0, 1)")
    expr = H[varname][0].value < (1.0 - fraction) * H[varname][-1].value
    if conservative:
        expr = expr & (H[varname][0].seqno == H[varname][-1].seqno + 1)
    return ExpressionCondition(name, expr, conservative=conservative)


def always_true(varname: str = "x", name: str = "always") -> ExpressionCondition:
    """Triggers on every update — handy for exercising AD algorithms."""
    return ExpressionCondition(name, H[varname][0].seqno >= 0)
