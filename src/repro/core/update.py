"""Data updates — the messages DMs broadcast (Section 2).

An update is the tuple ``u(varname, seqno, value)``:

* ``varname`` identifies the real-world variable being monitored;
* ``seqno`` uniquely identifies the update in the stream from that
  variable — the DM keeps a counter incremented for every update, so
  sequence numbers from one variable are *consecutive*;
* ``value`` is a full snapshot of the variable (never a delta), so an
  update remains useful even if its predecessor was lost.

The paper writes updates as ``7x(3000)`` — the seventh update of variable
x reporting the value 3000 — or just ``7x`` when the value is irrelevant.
:func:`parse_update` and :meth:`Update.shorthand` implement that notation,
which the test-suite and examples use heavily to transcribe the paper's
traces verbatim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Update", "parse_update", "parse_trace", "format_trace"]

_SHORTHAND_RE = re.compile(
    r"^\s*(?P<seqno>\d+)\s*(?P<var>[A-Za-z_][A-Za-z_0-9]*)"
    r"\s*(?:\(\s*(?P<value>-?\d+(?:\.\d+)?)\s*\))?\s*$"
)


@dataclass(frozen=True, order=True)
class Update:
    """A single data update ``u(varname, seqno, value)``.

    Ordering sorts by ``(varname, seqno)`` so that sorted containers of
    same-variable updates come out in stream order.  ``value`` is excluded
    from ordering and from hashing-relevant identity concerns: two updates
    with the same variable and seqno are the same point in the stream and
    always carry the same snapshot in a correct system (the DM sends each
    seqno once).
    """

    varname: str
    seqno: int
    value: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if not self.varname:
            raise ValueError("update varname must be non-empty")
        if self.seqno < 0:
            raise ValueError(f"update seqno must be non-negative, got {self.seqno}")

    def shorthand(self, with_value: bool = True) -> str:
        """Render in the paper's ``7x(3000)`` notation."""
        if with_value:
            value = self.value
            rendered = f"{value:g}"
            return f"{self.seqno}{self.varname}({rendered})"
        return f"{self.seqno}{self.varname}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.shorthand()

    def replace_value(self, value: float) -> "Update":
        """A copy of this update carrying a different snapshot value."""
        return Update(self.varname, self.seqno, value)


def parse_update(text: str, default_value: float = 0.0) -> Update:
    """Parse the paper's shorthand: ``"7x(3000)"`` or ``"7x"``.

    The value defaults to ``default_value`` when omitted, matching the
    paper's habit of writing just ``7x`` "when the actual update values are
    irrelevant".
    """
    match = _SHORTHAND_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse update shorthand: {text!r}")
    value_text = match.group("value")
    value = float(value_text) if value_text is not None else default_value
    return Update(match.group("var"), int(match.group("seqno")), value)


def parse_trace(text: str, default_value: float = 0.0) -> list[Update]:
    """Parse a comma/whitespace separated trace like ``"1x(2900), 2x(3100)"``.

    Used throughout the tests to transcribe the paper's example traces.
    """
    stripped = text.strip()
    if not stripped:
        return []
    parts = [p for p in re.split(r"[,\s]+", stripped) if p]
    # Re-join shorthand split across the value parentheses, e.g. "7x(3" "000)".
    # Splitting on whitespace/commas cannot break inside "(...)" because the
    # shorthand contains no spaces, so a straight parse of each part suffices.
    return [parse_update(part, default_value) for part in parts]


def format_trace(updates: Any, with_values: bool = False) -> str:
    """Render a sequence of updates as ``⟨1x, 2x, 3x⟩``-style text."""
    inner = ", ".join(u.shorthand(with_value=with_values) for u in updates)
    return f"<{inner}>"
