"""The reference mapping ``T`` and the corresponding non-replicated system.

Section 3 models a CE as a function ``T`` mapping a sequence of updates to
a sequence of alerts.  The three system properties are all phrased against
``T`` applied to combined inputs:

* completeness compares ΦA against ``ΦT(U1 ⊔ U2)``;
* consistency asks for a ``U′ ⊑ U1 ⊔ U2`` with ``ΦA ⊆ ΦT(U′)``.

This module provides ``T`` as a pure function (:func:`apply_T`), the
per-variable ordered-union combinator for update traces
(:func:`combine_received`), and interleaving utilities needed by the
multi-variable definitions of Appendix C.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.sequences import is_ordered, ordered_union, project_seqnos
from repro.core.update import Update

__all__ = [
    "apply_T",
    "combine_received",
    "merge_single_variable",
    "interleavings",
    "count_interleavings",
    "is_interleaving_of",
    "reference_cache_info",
    "clear_reference_caches",
    "set_reference_cache_size",
    "reference_caches_disabled",
]


class _LRUCache:
    """A small content-keyed LRU used for memoizing reference results."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        entry = self._data.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return _MISS
        self.hits += 1
        self._data.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        while len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_MISS = object()

#: Default entry counts for the two caches; override per-process with
#: :func:`set_reference_cache_size`.
DEFAULT_T_CACHE_SIZE = 8192
DEFAULT_COMBINE_CACHE_SIZE = 2048

_T_CACHE = _LRUCache(DEFAULT_T_CACHE_SIZE)
_COMBINE_CACHE = _LRUCache(DEFAULT_COMBINE_CACHE_SIZE)
_CACHES_ENABLED = True


def _fingerprint(updates: Sequence[Update]) -> tuple:
    """A value-including content key for an update sequence.

    ``Update.__eq__``/``__hash__`` deliberately ignore ``value`` (same
    seqno ⇒ same snapshot *within* a correct run), but across trials the
    same (varname, seqno) pair carries different randomized values, so the
    cache key must include them explicitly.
    """
    return tuple((u.varname, u.seqno, u.value) for u in updates)


def reference_cache_info() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters for the reference-semantics caches."""
    return {
        "apply_T": {
            "hits": _T_CACHE.hits,
            "misses": _T_CACHE.misses,
            "size": len(_T_CACHE),
            "maxsize": _T_CACHE.maxsize,
        },
        "combine_received": {
            "hits": _COMBINE_CACHE.hits,
            "misses": _COMBINE_CACHE.misses,
            "size": len(_COMBINE_CACHE),
            "maxsize": _COMBINE_CACHE.maxsize,
        },
    }


def clear_reference_caches() -> None:
    """Drop all memoized ``T``/combine results (counters included)."""
    _T_CACHE.clear()
    _COMBINE_CACHE.clear()


def set_reference_cache_size(
    t_cache: int = DEFAULT_T_CACHE_SIZE,
    combine_cache: int = DEFAULT_COMBINE_CACHE_SIZE,
) -> None:
    """Resize the per-process caches (clears current contents)."""
    if t_cache < 1 or combine_cache < 1:
        raise ValueError("cache sizes must be >= 1")
    _T_CACHE.maxsize = t_cache
    _COMBINE_CACHE.maxsize = combine_cache
    clear_reference_caches()


@contextmanager
def reference_caches_disabled():
    """Temporarily bypass memoization (benchmark baselines, equivalence
    tests).  The caches themselves are left intact."""
    global _CACHES_ENABLED
    previous = _CACHES_ENABLED
    _CACHES_ENABLED = False
    try:
        yield
    finally:
        _CACHES_ENABLED = previous


def apply_T(condition: Condition, updates: Iterable[Update], source: str = "N") -> list[Alert]:
    """``T(U)``: run a fresh evaluator over ``updates`` and collect alerts.

    This is the behaviour of the corresponding non-replicated system N
    (Figure 2(b)): one CE, no filtering at the AD.

    Results are memoized per-process in a content-keyed LRU: thousands of
    randomized trials share scenario structure, and the property checkers
    re-derive ``T`` over identical (condition, trace) pairs.  Conditions
    without a :meth:`~repro.core.condition.Condition.cache_key` (opaque
    predicates) bypass the cache.
    """
    condition_key = condition.cache_key() if _CACHES_ENABLED else None
    if condition_key is None:
        evaluator = ConditionEvaluator(condition, source=source)
        return evaluator.ingest_all(updates)
    updates = list(updates)
    key = (condition_key, source, _fingerprint(updates))
    cached = _T_CACHE.get(key)
    if cached is not _MISS:
        return list(cached)
    evaluator = ConditionEvaluator(condition, source=source)
    alerts = evaluator.ingest_all(updates)
    _T_CACHE.put(key, tuple(alerts))
    return alerts


def merge_single_variable(u1: Sequence[Update], u2: Sequence[Update]) -> list[Update]:
    """``U1 ⊔ U2`` for single-variable traces: ordered union by seqno.

    Inputs must each be ordered (they are subsequences of the DM's ordered
    output).  Where both traces carry the same seqno, the snapshot values
    must agree — the DM broadcast a single value for that seqno.
    """
    by_seqno: dict[int, Update] = {}
    for update in list(u1) + list(u2):
        existing = by_seqno.get(update.seqno)
        if existing is None:
            by_seqno[update.seqno] = update
        elif existing.varname != update.varname or existing.value != update.value:
            raise ValueError(
                f"conflicting updates for seqno {update.seqno}: "
                f"{existing} vs {update}"
            )
    seqnos1 = [u.seqno for u in u1]
    seqnos2 = [u.seqno for u in u2]
    merged_seqnos = ordered_union(seqnos1, seqnos2)
    return [by_seqno[s] for s in merged_seqnos]


def combine_received(traces: Sequence[Sequence[Update]], variables: Iterable[str]) -> dict[str, list[Update]]:
    """Per-variable ordered union of the updates received by all CEs.

    For each variable x this yields the ordered union of the x-updates in
    every trace — the per-variable component of ``UV`` in Appendix C (and
    ``U1 ⊔ U2`` itself in the single-variable case).

    The combined union is memoized on the content of the traces, so
    re-evaluating the properties of one run (tables, sweeps, witnesses)
    merges each trace set only once per process.
    """
    variables = tuple(variables)
    if _CACHES_ENABLED:
        key = (tuple(_fingerprint(trace) for trace in traces), variables)
        cached = _COMBINE_CACHE.get(key)
        if cached is not _MISS:
            return {var: list(merged) for var, merged in cached.items()}
        combined = _combine_received_uncached(traces, variables)
        _COMBINE_CACHE.put(
            key, {var: tuple(merged) for var, merged in combined.items()}
        )
        return combined
    return _combine_received_uncached(traces, variables)


def _combine_received_uncached(
    traces: Sequence[Sequence[Update]], variables: Iterable[str]
) -> dict[str, list[Update]]:
    combined: dict[str, list[Update]] = {}
    for var in variables:
        merged: list[Update] = []
        for trace in traces:
            var_updates = [u for u in trace if u.varname == var]
            if not is_ordered([u.seqno for u in var_updates]):
                raise ValueError(
                    f"trace not ordered with respect to {var!r}: "
                    f"{project_seqnos(trace, var)}"
                )
            merged = merge_single_variable(merged, var_updates)
        combined[var] = merged
    return combined


def interleavings(per_variable: dict[str, Sequence[Update]]) -> Iterator[list[Update]]:
    """Generate every interleaving ``UV`` of the per-variable sequences.

    Each variable's updates keep their relative order; variables are
    shuffled together in all possible ways.  The count is multinomial in
    the lengths, so callers must keep inputs small — use
    :func:`count_interleavings` to pre-check, and prefer the
    constraint-based checkers in :mod:`repro.props` for larger instances.
    """
    variables = [v for v, seq in per_variable.items() if len(seq) > 0]
    sequences = {v: list(per_variable[v]) for v in variables}
    positions = {v: 0 for v in variables}

    def generate(prefix: list[Update]) -> Iterator[list[Update]]:
        if all(positions[v] == len(sequences[v]) for v in variables):
            yield list(prefix)
            return
        for var in variables:
            if positions[var] < len(sequences[var]):
                update = sequences[var][positions[var]]
                positions[var] += 1
                prefix.append(update)
                yield from generate(prefix)
                prefix.pop()
                positions[var] -= 1

    return generate([])


def count_interleavings(per_variable: dict[str, Sequence[Update]]) -> int:
    """Number of distinct interleavings (multinomial coefficient)."""
    from math import comb

    total = 0
    count = 1
    for seq in per_variable.values():
        n = len(seq)
        total += n
        count *= comb(total, n)
    return count


def is_interleaving_of(candidate: Sequence[Update], per_variable: dict[str, Sequence[Update]]) -> bool:
    """True iff ``candidate`` interleaves exactly the given per-variable runs."""
    positions = {v: 0 for v in per_variable}
    for update in candidate:
        var = update.varname
        if var not in positions:
            return False
        expected = per_variable[var]
        if positions[var] >= len(expected) or expected[positions[var]] != update:
            return False
        positions[var] += 1
    return all(positions[v] == len(per_variable[v]) for v in per_variable)
