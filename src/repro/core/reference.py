"""The reference mapping ``T`` and the corresponding non-replicated system.

Section 3 models a CE as a function ``T`` mapping a sequence of updates to
a sequence of alerts.  The three system properties are all phrased against
``T`` applied to combined inputs:

* completeness compares ΦA against ``ΦT(U1 ⊔ U2)``;
* consistency asks for a ``U′ ⊑ U1 ⊔ U2`` with ``ΦA ⊆ ΦT(U′)``.

This module provides ``T`` as a pure function (:func:`apply_T`), the
per-variable ordered-union combinator for update traces
(:func:`combine_received`), and interleaving utilities needed by the
multi-variable definitions of Appendix C.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.sequences import is_ordered, ordered_union, project_seqnos
from repro.core.update import Update

__all__ = [
    "apply_T",
    "combine_received",
    "merge_single_variable",
    "interleavings",
    "count_interleavings",
    "is_interleaving_of",
]


def apply_T(condition: Condition, updates: Iterable[Update], source: str = "N") -> list[Alert]:
    """``T(U)``: run a fresh evaluator over ``updates`` and collect alerts.

    This is the behaviour of the corresponding non-replicated system N
    (Figure 2(b)): one CE, no filtering at the AD.
    """
    evaluator = ConditionEvaluator(condition, source=source)
    return evaluator.ingest_all(updates)


def merge_single_variable(u1: Sequence[Update], u2: Sequence[Update]) -> list[Update]:
    """``U1 ⊔ U2`` for single-variable traces: ordered union by seqno.

    Inputs must each be ordered (they are subsequences of the DM's ordered
    output).  Where both traces carry the same seqno, the snapshot values
    must agree — the DM broadcast a single value for that seqno.
    """
    by_seqno: dict[int, Update] = {}
    for update in list(u1) + list(u2):
        existing = by_seqno.get(update.seqno)
        if existing is None:
            by_seqno[update.seqno] = update
        elif existing.varname != update.varname or existing.value != update.value:
            raise ValueError(
                f"conflicting updates for seqno {update.seqno}: "
                f"{existing} vs {update}"
            )
    seqnos1 = [u.seqno for u in u1]
    seqnos2 = [u.seqno for u in u2]
    merged_seqnos = ordered_union(seqnos1, seqnos2)
    return [by_seqno[s] for s in merged_seqnos]


def combine_received(traces: Sequence[Sequence[Update]], variables: Iterable[str]) -> dict[str, list[Update]]:
    """Per-variable ordered union of the updates received by all CEs.

    For each variable x this yields the ordered union of the x-updates in
    every trace — the per-variable component of ``UV`` in Appendix C (and
    ``U1 ⊔ U2`` itself in the single-variable case).
    """
    combined: dict[str, list[Update]] = {}
    for var in variables:
        merged: list[Update] = []
        for trace in traces:
            var_updates = [u for u in trace if u.varname == var]
            if not is_ordered([u.seqno for u in var_updates]):
                raise ValueError(
                    f"trace not ordered with respect to {var!r}: "
                    f"{project_seqnos(trace, var)}"
                )
            merged = merge_single_variable(merged, var_updates)
        combined[var] = merged
    return combined


def interleavings(per_variable: dict[str, Sequence[Update]]) -> Iterator[list[Update]]:
    """Generate every interleaving ``UV`` of the per-variable sequences.

    Each variable's updates keep their relative order; variables are
    shuffled together in all possible ways.  The count is multinomial in
    the lengths, so callers must keep inputs small — use
    :func:`count_interleavings` to pre-check, and prefer the
    constraint-based checkers in :mod:`repro.props` for larger instances.
    """
    variables = [v for v, seq in per_variable.items() if len(seq) > 0]
    sequences = {v: list(per_variable[v]) for v in variables}
    positions = {v: 0 for v in variables}

    def generate(prefix: list[Update]) -> Iterator[list[Update]]:
        if all(positions[v] == len(sequences[v]) for v in variables):
            yield list(prefix)
            return
        for var in variables:
            if positions[var] < len(sequences[var]):
                update = sequences[var][positions[var]]
                positions[var] += 1
                prefix.append(update)
                yield from generate(prefix)
                prefix.pop()
                positions[var] -= 1

    return generate([])


def count_interleavings(per_variable: dict[str, Sequence[Update]]) -> int:
    """Number of distinct interleavings (multinomial coefficient)."""
    from math import comb

    total = 0
    count = 1
    for seq in per_variable.values():
        n = len(seq)
        total += n
        count *= comb(total, n)
    return count


def is_interleaving_of(candidate: Sequence[Update], per_variable: dict[str, Sequence[Update]]) -> bool:
    """True iff ``candidate`` interleaves exactly the given per-variable runs."""
    positions = {v: 0 for v in per_variable}
    for update in candidate:
        var = update.varname
        if var not in positions:
            return False
        expected = per_variable[var]
        if positions[var] >= len(expected) or expected[positions[var]] != update:
            return False
        positions[var] += 1
    return all(positions[v] == len(per_variable[v]) for v in per_variable)
