"""Update histories — the ``H`` structure conditions are evaluated on (§2).

An *update history* for variable x, written ``Hx``, is the sequence of the
N most recently received x-updates at a CE:

    Hx = ⟨Hx[0], Hx[-1], ..., Hx[-(N-1)]⟩

where ``Hx[0]`` is the most recent update and ``Hx[-i]`` the i-th most
recent.  N is the history's *degree*, dictated by the condition being
monitored.  Until N updates have been received the history is *undefined*
and the condition cannot be evaluated.

:class:`HistorySet` is the full ``H``: one history per variable in the
condition's variable set V.  Alerts carry a frozen snapshot of H
(:class:`HistorySnapshot`), which AD algorithms compare for duplicate and
conflict detection.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.update import Update

__all__ = ["UpdateHistory", "HistorySet", "HistorySnapshot", "history_is_consecutive"]


class UpdateHistory:
    """``Hx``: ring buffer of the N most recent updates of one variable.

    Indexing follows the paper: ``h[0]`` is the most recent update,
    ``h[-1]`` the one before it, down to ``h[-(degree-1)]``.  Positive
    indices are invalid.  Accessing any slot before the history is defined
    (fewer than ``degree`` updates received) raises LookupError.
    """

    def __init__(self, varname: str, degree: int) -> None:
        if degree < 1:
            raise ValueError(f"history degree must be >= 1, got {degree}")
        self.varname = varname
        self.degree = degree
        # Leftmost element is the most recent update.
        self._buffer: deque[Update] = deque(maxlen=degree)

    @property
    def is_defined(self) -> bool:
        """True once at least ``degree`` updates have been incorporated."""
        return len(self._buffer) == self.degree

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, update: Update) -> None:
        """Incorporate a newly received update as ``Hx[0]``.

        Enforces the front-link ordering assumption: a CE never sees
        x-updates out of order, so pushes must carry increasing seqnos.
        """
        if update.varname != self.varname:
            raise ValueError(
                f"history for {self.varname!r} got update for {update.varname!r}"
            )
        if self._buffer and update.seqno <= self._buffer[0].seqno:
            raise ValueError(
                f"non-increasing seqno pushed into H{self.varname}: "
                f"{update.seqno} after {self._buffer[0].seqno}"
            )
        self._buffer.appendleft(update)

    def __getitem__(self, index: int) -> Update:
        if index > 0:
            raise IndexError("history indices are 0 or negative (Hx[0], Hx[-1], ...)")
        buffer = self._buffer
        if len(buffer) != self.degree:
            raise LookupError(
                f"H{self.varname} is undefined: {len(buffer)} of "
                f"{self.degree} updates received"
            )
        return buffer[-index]

    def snapshot(self) -> tuple[Update, ...]:
        """The current contents, most recent first (undefined → LookupError)."""
        if not self.is_defined:
            raise LookupError(f"H{self.varname} is undefined")
        return tuple(self._buffer)

    def is_consecutive(self) -> bool:
        """True iff the buffered seqnos are consecutive, most recent first.

        Equivalent to ``history_is_consecutive(self.snapshot())`` without
        materialising the snapshot tuple — this runs inside every
        conservative-condition evaluation.
        """
        previous = None
        for update in self._buffer:
            if previous is not None and previous != update.seqno + 1:
                return False
            previous = update.seqno
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(u.shorthand(False) for u in self._buffer)
        return f"H{self.varname}<{inner}>"


class HistorySet:
    """``H``: the set of update histories, one per variable in V."""

    def __init__(self, degrees: Mapping[str, int]) -> None:
        if not degrees:
            raise ValueError("a condition must involve at least one variable")
        self._histories = {
            var: UpdateHistory(var, degree) for var, degree in degrees.items()
        }

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._histories)

    @property
    def is_defined(self) -> bool:
        """True once every per-variable history is defined."""
        return all(h.is_defined for h in self._histories.values())

    def __getitem__(self, varname: str) -> UpdateHistory:
        return self._histories[varname]

    def __contains__(self, varname: str) -> bool:
        return varname in self._histories

    def history_for(self, varname: str) -> UpdateHistory | None:
        """The history for ``varname``, or None when the variable ∉ V."""
        return self._histories.get(varname)

    def push(self, update: Update) -> None:
        """Route an update into the history of its variable.

        Updates for variables outside V are ignored (a CE only subscribes
        to the DMs of its condition's variables, but a shared broadcast
        medium may still deliver others).
        """
        history = self._histories.get(update.varname)
        if history is not None:
            history.push(update)

    def snapshot(self) -> "HistorySnapshot":
        # The per-variable deques enforce ordering on push, so the frozen
        # copy can skip HistorySnapshot's re-validation.
        return HistorySnapshot.from_trusted(
            {var: h.snapshot() for var, h in self._histories.items()}
        )


@dataclass(frozen=True)
class HistorySnapshot:
    """Immutable copy of H at alert time; the ``histories`` field of alerts.

    Hashable so AD-1 can use alert identity ("two alerts are identical if
    their history sets H are the same") directly as a set member.
    """

    _entries: Mapping[str, tuple[Update, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_entries", dict(sorted(self._entries.items()))
        )
        for var, updates in self._entries.items():
            if not updates:
                raise ValueError(f"empty history snapshot for {var!r}")
            seqnos = [u.seqno for u in updates]
            if any(b <= a for a, b in zip(seqnos[1:], seqnos)):
                # Entries are most-recent-first, so seqnos must strictly
                # decrease along the tuple.
                if any(b >= a for a, b in zip(seqnos, seqnos[1:])):
                    raise ValueError(
                        f"history snapshot for {var!r} not in most-recent-first "
                        f"order: {seqnos}"
                    )

    @classmethod
    def from_trusted(
        cls, entries: Mapping[str, tuple[Update, ...]]
    ) -> "HistorySnapshot":
        """Build a snapshot from entries already known to be valid.

        Skips the per-variable ordering validation of ``__post_init__``;
        callers must guarantee non-empty, most-recent-first runs (as the
        ring buffers in :class:`UpdateHistory` do by construction).  This
        is the hot-path constructor: one snapshot is frozen per emitted
        alert, and the pruned completeness search builds snapshots per
        explored prefix state.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_entries", dict(sorted(entries.items())))
        return self

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def __getitem__(self, varname: str) -> tuple[Update, ...]:
        return self._entries[varname]

    def __contains__(self, varname: str) -> bool:
        return varname in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def seqno(self, varname: str) -> int:
        """``a.seqno.x``: seqno of the most recent x-update at trigger time."""
        return self._entries[varname][0].seqno

    def seqnos(self, varname: str) -> tuple[int, ...]:
        """All seqnos in Hx, most recent first."""
        return tuple(u.seqno for u in self._entries[varname])

    def identity(self) -> tuple:
        """Hashable identity: variable → (seqno, ...) pairs.

        Identity deliberately ignores values: an update's seqno determines
        its snapshot value in a correct system, and AD algorithms in the
        paper compare histories by their sequence numbers.
        """
        return tuple(
            (var, tuple(u.seqno for u in updates))
            for var, updates in self._entries.items()
        )

    def __hash__(self) -> int:
        return hash(self.identity())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistorySnapshot):
            return NotImplemented
        return self.identity() == other.identity()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for var, updates in self._entries.items():
            inner = ", ".join(u.shorthand(False) for u in updates)
            parts.append(f"H{var}<{inner}>")
        return "{" + "; ".join(parts) + "}"


def history_is_consecutive(updates: Iterable[Update]) -> bool:
    """True iff a most-recent-first run of updates has consecutive seqnos.

    This is the check a *conservative* condition performs: it must evaluate
    to false whenever the sequence numbers in any Hx are not consecutive
    (i.e. an update was lost between two retained ones).
    """
    seqnos = [u.seqno for u in updates]
    return all(a == b + 1 for a, b in zip(seqnos, seqnos[1:]))
