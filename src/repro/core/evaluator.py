"""The Condition Evaluator — the CE's evaluation core (Sections 2–3).

:class:`ConditionEvaluator` is the stateful heart of a CE: it ingests data
updates, maintains the history set H at the degrees the condition demands,
re-evaluates the condition on every arrival, and emits an alert carrying a
frozen snapshot of H whenever the condition is satisfied.

This class is deliberately free of any networking or simulation concerns —
it is the pure ``T`` mapping unrolled over time.  The simulated CE node
(:mod:`repro.components.ce_node`) wraps it; the reference non-replicated
system (:mod:`repro.core.reference`) replays traces through a fresh
instance.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.history import HistorySet
from repro.core.update import Update

__all__ = ["ConditionEvaluator"]


class ConditionEvaluator:
    """Evaluates one condition over an incoming update stream.

    Per the paper's assumptions (§2.1), one evaluator monitors a single
    condition.  The evaluator enforces the front-link in-order guarantee:
    feeding it a same-variable update with a non-increasing seqno raises,
    because by assumption the link layer has already discarded such
    messages before they reach the CE.

    Parameters
    ----------
    condition:
        The condition to monitor.
    source:
        Label stamped onto emitted alerts (e.g. ``"CE1"``), so analysis
        code can attribute alerts to evaluators.
    """

    def __init__(self, condition: Condition, source: str = "") -> None:
        self.condition = condition
        self.source = source
        self.histories = HistorySet(condition.degrees)
        self._received: list[Update] = []
        self._alerts: list[Alert] = []
        # H can only gain entries, so once defined it stays defined; cache
        # the transition to skip the per-variable check on every ingest.
        self._defined = False

    # -- inspection ----------------------------------------------------------
    @property
    def received(self) -> tuple[Update, ...]:
        """Every update this evaluator has incorporated (its ``U_i``)."""
        return tuple(self._received)

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Every alert emitted so far (its ``A_i = T(U_i)``)."""
        return tuple(self._alerts)

    @property
    def is_warmed_up(self) -> bool:
        """True once H is defined and the condition can be evaluated."""
        return self.histories.is_defined

    # -- operation -----------------------------------------------------------
    def ingest(self, update: Update) -> Alert | None:
        """Incorporate one update; return the alert it triggered, if any.

        Updates for variables outside the condition's variable set are
        ignored entirely (not recorded in ``received``): the CE would not
        have subscribed to those DMs.
        """
        history = self.histories.history_for(update.varname)
        if history is None:
            return None
        history.push(update)
        self._received.append(update)
        if not self._defined:
            if not self.histories.is_defined:
                # H is undefined while fewer than `degree` updates have
                # arrived (§2): the condition cannot be evaluated yet.
                return None
            self._defined = True
        if not self.condition.evaluate(self.histories):
            return None
        alert = Alert(self.condition.name, self.histories.snapshot(), self.source)
        self._alerts.append(alert)
        return alert

    def ingest_all(self, updates: Iterable[Update]) -> list[Alert]:
        """Feed a whole trace; return the alerts it produced, in order."""
        produced = []
        for update in updates:
            alert = self.ingest(update)
            if alert is not None:
                produced.append(alert)
        return produced

    def reset(self) -> None:
        """Clear all state, as if the evaluator had just started."""
        self.histories = HistorySet(self.condition.degrees)
        self._received.clear()
        self._alerts.clear()
        self._defined = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.source or "CE"
        return (
            f"<ConditionEvaluator {label} cond={self.condition.name} "
            f"received={len(self._received)} alerts={len(self._alerts)}>"
        )
