"""JSON serialization for traces, alerts and counterexamples.

Runs are reproducible from ``(seed, config)``, but the interesting
artifacts — a violating trace pair, a minimized counterexample, a
recorded workload — deserve to outlive the process.  This module gives
every such artifact a stable JSON form:

* updates and update traces (:func:`update_to_json` / :func:`trace_to_json`);
* alerts with their history snapshots (:func:`alert_to_json`);
* :class:`~repro.analysis.witness.Counterexample` bundles, including the
  condition *when it was built from text or is a canonical paper
  condition* (conditions defined by arbitrary Python predicates cannot be
  serialised; attempting to raises, loudly).

All loaders validate shape and re-derive invariants (history ordering,
seqno positivity) through the normal constructors, so a corrupted file
fails the same way malformed data would anywhere else in the library.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Any

from repro.analysis.witness import Counterexample
from repro.core.alert import Alert
from repro.core.condition import Condition, ExpressionCondition
from repro.core.history import HistorySnapshot
from repro.core.parser import parse_condition
from repro.core.update import Update

__all__ = [
    "update_to_json",
    "update_from_json",
    "trace_to_json",
    "trace_from_json",
    "alert_to_json",
    "alert_from_json",
    "alert_canonical_line",
    "condition_to_json",
    "condition_from_json",
    "counterexample_to_json",
    "counterexample_from_json",
    "dump_counterexample",
    "load_counterexample",
]


# -- updates -----------------------------------------------------------------

def update_to_json(update: Update) -> dict[str, Any]:
    return {"var": update.varname, "seqno": update.seqno, "value": update.value}


def update_from_json(data: dict[str, Any]) -> Update:
    return Update(str(data["var"]), int(data["seqno"]), float(data["value"]))


def trace_to_json(trace: Sequence[Update]) -> list[dict[str, Any]]:
    return [update_to_json(u) for u in trace]


def trace_from_json(data: Sequence[dict[str, Any]]) -> list[Update]:
    return [update_from_json(entry) for entry in data]


# -- alerts ------------------------------------------------------------------

def alert_to_json(alert: Alert) -> dict[str, Any]:
    return {
        "condname": alert.condname,
        "source": alert.source,
        "histories": {
            var: trace_to_json(alert.histories[var])
            for var in alert.histories.variables
        },
    }


def alert_from_json(data: dict[str, Any]) -> Alert:
    histories = HistorySnapshot(
        {
            var: tuple(trace_from_json(entries))
            for var, entries in data["histories"].items()
        }
    )
    return Alert(str(data["condname"]), histories, str(data.get("source", "")))


def alert_canonical_line(alert: Alert) -> str:
    """One canonical JSON line per alert — the byte-identity carrier.

    Sorted keys, no whitespace: two alert sequences are byte-identical
    under this rendering iff they agree on condition name, source CE and
    every ``(seqno, value)`` history entry.  The service conformance
    harness (:mod:`repro.service`) frames these lines to compare a live
    runtime's displayed output against the simulator's.
    """
    return json.dumps(alert_to_json(alert), sort_keys=True, separators=(",", ":"))


# -- conditions ----------------------------------------------------------------

def expression_to_text(node) -> str:
    """Render an expression AST as parser-compatible text.

    The inverse of :func:`repro.core.parser.parse_expression`: walking the
    AST directly (rather than munging ``repr``) guarantees the round trip.
    """
    from repro.core import expressions as ex

    if isinstance(node, ex.Const):
        return f"{node.value:g}"
    if isinstance(node, ex.FieldRef):
        return f"H[{node.varname!r}][{node.index}].{node.fieldname}"
    if isinstance(node, ex.BinOp):
        return (
            f"({expression_to_text(node.left)} {node.op} "
            f"{expression_to_text(node.right)})"
        )
    if isinstance(node, ex.Neg):
        # Fold a negated literal into the literal itself so the text form
        # is a fixpoint under parse/render (the parser folds "-5" too).
        if isinstance(node.operand, ex.Const):
            return f"{-node.operand.value:g}"
        return f"(-{expression_to_text(node.operand)})"
    if isinstance(node, ex.Abs):
        return f"abs({expression_to_text(node.operand)})"
    if isinstance(node, ex.Compare):
        return (
            f"({expression_to_text(node.left)} {node.op} "
            f"{expression_to_text(node.right)})"
        )
    if isinstance(node, ex.And):
        return (
            f"({expression_to_text(node.left)} and "
            f"{expression_to_text(node.right)})"
        )
    if isinstance(node, ex.Or):
        return (
            f"({expression_to_text(node.left)} or "
            f"{expression_to_text(node.right)})"
        )
    if isinstance(node, ex.Not):
        return f"(not {expression_to_text(node.operand)})"
    raise TypeError(
        f"cannot render {type(node).__name__} as text (boolean constants "
        "have no parser form)"
    )


def condition_to_json(condition: Condition) -> dict[str, Any]:
    """Serialise a condition via its expression text.

    Works for :class:`ExpressionCondition`; opaque predicate conditions
    raise TypeError — they have no faithful textual form.
    """
    if not isinstance(condition, ExpressionCondition):
        raise TypeError(
            f"cannot serialise {type(condition).__name__}: only expression "
            "conditions have a textual form"
        )
    return {
        "name": condition.name,
        "expression": expression_to_text(condition.expression),
        "conservative": condition._conservative,
    }


def condition_from_json(data: dict[str, Any]) -> ExpressionCondition:
    return parse_condition(
        str(data["name"]),
        str(data["expression"]),
        conservative=bool(data.get("conservative", False)),
    )


# -- counterexamples -----------------------------------------------------------

def counterexample_to_json(counterexample: Counterexample) -> dict[str, Any]:
    return {
        "violation": counterexample.violation,
        "ad_algorithm": counterexample.ad_algorithm,
        "condition": condition_to_json(counterexample.condition),
        "traces": [trace_to_json(trace) for trace in counterexample.traces],
        "arrival_pattern": list(counterexample.arrival_pattern),
        "displayed": [alert_to_json(a) for a in counterexample.displayed],
    }


def counterexample_from_json(data: dict[str, Any]) -> Counterexample:
    return Counterexample(
        condition=condition_from_json(data["condition"]),
        violation=str(data["violation"]),
        traces=tuple(
            tuple(trace_from_json(trace)) for trace in data["traces"]
        ),
        arrival_pattern=tuple(int(i) for i in data["arrival_pattern"]),
        ad_algorithm=str(data["ad_algorithm"]),
        displayed=tuple(alert_from_json(a) for a in data["displayed"]),
    )


def dump_counterexample(counterexample: Counterexample, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(counterexample_to_json(counterexample), handle, indent=2)


def load_counterexample(path: str) -> Counterexample:
    with open(path) as handle:
        return counterexample_from_json(json.load(handle))
