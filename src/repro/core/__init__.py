"""Core model of the paper: updates, histories, conditions, the CE, and T.

This package implements Section 2 (problem specification) and the analysis
model of Section 3: update and alert tuples, the sequence notation of
§2.2, update histories H, the condition expression language with degree
inference, the ConditionEvaluator, and the reference mapping T used by the
property definitions.
"""

from repro.core.alert import Alert, alert_identity_set, make_alert, project_alert_seqnos
from repro.core.condition import (
    Condition,
    ExpressionCondition,
    PredicateCondition,
    c1,
    c2,
    c3,
    cm,
    conservative_guard,
    sharp_price_drop,
    always_true,
)
from repro.core.evaluator import ConditionEvaluator
from repro.core.expressions import H
from repro.core.history import HistorySet, HistorySnapshot, UpdateHistory
from repro.core.reference import (
    apply_T,
    combine_received,
    count_interleavings,
    interleavings,
    is_interleaving_of,
    merge_single_variable,
)
from repro.core.sequences import (
    is_ordered,
    is_subsequence,
    is_strict_supersequence,
    ordered_union,
    phi,
    project_seqnos,
    spanning_set,
)
from repro.core.update import Update, format_trace, parse_trace, parse_update
from repro.core.wire import (
    AlertEncoding,
    ChecksumAD1,
    WireAlert,
    checksum_histories,
    encode_alert,
    minimum_encoding,
)

__all__ = [
    "Alert",
    "AlertEncoding",
    "ChecksumAD1",
    "WireAlert",
    "checksum_histories",
    "encode_alert",
    "minimum_encoding",
    "Condition",
    "ConditionEvaluator",
    "ExpressionCondition",
    "H",
    "HistorySet",
    "HistorySnapshot",
    "PredicateCondition",
    "Update",
    "UpdateHistory",
    "alert_identity_set",
    "always_true",
    "apply_T",
    "c1",
    "c2",
    "c3",
    "cm",
    "combine_received",
    "conservative_guard",
    "count_interleavings",
    "format_trace",
    "interleavings",
    "is_interleaving_of",
    "is_ordered",
    "is_subsequence",
    "is_strict_supersequence",
    "make_alert",
    "merge_single_variable",
    "ordered_union",
    "parse_trace",
    "parse_update",
    "phi",
    "project_alert_seqnos",
    "project_seqnos",
    "sharp_price_drop",
    "spanning_set",
]
