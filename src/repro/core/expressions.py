"""Condition expression AST (Section 2).

A condition is "an expression defined on values of real world variables"
that evaluates to true or false over the update histories H.  This module
provides a small embedded DSL for writing such expressions in the paper's
own notation::

    from repro.core.expressions import H

    c1_expr = H.x[0].value > 3000
    c2_expr = H.x[0].value - H.x[-1].value > 200
    c3_expr = c2_expr & (H.x[0].seqno == H.x[-1].seqno + 1)
    cm_expr = abs(H.x[0].value - H.y[0].value) > 100

Expression objects know how to

* **evaluate** against an :class:`~repro.core.history.HistorySet` or a
  frozen :class:`~repro.core.history.HistorySnapshot`;
* **infer degrees**: the degree of the expression with respect to variable
  x is ``max(-index) + 1`` over every ``H.x[index]`` reference — exactly
  the paper's rule that "a condition using only Hx[0] and Hx[-2] is of
  degree 3" (§2);
* **render** themselves readably for logs and reports.

The AST deliberately has no clock, no aggregation over unbounded history
and no external state, enforcing the paper's exclusions (§2: no infinite
degree, no watermark-style CE state, no notion of time).
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Mapping
from typing import Union

from repro.core.history import HistorySet, HistorySnapshot
from repro.core.update import Update

__all__ = [
    "Expr",
    "BoolExpr",
    "Const",
    "FieldRef",
    "UpdateRef",
    "VariableRef",
    "HistoryNamespace",
    "H",
    "Compare",
    "BinOp",
    "Neg",
    "Abs",
    "And",
    "Or",
    "Not",
    "BoolConst",
]

Numeric = Union[int, float]


def _resolve(histories: HistorySet | HistorySnapshot, var: str, index: int) -> Update:
    """Fetch ``H[var][index]`` from either a live history set or a snapshot."""
    if isinstance(histories, HistorySnapshot):
        # Snapshot tuples are most-recent-first: index 0 -> [0], -1 -> [1]...
        entries = histories[var]
        offset = -index
        if offset >= len(entries):
            raise LookupError(
                f"snapshot for {var!r} has only {len(entries)} entries, "
                f"cannot resolve index {index}"
            )
        return entries[offset]
    return histories[var][index]


class Expr:
    """Base class for numeric-valued expression nodes.

    Arithmetic and comparison operators build larger ASTs; comparisons
    produce :class:`BoolExpr` nodes.
    """

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        raise NotImplementedError

    def degrees(self) -> dict[str, int]:
        """Per-variable degree requirement of this (sub)expression."""
        acc: dict[str, int] = {}
        self._collect_degrees(acc)
        return acc

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------
    def __add__(self, other: "Expr | Numeric") -> "BinOp":
        return BinOp("+", self, _lift(other))

    def __radd__(self, other: Numeric) -> "BinOp":
        return BinOp("+", _lift(other), self)

    def __sub__(self, other: "Expr | Numeric") -> "BinOp":
        return BinOp("-", self, _lift(other))

    def __rsub__(self, other: Numeric) -> "BinOp":
        return BinOp("-", _lift(other), self)

    def __mul__(self, other: "Expr | Numeric") -> "BinOp":
        return BinOp("*", self, _lift(other))

    def __rmul__(self, other: Numeric) -> "BinOp":
        return BinOp("*", _lift(other), self)

    def __truediv__(self, other: "Expr | Numeric") -> "BinOp":
        return BinOp("/", self, _lift(other))

    def __rtruediv__(self, other: Numeric) -> "BinOp":
        return BinOp("/", _lift(other), self)

    def __neg__(self) -> "Neg":
        return Neg(self)

    def __abs__(self) -> "Abs":
        return Abs(self)

    def __gt__(self, other: "Expr | Numeric") -> "Compare":
        return Compare(">", self, _lift(other))

    def __ge__(self, other: "Expr | Numeric") -> "Compare":
        return Compare(">=", self, _lift(other))

    def __lt__(self, other: "Expr | Numeric") -> "Compare":
        return Compare("<", self, _lift(other))

    def __le__(self, other: "Expr | Numeric") -> "Compare":
        return Compare("<=", self, _lift(other))

    # NOTE: == and != intentionally build Compare nodes; expression objects
    # therefore do not support useful value equality. Tests compare renders.
    def __eq__(self, other: object):  # type: ignore[override]
        return Compare("==", self, _lift(other))  # type: ignore[arg-type]

    def __ne__(self, other: object):  # type: ignore[override]
        return Compare("!=", self, _lift(other))  # type: ignore[arg-type]

    __hash__ = None  # type: ignore[assignment]


def _lift(value: "Expr | Numeric") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {type(value).__name__} in a condition expression")


class Const(Expr):
    """A numeric literal."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        return self.value

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        pass

    def __repr__(self) -> str:
        return f"{self.value:g}"


class FieldRef(Expr):
    """``H.x[index].value`` or ``H.x[index].seqno`` — the AST leaves."""

    def __init__(self, varname: str, index: int, fieldname: str) -> None:
        if index > 0:
            raise ValueError("history indices must be 0 or negative")
        if fieldname not in ("value", "seqno"):
            raise ValueError(f"unknown update field {fieldname!r}")
        self.varname = varname
        self.index = index
        self.fieldname = fieldname
        self._get_field = operator.attrgetter(fieldname)

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        update = _resolve(histories, self.varname, self.index)
        return float(self._get_field(update))

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        needed = -self.index + 1
        acc[self.varname] = max(acc.get(self.varname, 0), needed)

    def __repr__(self) -> str:
        return f"H{self.varname}[{self.index}].{self.fieldname}"


class UpdateRef:
    """``H.x[index]`` — exposes ``.value`` and ``.seqno`` field refs."""

    def __init__(self, varname: str, index: int) -> None:
        if index > 0:
            raise ValueError(
                "history indices are 0 or negative (Hx[0] is the most recent)"
            )
        self._varname = varname
        self._index = index

    @property
    def value(self) -> FieldRef:
        return FieldRef(self._varname, self._index, "value")

    @property
    def seqno(self) -> FieldRef:
        return FieldRef(self._varname, self._index, "seqno")

    def __repr__(self) -> str:
        return f"H{self._varname}[{self._index}]"


class VariableRef:
    """``H.x`` — indexable into :class:`UpdateRef` slots."""

    def __init__(self, varname: str) -> None:
        self._varname = varname

    def __getitem__(self, index: int) -> UpdateRef:
        return UpdateRef(self._varname, index)

    def __repr__(self) -> str:
        return f"H{self._varname}"


class HistoryNamespace:
    """The ``H`` entry point: ``H.x[0].value``, ``H["price"][-1].seqno``."""

    def __getattr__(self, varname: str) -> VariableRef:
        if varname.startswith("_"):
            raise AttributeError(varname)
        return VariableRef(varname)

    def __getitem__(self, varname: str) -> VariableRef:
        return VariableRef(varname)


H = HistoryNamespace()


class BinOp(Expr):
    """Arithmetic node: +, -, *, /."""

    _OPS: Mapping[str, Callable[[float, float], float]] = {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
        "/": operator.truediv,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self._fn = self._OPS[op]
        self.left = left
        self.right = right

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        return self._fn(
            self.left.evaluate(histories), self.right.evaluate(histories)
        )

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.left._collect_degrees(acc)
        self.right._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Neg(Expr):
    """Unary minus."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        return -self.operand.evaluate(histories)

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.operand._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


class Abs(Expr):
    """Absolute value, for conditions like ``|Hx[0].value - Hy[0].value|``."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> float:
        return abs(self.operand.evaluate(histories))

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.operand._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"|{self.operand!r}|"


class BoolExpr:
    """Base class for boolean-valued nodes; supports ``&``, ``|``, ``~``."""

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        raise NotImplementedError

    def degrees(self) -> dict[str, int]:
        acc: dict[str, int] = {}
        self._collect_degrees(acc)
        return acc

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "And":
        return And(self, _lift_bool(other))

    def __or__(self, other: "BoolExpr") -> "Or":
        return Or(self, _lift_bool(other))

    def __invert__(self) -> "Not":
        return Not(self)


def _lift_bool(value: "BoolExpr | bool") -> BoolExpr:
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    raise TypeError(f"cannot use {type(value).__name__} as a boolean expression")


class BoolConst(BoolExpr):
    """A boolean literal (used when composing with plain True/False)."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return self.value

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        pass

    def __repr__(self) -> str:
        return "true" if self.value else "false"


class Compare(BoolExpr):
    """Comparison node: >, >=, <, <=, ==, !=."""

    _OPS: Mapping[str, Callable[[float, float], bool]] = {
        ">": operator.gt,
        ">=": operator.ge,
        "<": operator.lt,
        "<=": operator.le,
        "==": operator.eq,
        "!=": operator.ne,
    }

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self._fn = self._OPS[op]
        self.left = left
        self.right = right

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return self._fn(
            self.left.evaluate(histories), self.right.evaluate(histories)
        )

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.left._collect_degrees(acc)
        self.right._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(BoolExpr):
    def __init__(self, left: BoolExpr, right: BoolExpr) -> None:
        self.left = left
        self.right = right

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return self.left.evaluate(histories) and self.right.evaluate(histories)

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.left._collect_degrees(acc)
        self.right._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(BoolExpr):
    def __init__(self, left: BoolExpr, right: BoolExpr) -> None:
        self.left = left
        self.right = right

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return self.left.evaluate(histories) or self.right.evaluate(histories)

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.left._collect_degrees(acc)
        self.right._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(BoolExpr):
    def __init__(self, operand: BoolExpr) -> None:
        self.operand = operand

    def evaluate(self, histories: HistorySet | HistorySnapshot) -> bool:
        return not self.operand.evaluate(histories)

    def _collect_degrees(self, acc: dict[str, int]) -> None:
        self.operand._collect_degrees(acc)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"
