"""The scenario matrix of the paper's tables.

Tables 1–3 classify systems along two axes: front links lossless or lossy,
and the condition non-historical / historical-conservative /
historical-aggressive.  A :class:`Scenario` bundles one row of that
matrix — a condition factory, a workload factory and a front-link loss
probability — so the table benchmarks can iterate
``for row in ROW_ORDER: for algorithm in ...: run trials``.

Single-variable rows use the paper's own conditions (c1, c2, c3); the
multi-variable rows of Table 3 use cm (Theorem 10) for the non-historical
cases and a two-variable delta condition, aggressive or conservative in
x, for the historical ones.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.components.system import RunResult, SystemConfig, run_system
from repro.core.condition import Condition, ExpressionCondition, c1, c2, c3, cm
from repro.core.expressions import H
from repro.simulation.failures import CrashSchedule
from repro.simulation.network import DelayModel, PerLinkSkewDelay
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import (
    bursty_readings,
    correlated_updates,
    paired_reactors,
    rising_runs,
    threshold_crossers,
    zipfian_workload,
)

__all__ = [
    "Scenario",
    "ROW_ORDER",
    "DIVERSITY_ROWS",
    "SINGLE_VARIABLE_SCENARIOS",
    "MULTI_VARIABLE_SCENARIOS",
    "cm_historical",
    "run_scenario",
    "fault_horizon",
    "FAULT_HORIZON_SLACK",
]

#: Row order of Tables 1-3.  The diversity rows below (bursty, zipfian,
#: correlated) are deliberately *not* listed here: the paper's tables —
#: and their golden fixtures — iterate only these four rows, while chaos
#: sweeps, quality sweeps and the fuzzer draw from the full matrices.
ROW_ORDER = ("lossless", "non-historical", "conservative", "aggressive")

#: Extra traffic-shape rows (ROADMAP item 3).  "bursty" exists in both
#: matrices; "zipfian" and "correlated" are inherently multi-variable.
DIVERSITY_ROWS = ("bursty", "zipfian", "correlated")

#: Loss probability used for the lossy rows (matches nothing in the paper,
#: which is parameter-free; chosen so CE inputs diverge in most trials).
DEFAULT_LOSS = 0.3

Workload = dict[str, list[tuple[float, float]]]
WorkloadFactory = Callable[[RandomStreams, int], Workload]
ConditionFactory = Callable[[], Condition]


@dataclass(frozen=True)
class Scenario:
    """One row of the table matrix."""

    key: str
    label: str
    multi_variable: bool
    front_loss: float
    condition_factory: ConditionFactory
    workload_factory: WorkloadFactory
    #: Optional per-run front-link delay model factory.  Multi-variable
    #: scenarios use PerLinkSkewDelay so different CEs observe genuinely
    #: different x/y interleavings (Theorem 10 / Lemma 6); a factory
    #: because the skew model keeps per-link state and must be fresh per
    #: run.  None = the SystemConfig default.
    front_delay_factory: Callable[[], "DelayModel"] | None = None

    def make_condition(self) -> Condition:
        return self.condition_factory()

    def make_workload(self, streams: RandomStreams, n_updates: int) -> Workload:
        return self.workload_factory(streams, n_updates)


def cm_historical(conservative: bool) -> ExpressionCondition:
    """A two-variable condition, historical (degree 2) in x.

    "x has risen more than 120 since the last x reading received AND the
    two reactors differ by more than 80 degrees."  The conservative
    variant additionally requires the two x readings to be consecutive —
    the c3-style guard.
    """
    expr = (H.x[0].value - H.x[-1].value > 120.0) & (
        abs(H.x[0].value - H.y[0].value) > 80.0
    )
    if conservative:
        expr = expr & (H.x[0].seqno == H.x[-1].seqno + 1)
        return ExpressionCondition("cm_cons", expr, conservative=True)
    return ExpressionCondition("cm_aggr", expr, conservative=False)


# -- workload factories ------------------------------------------------------

def _single_threshold(streams: RandomStreams, n: int) -> Workload:
    return {"x": threshold_crossers(streams.stream("workload/x"), n)}


def _single_rising(streams: RandomStreams, n: int) -> Workload:
    return {"x": rising_runs(streams.stream("workload/x"), n)}


def _paired(streams: RandomStreams, n: int) -> Workload:
    return {
        "x": paired_reactors(streams.stream("workload/x"), n, phase=0.0),
        "y": paired_reactors(streams.stream("workload/y"), n, phase=40.0),
    }


def _rising_plus_partner(streams: RandomStreams, n: int) -> Workload:
    return {
        "x": rising_runs(streams.stream("workload/x"), n, rise=170.0),
        "y": paired_reactors(streams.stream("workload/y"), n, base=1100.0),
    }


def _single_bursty(streams: RandomStreams, n: int) -> Workload:
    return {"x": bursty_readings(streams.stream("workload/x"), n)}


def _multi_bursty(streams: RandomStreams, n: int) -> Workload:
    return {
        "x": bursty_readings(streams.stream("workload/x"), n),
        "y": bursty_readings(
            streams.stream("workload/y"), n, idle_interval=30.0
        ),
    }


def _zipfian_pair(streams: RandomStreams, n: int) -> Workload:
    return zipfian_workload(streams.stream("workload/zipf"), n, ("x", "y"))


def _correlated_pair(streams: RandomStreams, n: int) -> Workload:
    return correlated_updates(streams.stream("workload/corr"), n, ("x", "y"))


SINGLE_VARIABLE_SCENARIOS: Mapping[str, Scenario] = {
    "lossless": Scenario(
        key="lossless",
        label="Lossless links (any condition)",
        multi_variable=False,
        front_loss=0.0,
        condition_factory=lambda: c2(),
        workload_factory=_single_rising,
    ),
    "non-historical": Scenario(
        key="non-historical",
        label="Lossy, non-historical condition (c1)",
        multi_variable=False,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: c1(),
        workload_factory=_single_threshold,
    ),
    "conservative": Scenario(
        key="conservative",
        label="Lossy, historical conservative (c3)",
        multi_variable=False,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: c3(),
        workload_factory=_single_rising,
    ),
    "aggressive": Scenario(
        key="aggressive",
        label="Lossy, historical aggressive (c2)",
        multi_variable=False,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: c2(),
        workload_factory=_single_rising,
    ),
    "bursty": Scenario(
        key="bursty",
        label="Lossy, bursty on/off traffic (c1)",
        multi_variable=False,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: c1(),
        workload_factory=_single_bursty,
    ),
}


MULTI_VARIABLE_SCENARIOS: Mapping[str, Scenario] = {
    "lossless": Scenario(
        key="lossless",
        label="Lossless links, two variables (cm)",
        multi_variable=True,
        front_loss=0.0,
        condition_factory=lambda: cm(),
        workload_factory=_paired,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "non-historical": Scenario(
        key="non-historical",
        label="Lossy, non-historical two-variable (cm)",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm(),
        workload_factory=_paired,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "conservative": Scenario(
        key="conservative",
        label="Lossy, historical conservative two-variable",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm_historical(conservative=True),
        workload_factory=_rising_plus_partner,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "aggressive": Scenario(
        key="aggressive",
        label="Lossy, historical aggressive two-variable",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm_historical(conservative=False),
        workload_factory=_rising_plus_partner,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "bursty": Scenario(
        key="bursty",
        label="Lossy, bursty two-variable traffic (cm)",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm(),
        workload_factory=_multi_bursty,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "zipfian": Scenario(
        key="zipfian",
        label="Lossy, zipfian variable popularity (cm)",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm(),
        workload_factory=_zipfian_pair,
        front_delay_factory=PerLinkSkewDelay,
    ),
    "correlated": Scenario(
        key="correlated",
        label="Lossy, correlated co-arriving updates (cm)",
        multi_variable=True,
        front_loss=DEFAULT_LOSS,
        condition_factory=lambda: cm(),
        workload_factory=_correlated_pair,
        front_delay_factory=PerLinkSkewDelay,
    ),
}


#: Fault windows are drawn over the workload span plus this slack, so the
#: delivery tail after the last reading still sees faults.
FAULT_HORIZON_SLACK = 80.0


def fault_horizon(n_updates: int) -> float:
    """The time span a scenario's fault plan is drawn over."""
    return n_updates * 10.0 + FAULT_HORIZON_SLACK


def run_scenario(
    scenario: Scenario,
    ad_algorithm: str,
    seed: int,
    n_updates: int = 30,
    replication: int = 2,
    crash_schedules: Mapping[int, CrashSchedule] | None = None,
    tracer: object | None = None,
    faults: object | None = None,
    kernel: str = "array",
    membership: object | None = None,
    sharding: object | None = None,
) -> RunResult:
    """Run one randomized trial of a scenario under an AD algorithm.

    ``kernel`` selects the trial executor (``"array"`` — the default
    struct-of-arrays fast path — or ``"object"``); the two are
    differentially tested to produce identical results and bit-identical
    traces, so the choice only affects speed.

    ``tracer`` (see :mod:`repro.observability`) observes the run; tracing
    never perturbs the simulation, so traced and untraced runs of the same
    ``(scenario, seed)`` produce identical results.

    ``faults`` (a :class:`~repro.faults.plan.FaultProfile`) materializes a
    concrete fault plan from the run's own named RNG streams and folds it
    into the config.  Fault draws come from dedicated ``faults/...``
    streams, so a clean profile (or ``None``) leaves the run bit-identical
    to the faults-free path.

    ``membership`` (a :class:`~repro.membership.MembershipConfig`) turns
    crashes into a detect → rejoin → catch-up lifecycle; the plan is
    derived analytically from the materialized crash schedules, so it
    consumes no randomness and composes with ``faults``.

    ``sharding`` (a :class:`~repro.sharding.ring.ShardConfig`) places the
    run's condition on the consistent-hash ring and attaches the
    resulting :class:`~repro.sharding.router.ShardAssignment` to the
    result (``run.sharding``).  Sharding is an execution-layout choice
    with no semantic surface — the conformance suite holds every sharded
    configuration byte-identical to the single-set runtimes — so the
    simulated event schedule is untouched and sharded runs
    record→replay bit-identically on both kernels.
    """
    streams = RandomStreams(seed)
    condition = scenario.make_condition()
    workload = scenario.make_workload(streams, n_updates)
    config_kwargs = {}
    if scenario.front_delay_factory is not None:
        config_kwargs["front_delay"] = scenario.front_delay_factory()
    config = SystemConfig(
        replication=replication,
        ad_algorithm=ad_algorithm,
        front_loss=scenario.front_loss,
        crash_schedules=dict(crash_schedules or {}),
        membership=membership,
        **config_kwargs,
    )
    if faults is not None:
        plan = faults.materialize(
            streams,
            horizon=fault_horizon(n_updates),
            replication=replication,
            variables=sorted(workload),
        )
        config = plan.apply_to(config)
    run = run_system(
        condition, workload, config, seed=seed, tracer=tracer, kernel=kernel
    )
    if sharding is not None:
        from dataclasses import replace as dc_replace

        from repro.sharding.router import assign_condition

        run = dc_replace(run, sharding=assign_condition(condition, sharding))
    return run
