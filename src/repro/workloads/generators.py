"""Workload value-process generators.

A workload is a per-variable schedule of ``(time, value)`` readings for
the Data Monitors.  The generators here produce the value dynamics the
paper's examples describe — reactor temperatures around a 3000-degree
limit, stock quotes with sharp drops — tuned so the canonical conditions
(c1, c2/c3, cm, sharp_price_drop) trigger often enough that randomized
trials meaningfully exercise the AD algorithms.

All generators draw from an explicitly passed ``random.Random`` so that
workloads are reproducible from a run seed.
"""

from __future__ import annotations

from random import Random

__all__ = [
    "evenly_spaced",
    "reactor_temperatures",
    "threshold_crossers",
    "event_impulses",
    "rising_runs",
    "stock_quotes",
    "paired_reactors",
    "bursty_readings",
    "zipf_weights",
    "zipf_counts",
    "zipfian_workload",
    "correlated_updates",
]

Readings = list[tuple[float, float]]


def evenly_spaced(values: list[float], interval: float = 10.0, start: float = 0.0) -> Readings:
    """Attach evenly spaced timestamps to a list of values."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    return [(start + i * interval, v) for i, v in enumerate(values)]


def reactor_temperatures(
    rng: Random,
    n: int,
    start: float = 2900.0,
    drift_low: float = -260.0,
    drift_high: float = 320.0,
    floor: float = 2300.0,
    ceiling: float = 3700.0,
    interval: float = 10.0,
) -> Readings:
    """A reactor temperature random walk around the 3000-degree limit.

    Steps are uniform in [drift_low, drift_high] and clamped to
    [floor, ceiling].  With the defaults the walk crosses 3000 regularly
    (exercising c1) and makes >200-degree jumps often (exercising c2/c3).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    values: list[float] = []
    current = start
    for _ in range(n):
        current = min(max(current + rng.uniform(drift_low, drift_high), floor), ceiling)
        values.append(round(current, 1))
    return evenly_spaced(values, interval)


def threshold_crossers(
    rng: Random,
    n: int,
    threshold: float = 3000.0,
    margin: float = 150.0,
    above_prob: float = 0.5,
    interval: float = 10.0,
) -> Readings:
    """Values that independently land above/below a threshold each step.

    Maximises state flips for non-historical conditions like c1: each
    reading is above the threshold with probability ``above_prob``.
    """
    values = []
    for _ in range(n):
        if rng.random() < above_prob:
            values.append(round(threshold + rng.uniform(1.0, margin), 1))
        else:
            values.append(round(threshold - rng.uniform(1.0, margin), 1))
    return evenly_spaced(values, interval)


def rising_runs(
    rng: Random,
    n: int,
    base: float = 1000.0,
    rise: float = 250.0,
    run_prob: float = 0.5,
    reset_prob: float = 0.3,
    interval: float = 10.0,
) -> Readings:
    """Staircase dynamics for delta conditions (c2/c3).

    Each step either climbs by about ``rise`` (making the +200 condition
    true), plateaus, or resets downwards — so histories with and without
    gaps both hit the trigger region frequently.
    """
    values = []
    current = base
    for _ in range(n):
        roll = rng.random()
        if roll < run_prob:
            current += rise * rng.uniform(0.85, 1.4)
        elif roll < run_prob + reset_prob:
            current -= rise * rng.uniform(1.0, 3.0)
        else:
            current += rng.uniform(-40.0, 40.0)
        values.append(round(current, 1))
    return evenly_spaced(values, interval)


def stock_quotes(
    rng: Random,
    n: int,
    start: float = 100.0,
    volatility: float = 0.05,
    crash_prob: float = 0.12,
    crash_size: float = 0.35,
    interval: float = 10.0,
) -> Readings:
    """Multiplicative stock-quote dynamics with occasional sharp drops.

    Most steps move by ±``volatility``; with probability ``crash_prob``
    the quote collapses by about ``crash_size`` — the ">20% drop between
    consecutive quotes" events of the introduction's example.
    """
    values = []
    price = start
    for _ in range(n):
        if rng.random() < crash_prob:
            price *= 1.0 - crash_size * rng.uniform(0.7, 1.3)
        else:
            price *= 1.0 + rng.uniform(-volatility, volatility)
        price = max(price, 1.0)
        values.append(round(price, 2))
    return evenly_spaced(values, interval)


def event_impulses(
    rng: Random,
    n: int,
    event_prob: float = 0.15,
    interval: float = 10.0,
) -> Readings:
    """Binary event stream: the introduction's missile-detection example.

    Each reading is 1.0 ("missile fired" detected by the satellite) with
    probability ``event_prob`` and 0.0 otherwise.  Pair with the
    non-historical condition ``H.x[0].value == 1`` — every event produces
    one alert per CE, which is exactly the duplicate-flood AD-1 exists to
    suppress ("the user will get confused about the exact number of
    missiles fired").
    """
    if not 0.0 <= event_prob <= 1.0:
        raise ValueError(f"event_prob must be in [0,1], got {event_prob}")
    values = [1.0 if rng.random() < event_prob else 0.0 for _ in range(n)]
    return evenly_spaced(values, interval)


def paired_reactors(
    rng: Random,
    n: int,
    base: float = 1000.0,
    sway: float = 90.0,
    divergence_prob: float = 0.35,
    divergence: float = 160.0,
    interval: float = 10.0,
    phase: float = 0.0,
) -> Readings:
    """One reactor of a correlated pair (Theorem 10's two-reactor setup).

    Values wander near ``base``; with probability ``divergence_prob`` a
    reading diverges by about ``divergence`` — pushing |x − y| past the
    100-degree gap of condition cm.  Generate each variable with its own
    rng stream and a different ``phase`` offset.
    """
    values = []
    current = base + phase
    for _ in range(n):
        current += rng.uniform(-sway, sway)
        if rng.random() < divergence_prob:
            current += rng.choice([-1.0, 1.0]) * divergence * rng.uniform(0.8, 1.5)
        # Mean-revert gently so the pair stays comparable.
        current += (base + phase - current) * 0.25
        values.append(round(current, 1))
    return evenly_spaced(values, interval)


def bursty_readings(
    rng: Random,
    n: int,
    burst_mean: int = 4,
    burst_interval: float = 2.0,
    idle_interval: float = 40.0,
    threshold: float = 3000.0,
    margin: float = 150.0,
) -> Readings:
    """On/off traffic: tight bursts of readings separated by long idles.

    Real monitored sources are rarely metronomic — an instrument streams
    while an episode is in progress and goes quiet between episodes.
    Readings inside a burst are ``burst_interval`` apart (well under any
    delay spread, so replica interleavings genuinely scramble); bursts
    are separated by ``idle_interval``.  Burst lengths are geometric
    with mean ``burst_mean``.  Values flip around ``threshold`` like
    :func:`threshold_crossers`, so c1-family conditions keep firing.

    The duty cycle is bounded: with ``k`` readings in a burst the burst
    spans ``(k-1) * burst_interval``, so the fraction of the total span
    inside bursts is at most ``burst_interval / (burst_interval +
    idle_interval / burst_mean)`` in expectation — bursty by
    construction, which the generator tests pin.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if burst_mean < 1:
        raise ValueError(f"burst_mean must be >= 1, got {burst_mean}")
    if burst_interval <= 0 or idle_interval <= 0:
        raise ValueError("intervals must be positive")
    readings: Readings = []
    time = 0.0
    left_in_burst = 0
    continue_prob = 1.0 - 1.0 / burst_mean
    for i in range(n):
        if i == 0:
            left_in_burst = 1
        elif left_in_burst > 0 and rng.random() < continue_prob:
            time += burst_interval
        else:
            time += idle_interval
            left_in_burst = 0
        left_in_burst += 1
        if rng.random() < 0.5:
            value = threshold + rng.uniform(1.0, margin)
        else:
            value = threshold - rng.uniform(1.0, margin)
        readings.append((round(time, 3), round(value, 1)))
    return readings


def zipf_weights(k: int, exponent: float = 1.2) -> list[float]:
    """Normalized Zipf popularity over ``k`` ranks: P(rank r) ∝ r^-s."""
    if k < 1:
        raise ValueError(f"need at least one rank, got {k}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    raw = [(rank + 1) ** -exponent for rank in range(k)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_counts(rng: Random, n: int, k: int, exponent: float = 1.2) -> list[int]:
    """How many of ``n`` events land on each of ``k`` Zipf-ranked sources.

    Multinomial sampling over :func:`zipf_weights` — the head ranks get
    most of the traffic, the tail starves, which is the popularity shape
    of real tenant populations.
    """
    counts = [0] * k
    weights = zipf_weights(k, exponent)
    bounds = []
    acc = 0.0
    for w in weights:
        acc += w
        bounds.append(acc)
    for _ in range(n):
        roll = rng.random()
        for rank, bound in enumerate(bounds):
            if roll < bound:
                counts[rank] += 1
                break
        else:  # float summation tail
            counts[-1] += 1
    return counts


def zipfian_workload(
    rng: Random,
    n: int,
    variables: tuple[str, ...] = ("x", "y"),
    exponent: float = 1.2,
    interval: float = 10.0,
    threshold: float = 3000.0,
    margin: float = 150.0,
) -> dict[str, Readings]:
    """``n`` update slots split across variables by Zipf popularity.

    Each slot ``i`` (at time ``i * interval``) is assigned to one
    variable, drawn from the Zipf law over the variables' rank order —
    so the head variable updates often and the tail rarely, skewing the
    cross-variable interleavings the multi-variable checkers explore.
    Every variable is guaranteed at least one reading (conditions need
    defined histories), taken from its first assigned slot or prepended
    at the head of the schedule.
    """
    if not variables:
        raise ValueError("need at least one variable")
    per_var: dict[str, Readings] = {var: [] for var in variables}

    def value() -> float:
        if rng.random() < 0.5:
            return round(threshold + rng.uniform(1.0, margin), 1)
        return round(threshold - rng.uniform(1.0, margin), 1)

    weights = zipf_weights(len(variables), exponent)
    bounds = []
    acc = 0.0
    for w in weights:
        acc += w
        bounds.append(acc)
    for slot in range(n):
        roll = rng.random()
        choice = len(variables) - 1
        for rank, bound in enumerate(bounds):
            if roll < bound:
                choice = rank
                break
        per_var[variables[choice]].append((slot * interval, value()))
    # Starved variables still need one reading to define H.
    for var in variables:
        if not per_var[var]:
            per_var[var].insert(0, (0.0, value()))
    return per_var


def correlated_updates(
    rng: Random,
    n: int,
    variables: tuple[str, ...] = ("x", "y"),
    co_arrival_prob: float = 0.8,
    lag: float = 0.5,
    base: float = 1000.0,
    sway: float = 90.0,
    divergence_prob: float = 0.35,
    divergence: float = 160.0,
    interval: float = 10.0,
) -> dict[str, Readings]:
    """Correlated multi-variable updates with near-simultaneous arrival.

    The primary variable takes ``n`` readings on the usual cadence; with
    probability ``co_arrival_prob`` each one is echoed on every other
    variable ``lag`` time units later with a correlated value (the same
    excursion plus noise) — two sensors on one physical process.  The
    co-arrival bursts hit the AD's merge window far harder than
    independent streams: both variables' seqnos advance almost at once,
    which is the regime where AD-5/AD-6's cross-variable checks earn
    their keep.  Slots whose echo was skipped stay silent on the
    secondary variables, so their cadence is sparser than the primary's.
    Every variable gets at least one reading (conditions need defined
    histories).
    """
    if not 0.0 <= co_arrival_prob <= 1.0:
        raise ValueError(f"co_arrival_prob must be in [0,1], got {co_arrival_prob}")
    if not variables:
        raise ValueError("need at least one variable")
    primary, *rest = variables
    per_var: dict[str, Readings] = {var: [] for var in variables}
    current = base
    for slot in range(n):
        current += rng.uniform(-sway, sway)
        if rng.random() < divergence_prob:
            current += rng.choice([-1.0, 1.0]) * divergence * rng.uniform(0.8, 1.5)
        current += (base - current) * 0.25
        time = slot * interval
        per_var[primary].append((time, round(current, 1)))
        if rest and rng.random() < co_arrival_prob:
            for k, var in enumerate(rest):
                echo = current + rng.uniform(-0.2, 0.2) * sway
                per_var[var].append((time + lag * (k + 1), round(echo, 1)))
    for var in rest:
        if not per_var[var]:
            per_var[var].insert(0, (0.0, round(base, 1)))
    return per_var
