"""Workload value-process generators.

A workload is a per-variable schedule of ``(time, value)`` readings for
the Data Monitors.  The generators here produce the value dynamics the
paper's examples describe — reactor temperatures around a 3000-degree
limit, stock quotes with sharp drops — tuned so the canonical conditions
(c1, c2/c3, cm, sharp_price_drop) trigger often enough that randomized
trials meaningfully exercise the AD algorithms.

All generators draw from an explicitly passed ``random.Random`` so that
workloads are reproducible from a run seed.
"""

from __future__ import annotations

from random import Random

__all__ = [
    "evenly_spaced",
    "reactor_temperatures",
    "threshold_crossers",
    "event_impulses",
    "rising_runs",
    "stock_quotes",
    "paired_reactors",
]

Readings = list[tuple[float, float]]


def evenly_spaced(values: list[float], interval: float = 10.0, start: float = 0.0) -> Readings:
    """Attach evenly spaced timestamps to a list of values."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    return [(start + i * interval, v) for i, v in enumerate(values)]


def reactor_temperatures(
    rng: Random,
    n: int,
    start: float = 2900.0,
    drift_low: float = -260.0,
    drift_high: float = 320.0,
    floor: float = 2300.0,
    ceiling: float = 3700.0,
    interval: float = 10.0,
) -> Readings:
    """A reactor temperature random walk around the 3000-degree limit.

    Steps are uniform in [drift_low, drift_high] and clamped to
    [floor, ceiling].  With the defaults the walk crosses 3000 regularly
    (exercising c1) and makes >200-degree jumps often (exercising c2/c3).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    values: list[float] = []
    current = start
    for _ in range(n):
        current = min(max(current + rng.uniform(drift_low, drift_high), floor), ceiling)
        values.append(round(current, 1))
    return evenly_spaced(values, interval)


def threshold_crossers(
    rng: Random,
    n: int,
    threshold: float = 3000.0,
    margin: float = 150.0,
    above_prob: float = 0.5,
    interval: float = 10.0,
) -> Readings:
    """Values that independently land above/below a threshold each step.

    Maximises state flips for non-historical conditions like c1: each
    reading is above the threshold with probability ``above_prob``.
    """
    values = []
    for _ in range(n):
        if rng.random() < above_prob:
            values.append(round(threshold + rng.uniform(1.0, margin), 1))
        else:
            values.append(round(threshold - rng.uniform(1.0, margin), 1))
    return evenly_spaced(values, interval)


def rising_runs(
    rng: Random,
    n: int,
    base: float = 1000.0,
    rise: float = 250.0,
    run_prob: float = 0.5,
    reset_prob: float = 0.3,
    interval: float = 10.0,
) -> Readings:
    """Staircase dynamics for delta conditions (c2/c3).

    Each step either climbs by about ``rise`` (making the +200 condition
    true), plateaus, or resets downwards — so histories with and without
    gaps both hit the trigger region frequently.
    """
    values = []
    current = base
    for _ in range(n):
        roll = rng.random()
        if roll < run_prob:
            current += rise * rng.uniform(0.85, 1.4)
        elif roll < run_prob + reset_prob:
            current -= rise * rng.uniform(1.0, 3.0)
        else:
            current += rng.uniform(-40.0, 40.0)
        values.append(round(current, 1))
    return evenly_spaced(values, interval)


def stock_quotes(
    rng: Random,
    n: int,
    start: float = 100.0,
    volatility: float = 0.05,
    crash_prob: float = 0.12,
    crash_size: float = 0.35,
    interval: float = 10.0,
) -> Readings:
    """Multiplicative stock-quote dynamics with occasional sharp drops.

    Most steps move by ±``volatility``; with probability ``crash_prob``
    the quote collapses by about ``crash_size`` — the ">20% drop between
    consecutive quotes" events of the introduction's example.
    """
    values = []
    price = start
    for _ in range(n):
        if rng.random() < crash_prob:
            price *= 1.0 - crash_size * rng.uniform(0.7, 1.3)
        else:
            price *= 1.0 + rng.uniform(-volatility, volatility)
        price = max(price, 1.0)
        values.append(round(price, 2))
    return evenly_spaced(values, interval)


def event_impulses(
    rng: Random,
    n: int,
    event_prob: float = 0.15,
    interval: float = 10.0,
) -> Readings:
    """Binary event stream: the introduction's missile-detection example.

    Each reading is 1.0 ("missile fired" detected by the satellite) with
    probability ``event_prob`` and 0.0 otherwise.  Pair with the
    non-historical condition ``H.x[0].value == 1`` — every event produces
    one alert per CE, which is exactly the duplicate-flood AD-1 exists to
    suppress ("the user will get confused about the exact number of
    missiles fired").
    """
    if not 0.0 <= event_prob <= 1.0:
        raise ValueError(f"event_prob must be in [0,1], got {event_prob}")
    values = [1.0 if rng.random() < event_prob else 0.0 for _ in range(n)]
    return evenly_spaced(values, interval)


def paired_reactors(
    rng: Random,
    n: int,
    base: float = 1000.0,
    sway: float = 90.0,
    divergence_prob: float = 0.35,
    divergence: float = 160.0,
    interval: float = 10.0,
    phase: float = 0.0,
) -> Readings:
    """One reactor of a correlated pair (Theorem 10's two-reactor setup).

    Values wander near ``base``; with probability ``divergence_prob`` a
    reading diverges by about ``divergence`` — pushing |x − y| past the
    100-degree gap of condition cm.  Generate each variable with its own
    rng stream and a different ``phase`` offset.
    """
    values = []
    current = base + phase
    for _ in range(n):
        current += rng.uniform(-sway, sway)
        if rng.random() < divergence_prob:
            current += rng.choice([-1.0, 1.0]) * divergence * rng.uniform(0.8, 1.5)
        # Mean-revert gently so the pair stays comparable.
        current += (base + phase - current) * 0.25
        values.append(round(current, 1))
    return evenly_spaced(values, interval)
