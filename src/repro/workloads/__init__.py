"""Workloads: value-process generators, the table scenario matrix, and the
paper's canned example traces."""

from repro.workloads.csv_io import (
    load_workload,
    save_workload,
    workload_from_csv,
    workload_to_csv,
)
from repro.workloads.generators import (
    evenly_spaced,
    event_impulses,
    paired_reactors,
    reactor_temperatures,
    rising_runs,
    stock_quotes,
    threshold_crossers,
)
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    Scenario,
    cm_historical,
    run_scenario,
)
from repro.workloads.traces import (
    PaperExample,
    example_1,
    example_2,
    example_3_alerts,
    interleave,
    lemma_6_example,
    theorem_10_example,
    theorem_3_example,
    theorem_4_example,
)

__all__ = [
    "MULTI_VARIABLE_SCENARIOS",
    "PaperExample",
    "ROW_ORDER",
    "SINGLE_VARIABLE_SCENARIOS",
    "Scenario",
    "cm_historical",
    "evenly_spaced",
    "event_impulses",
    "example_1",
    "example_2",
    "example_3_alerts",
    "interleave",
    "load_workload",
    "save_workload",
    "workload_from_csv",
    "workload_to_csv",
    "lemma_6_example",
    "paired_reactors",
    "reactor_temperatures",
    "rising_runs",
    "run_scenario",
    "stock_quotes",
    "theorem_10_example",
    "theorem_3_example",
    "theorem_4_example",
    "threshold_crossers",
]
