"""Canned traces: every worked example in the paper, transcribed exactly.

Each ``example_*``/``theorem_*`` function returns a :class:`PaperExample`
bundling the condition, the per-CE received traces (U1, U2), the alert
streams the CEs generate (A1, A2) and helpers to replay a chosen arrival
interleaving through an AD algorithm.  The integration tests assert the
paper's stated outcomes on these; the examples/ scripts narrate them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.alert import Alert
from repro.core.condition import Condition, PredicateCondition, c1, c2, c3, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update, parse_trace
from repro.displayers.base import ADAlgorithm

__all__ = [
    "PaperExample",
    "interleave",
    "example_1",
    "example_2",
    "example_3_alerts",
    "theorem_3_example",
    "theorem_4_example",
    "theorem_10_example",
    "lemma_6_example",
]


def interleave(streams: Sequence[Sequence[Alert]], order: Sequence[int]) -> list[Alert]:
    """Merge alert streams into one arrival sequence.

    ``order`` names, per arrival slot, which stream delivers next; each
    stream's internal order is preserved (back links are FIFO).  E.g.
    ``interleave([A1, A2], [0, 1, 0])`` delivers A1[0], A2[0], A1[1].
    """
    positions = [0] * len(streams)
    arrivals: list[Alert] = []
    for stream_index in order:
        pos = positions[stream_index]
        if pos >= len(streams[stream_index]):
            raise ValueError(
                f"stream {stream_index} exhausted at arrival slot {len(arrivals)}"
            )
        arrivals.append(streams[stream_index][pos])
        positions[stream_index] = pos + 1
    for stream_index, pos in enumerate(positions):
        if pos != len(streams[stream_index]):
            raise ValueError(
                f"order does not consume stream {stream_index} fully "
                f"({pos} of {len(streams[stream_index])})"
            )
    return arrivals


@dataclass(frozen=True)
class PaperExample:
    """A fully specified replicated-run instance from the paper."""

    name: str
    condition: Condition
    #: Per-CE received update traces (U1, U2, ...).
    traces: tuple[tuple[Update, ...], ...]
    description: str = ""
    #: Per-CE alert streams, computed by replaying the traces.
    alert_streams: tuple[tuple[Alert, ...], ...] = field(init=False)

    def __post_init__(self) -> None:
        streams = []
        for index, trace in enumerate(self.traces):
            evaluator = ConditionEvaluator(self.condition, source=f"CE{index + 1}")
            evaluator.ingest_all(trace)
            streams.append(evaluator.alerts)
        object.__setattr__(self, "alert_streams", tuple(streams))

    def arrivals(self, order: Sequence[int]) -> list[Alert]:
        """One specific interleaving of the CE alert streams at the AD."""
        return interleave(self.alert_streams, order)

    def display(self, algorithm: ADAlgorithm, order: Sequence[int]) -> list[Alert]:
        """Replay an interleaving through a fresh copy of ``algorithm``."""
        copy = algorithm.fresh()
        return copy.offer_all(self.arrivals(order))


def example_1() -> PaperExample:
    """Example 1 (§3): c1 over ⟨1x(2900), 2x(3100), 3x(3200)⟩; 2x lost at CE2.

    A1 = ⟨a(2x), a(3x)⟩, A2 = ⟨a(3x)⟩; under AD-1 with arrival order
    a1, a3, a2 the displayed A = ⟨a1, a3⟩ — two alerts reach the user.
    """
    return PaperExample(
        name="Example 1",
        condition=c1(),
        traces=(
            tuple(parse_trace("1x(2900), 2x(3100), 3x(3200)")),
            tuple(parse_trace("1x(2900), 3x(3200)")),
        ),
        description="Duplicate elimination keeps one copy of a(3x).",
    )


def example_2() -> PaperExample:
    """Example 2 (§4.2): c1 with U1 = ⟨1x(3100)⟩ and U2 = ⟨2x(3200)⟩.

    If a2 reaches the AD first, AD-2 filters a1 — the system is
    incomplete, since T(U1 ⊔ U2) has both alerts.
    """
    return PaperExample(
        name="Example 2",
        condition=c1(),
        traces=(
            tuple(parse_trace("1x(3100)")),
            tuple(parse_trace("2x(3200)")),
        ),
        description="AD-2 trades completeness for orderedness.",
    )


def example_3_alerts() -> tuple[Condition, Alert, Alert]:
    """Example 3 (§4.3): the two conflicting degree-2 alerts.

    a1 triggered on updates 1x and 3x (2x missed by CE1); a2 on 2x and 3x.
    AD-3 passes a1, records 2 as Missed, then filters a2.  We realise the
    pair with c2 over concrete temperatures.
    """
    condition = c2()
    ce1 = ConditionEvaluator(condition, source="CE1")
    ce1.ingest_all(parse_trace("1x(1000), 3x(1300)"))
    ce2 = ConditionEvaluator(condition, source="CE2")
    ce2.ingest_all(parse_trace("2x(1050), 3x(1300)"))
    (a1,) = ce1.alerts
    (a2,) = ce2.alerts
    return condition, a1, a2


def theorem_3_example() -> PaperExample:
    """Theorem 3's counterexample: c3 with disjoint halves at the two CEs.

    U1 = ⟨1(1000), 2(1500)⟩ and U2 = ⟨3(2000), 4(2500)⟩ give A1 = ⟨a(2)⟩,
    A2 = ⟨a(4)⟩; T(U1 ⊔ U2) = ⟨a(2), a(3), a(4)⟩, so the system is
    incomplete, and the arrival order a4, a2 shows it unordered.
    """
    return PaperExample(
        name="Theorem 3 counterexample",
        condition=c3(),
        traces=(
            tuple(parse_trace("1x(1000), 2x(1500)")),
            tuple(parse_trace("3x(2000), 4x(2500)")),
        ),
        description="Conservative triggering: consistent, not complete/ordered.",
    )


def theorem_4_example() -> PaperExample:
    """Theorem 4's counterexample: c2 with U2 missing update 2.

    U = ⟨1(400), 2(700), 3(720)⟩; U1 = U triggers on 2 (700−400 > 200);
    U2 = ⟨1, 3⟩ triggers on 3 (720−400 > 200).  No single input sequence
    can produce both alerts: alert 2 needs update 2 present, alert 3 needs
    it absent — the system is inconsistent.
    """
    return PaperExample(
        name="Theorem 4 counterexample",
        condition=c2(),
        traces=(
            tuple(parse_trace("1x(400), 2x(700), 3x(720)")),
            tuple(parse_trace("1x(400), 3x(720)")),
        ),
        description="Aggressive triggering yields extraneous alerts.",
    )


def theorem_10_example() -> PaperExample:
    """Theorem 10's two-reactor counterexample (no losses, different
    interleavings).

    Ux = ⟨1x(1000), 2x(1200)⟩, Uy = ⟨1y(1050), 2y(1150)⟩; CE1 sees all of
    x first, CE2 all of y first.  CE1 emits a(2x,1y), CE2 emits a(1x,2y);
    under AD-1 both display and A is neither ordered nor consistent.
    """
    x1, x2 = parse_trace("1x(1000), 2x(1200)")
    y1, y2 = parse_trace("1y(1050), 2y(1150)")
    return PaperExample(
        name="Theorem 10 counterexample",
        condition=cm(),
        traces=(
            (x1, x2, y1, y2),
            (y1, y2, x1, x2),
        ),
        description="Interleaving divergence alone breaks multi-variable systems.",
    )


def lemma_6_example() -> PaperExample:
    """Lemma 6's counterexample: AD-5 (indeed any filter of these alerts)
    cannot be complete.

    The condition is satisfied by exactly the pairs (8x, 2y), (8x, 3y) and
    (8x, 4y).  CE1 sees ⟨8x, 2y, 9x, 3y, 4y⟩ and alerts on (8x, 2y); CE2
    sees ⟨2y, 3y, 7x, 4y, 8x⟩ and alerts on (8x, 4y).  No interleaving UV
    generates those two alerts without also generating (8x, 3y).
    """
    satisfied = {(8, 2), (8, 3), (8, 4)}

    def predicate(histories) -> bool:
        if isinstance(histories, dict):  # pragma: no cover - defensive
            raise TypeError("expected HistorySet/HistorySnapshot")
        x_head = histories["x"][0]
        y_head = histories["y"][0]
        return (x_head.seqno, y_head.seqno) in satisfied

    condition = PredicateCondition(
        "lemma6", {"x": 1, "y": 1}, predicate, conservative=False
    )

    def u(text: str) -> Update:
        return parse_trace(text)[0]

    return PaperExample(
        name="Lemma 6 counterexample",
        condition=condition,
        traces=(
            (u("8x"), u("2y"), u("9x"), u("3y"), u("4y")),
            (u("2y"), u("3y"), u("7x"), u("4y"), u("8x")),
        ),
        description="Multi-variable systems under AD-5 are incomplete.",
    )
