"""Workload import/export as CSV.

Real deployments have real sensor logs.  This module reads and writes
the library's workload mapping (``{var: [(time, value), ...]}``) as plain
CSV with a ``time,variable,value`` header, so recorded traces can be
replayed through the simulator and simulated workloads can be inspected
in a spreadsheet.

Rows may arrive grouped by variable or fully interleaved; loading sorts
each variable's readings by time and validates monotonicity, mirroring
the DataMonitor's own requirements.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence

__all__ = ["workload_to_csv", "workload_from_csv", "save_workload", "load_workload"]

Workload = dict[str, list[tuple[float, float]]]

_HEADER = ("time", "variable", "value")


def workload_to_csv(workload: Mapping[str, Sequence[tuple[float, float]]]) -> str:
    """Render a workload as CSV text (rows sorted by time then variable)."""
    rows = []
    for var, readings in workload.items():
        for time, value in readings:
            rows.append((float(time), str(var), float(value)))
    rows.sort(key=lambda row: (row[0], row[1]))
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for time, var, value in rows:
        writer.writerow([f"{time:g}", var, f"{value:g}"])
    return buffer.getvalue()


def workload_from_csv(text: str) -> Workload:
    """Parse CSV text into a workload mapping.

    Raises ValueError on a missing/incorrect header, malformed rows, or
    non-monotone per-variable timestamps.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV: expected a time,variable,value header")
    if tuple(h.strip().lower() for h in header) != _HEADER:
        raise ValueError(
            f"unexpected header {header!r}; expected {','.join(_HEADER)}"
        )
    workload: Workload = {}
    for line_number, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != 3:
            raise ValueError(f"line {line_number}: expected 3 columns, got {len(row)}")
        time_text, var, value_text = (cell.strip() for cell in row)
        if not var:
            raise ValueError(f"line {line_number}: empty variable name")
        try:
            time = float(time_text)
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_number}: non-numeric time/value "
                f"({time_text!r}, {value_text!r})"
            ) from None
        workload.setdefault(var, []).append((time, value))
    for var, readings in workload.items():
        readings.sort(key=lambda pair: pair[0])
    return workload


def save_workload(
    workload: Mapping[str, Sequence[tuple[float, float]]], path: str
) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(workload_to_csv(workload))


def load_workload(path: str) -> Workload:
    with open(path, newline="") as handle:
        return workload_from_csv(handle.read())
