"""Counterexample extraction and minimization.

The table benchmarks witness every ✗ cell with a seed.  This module turns
such a witness into something a human can read — ideally as small as the
hand-crafted counterexamples in the paper's proofs.

:func:`shrink_counterexample` performs greedy delta-debugging on the
*inputs* of a violation: it repeatedly deletes CE-received updates and
replays the pipeline (CE evaluation → a fixed arrival interleaving → the
AD algorithm → the property checker), keeping any deletion that preserves
the violation.  The result is a 1-minimal :class:`Counterexample` — no
single remaining update can be removed — typically 2–4 updates per CE,
directly comparable to the paper's examples.

The replay model is deliberately simpler than the full simulator: a
counterexample is defined by *what each CE received* and *in which order
alerts reached the AD*, which is exactly the information the paper's own
proofs specify.  Arrival order is preserved as a merge pattern over the
CE alert streams and re-projected after each deletion.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.components.system import RunResult
from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update, format_trace
from repro.displayers.base import ADAlgorithm
from repro.props.report import PropertyReport, evaluate_run

__all__ = [
    "Counterexample",
    "Violation",
    "find_violation",
    "violates",
    "replay",
    "shrink_counterexample",
    "counterexample_from_run",
]

#: Which property a counterexample violates.
Violation = str  # "ordered" | "complete" | "consistent"

_VALID_VIOLATIONS = ("ordered", "complete", "consistent")


@dataclass(frozen=True)
class Counterexample:
    """A self-contained, replayable property violation."""

    condition: Condition
    violation: Violation
    #: What each CE received (U_1, U_2, ...).
    traces: tuple[tuple[Update, ...], ...]
    #: Arrival pattern at the AD: index of the CE whose next alert arrives.
    arrival_pattern: tuple[int, ...]
    #: AD algorithm name (registry key) the violation occurred under.
    ad_algorithm: str
    #: The displayed sequence that violates the property.
    displayed: tuple[Alert, ...]

    def describe(self) -> str:
        """A paper-style, human-readable rendering."""
        lines = [
            f"Counterexample: {self.violation} violated under {self.ad_algorithm}",
            f"condition: {self.condition.name}",
        ]
        for index, trace in enumerate(self.traces):
            lines.append(f"  U{index + 1} = {format_trace(trace, with_values=True)}")
        lines.append(
            "  arrival order: "
            + ", ".join(f"CE{i + 1}" for i in self.arrival_pattern)
        )
        lines.append(
            "  displayed A = <"
            + ", ".join(a.shorthand() for a in self.displayed)
            + ">"
        )
        return "\n".join(lines)

    @property
    def total_updates(self) -> int:
        return sum(len(t) for t in self.traces)


def find_violation(report: PropertyReport) -> Violation | None:
    """The most severe violated property in a report, or None."""
    if report.consistent is not None and not report.consistent:
        return "consistent"
    if report.complete is not None and not report.complete:
        return "complete"
    if not report.ordered:
        return "ordered"
    return None


def violates(report: PropertyReport, target: Violation) -> bool:
    """True iff the report *decides* ``target`` and decides it violated.

    A skipped or undecided checker (summary value ``None``) is never a
    violation — the shrinker and fuzzer must not chase instances whose
    verdict silently flipped to "too big to check".
    """
    if target not in _VALID_VIOLATIONS:
        raise ValueError(f"unknown violation {target!r}")
    return report.summary[target] is False


def replay(
    condition: Condition,
    traces: Sequence[Sequence[Update]],
    arrival_pattern: Sequence[int],
    make_ad: Callable[[], ADAlgorithm],
) -> tuple[tuple[Alert, ...], PropertyReport]:
    """Re-run CE evaluation + AD filtering for given inputs.

    The arrival pattern is interpreted leniently: entries naming a CE
    whose alert stream is exhausted are skipped, and leftover alerts are
    appended in CE order — deletion of updates changes how many alerts
    each CE emits, and the pattern must keep making sense as the inputs
    shrink.
    """
    streams: list[list[Alert]] = []
    for index, trace in enumerate(traces):
        evaluator = ConditionEvaluator(condition, source=f"CE{index + 1}")
        evaluator.ingest_all(trace)
        streams.append(list(evaluator.alerts))

    positions = [0] * len(streams)
    arrivals: list[Alert] = []
    for ce_index in arrival_pattern:
        if ce_index < len(streams) and positions[ce_index] < len(streams[ce_index]):
            arrivals.append(streams[ce_index][positions[ce_index]])
            positions[ce_index] += 1
    for ce_index, stream in enumerate(streams):
        arrivals.extend(stream[positions[ce_index]:])

    ad = make_ad()
    displayed = tuple(ad.offer_all(arrivals))
    report = evaluate_run(condition, traces, displayed)
    return displayed, report


def counterexample_from_run(
    run: RunResult, target: Violation | None = None
) -> Counterexample | None:
    """Extract a (not yet minimized) counterexample from a simulator run.

    Returns None if the run violates nothing — or, when ``target`` names
    a specific property, if *that* property is not violated (a run may
    violate several at once; the fuzzer wants the one it was aimed at).
    The arrival pattern is recovered from the sources of the alerts that
    actually reached the AD.
    """
    report = run.evaluate_properties()
    if target is not None:
        violation = target if violates(report, target) else None
    else:
        violation = find_violation(report)
    if violation is None:
        return None
    source_to_index = {f"CE{i + 1}": i for i in range(len(run.received))}
    pattern = tuple(source_to_index[a.source] for a in run.ad_arrivals)
    return Counterexample(
        condition=run.condition,
        violation=violation,
        traces=tuple(tuple(t) for t in run.received),
        arrival_pattern=pattern,
        ad_algorithm=run.config.ad_algorithm,
        displayed=run.displayed,
    )


def _delete_candidates(traces: Sequence[Sequence[Update]]):
    """All (ce_index, update_index) positions, largest traces first."""
    order = sorted(
        range(len(traces)), key=lambda i: len(traces[i]), reverse=True
    )
    for ce_index in order:
        for update_index in range(len(traces[ce_index])):
            yield ce_index, update_index


def shrink_counterexample(
    counterexample: Counterexample,
    make_ad: Callable[[], ADAlgorithm],
    max_passes: int = 10,
) -> Counterexample:
    """Greedy 1-minimal shrink: delete updates while the violation persists.

    ``make_ad`` must build a fresh instance of the same AD algorithm the
    violation occurred under.  Each deletion candidate is replayed in
    full; a deletion is kept only if the *same* property is still
    violated.  Passes repeat until a fixpoint (no single deletion keeps
    the violation) or ``max_passes``.
    """
    if counterexample.violation not in _VALID_VIOLATIONS:
        raise ValueError(f"unknown violation {counterexample.violation!r}")

    traces = [list(t) for t in counterexample.traces]
    pattern = counterexample.arrival_pattern
    condition = counterexample.condition
    target = counterexample.violation
    best_displayed = counterexample.displayed

    for _ in range(max_passes):
        shrunk = False
        for ce_index, update_index in list(_delete_candidates(traces)):
            if update_index >= len(traces[ce_index]):
                continue
            candidate = [list(t) for t in traces]
            del candidate[ce_index][update_index]
            try:
                displayed, report = replay(condition, candidate, pattern, make_ad)
            except Exception:
                continue  # deletion produced an invalid run; skip it
            if find_violation(report) == target:
                traces = candidate
                best_displayed = displayed
                shrunk = True
        if not shrunk:
            break

    return Counterexample(
        condition=condition,
        violation=target,
        traces=tuple(tuple(t) for t in traces),
        arrival_pattern=pattern,
        ad_algorithm=counterexample.ad_algorithm,
        displayed=best_displayed,
    )
