"""Parameter sweeps: violation rates as functions of system parameters.

The paper's grids answer "can this property be violated?"; these sweeps
answer "how often, as a function of loss rate / replication degree?" —
the ablation data behind the design choices DESIGN.md calls out (loss
0.3, 2 CEs) and the quantitative texture of the ✗ cells.

Used by ``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.props.report import PropertyTally
from repro.workloads.scenarios import Scenario, run_scenario

if TYPE_CHECKING:
    from repro.engine.core import TrialEngine

__all__ = ["SweepPoint", "loss_sweep", "replication_sweep", "render_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Violation rates at one parameter setting."""

    parameter: str
    value: float
    algorithm: str
    trials: int
    unordered_rate: float
    incomplete_rate: float | None
    inconsistent_rate: float | None

    @staticmethod
    def from_tally(
        parameter: str, value: float, algorithm: str, tally: PropertyTally
    ) -> "SweepPoint":
        def rate(violations: int, checked: int) -> float | None:
            return violations / checked if checked else None

        return SweepPoint(
            parameter=parameter,
            value=value,
            algorithm=algorithm,
            trials=tally.runs,
            unordered_rate=tally.ordered_violations / max(tally.runs, 1),
            incomplete_rate=rate(
                tally.completeness_violations, tally.completeness_checked
            ),
            inconsistent_rate=rate(
                tally.consistency_violations, tally.consistency_checked
            ),
        )


def _registry_coordinates(scenario: Scenario) -> tuple[str, str] | None:
    """The (matrix, row) naming ``scenario`` in the module matrices, if any.

    Sweep points can only fan out through the trial engine when workers
    can re-resolve the scenario by name; ad-hoc Scenario objects fall back
    to the inline loop.
    """
    from repro.engine.spec import SCENARIO_MATRICES

    for matrix, scenarios in SCENARIO_MATRICES.items():
        if scenarios.get(scenario.key) is scenario:
            return matrix, scenario.key
    return None


def _sweep_tally(
    scenario: Scenario,
    algorithm: str,
    trials: int,
    n_updates: int,
    base_seed: int,
    replication: int = 2,
    front_loss: float | None = None,
    engine: "TrialEngine | None" = None,
) -> PropertyTally:
    coordinates = _registry_coordinates(scenario) if engine is not None else None
    if coordinates is not None:
        from repro.engine.spec import TrialSpec

        matrix, row = coordinates
        specs = [
            TrialSpec(
                matrix,
                row,
                algorithm,
                base_seed + trial,
                n_updates,
                replication=replication,
                front_loss=front_loss,
            )
            for trial in range(trials)
        ]
        return engine.run_tally(specs)
    if front_loss is not None:
        from dataclasses import replace

        scenario = replace(scenario, front_loss=front_loss)
    tally = PropertyTally()
    for trial in range(trials):
        run = run_scenario(
            scenario,
            algorithm,
            base_seed + trial,
            n_updates=n_updates,
            replication=replication,
        )
        tally.add(run.evaluate_properties(), seed=base_seed + trial)
    return tally


def loss_sweep(
    scenario: Scenario,
    algorithm: str,
    loss_probs: Sequence[float],
    trials: int = 60,
    n_updates: int = 30,
    base_seed: int = 515000,
    engine: "TrialEngine | None" = None,
) -> list[SweepPoint]:
    """Violation rates vs front-link loss probability.

    The scenario's own loss setting is overridden at each sweep point
    (via the ``front_loss`` spec override when an ``engine`` is given and
    the scenario is a registry row, else via a shallow copy).
    """
    points = []
    for loss in loss_probs:
        tally = _sweep_tally(
            scenario,
            algorithm,
            trials,
            n_updates,
            base_seed + int(loss * 10_000),
            front_loss=loss,
            engine=engine,
        )
        points.append(SweepPoint.from_tally("front_loss", loss, algorithm, tally))
    return points


def replication_sweep(
    scenario: Scenario,
    algorithm: str,
    replications: Sequence[int],
    trials: int = 60,
    n_updates: int = 30,
    base_seed: int = 525000,
    engine: "TrialEngine | None" = None,
) -> list[SweepPoint]:
    """Violation rates vs number of CEs.

    The paper analyses two CEs and notes the analysis "can be easily
    extended"; this sweep verifies the guarantees empirically at higher
    replication (✓ cells must stay clean — more replicas mean more
    interleavings, not new failure modes) and shows how much more often
    the ✗ cells bite.
    """
    points = []
    for replication in replications:
        tally = _sweep_tally(
            scenario,
            algorithm,
            trials,
            n_updates,
            base_seed + replication * 97,
            replication=replication,
            engine=engine,
        )
        points.append(
            SweepPoint.from_tally("replication", replication, algorithm, tally)
        )
    return points


def render_sweep(title: str, points: Sequence[SweepPoint]) -> str:
    """Fixed-width rendering of one sweep series."""

    def fmt(rate: float | None) -> str:
        return "   n/a" if rate is None else f"{rate:6.1%}"

    lines = [title]
    lines.append(
        f"{'param':>12} {'value':>7} {'algo':>6} {'unordered':>9} "
        f"{'incomplete':>10} {'inconsistent':>12}"
    )
    for p in points:
        lines.append(
            f"{p.parameter:>12} {p.value:>7g} {p.algorithm:>6} "
            f"{fmt(p.unordered_rate):>9} {fmt(p.incomplete_rate):>10} "
            f"{fmt(p.inconsistent_rate):>12}"
        )
    return "\n".join(lines)
