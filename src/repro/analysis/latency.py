"""Alert notification latency.

Section 1's full claim is that replication "reduces the probability that
a critical alert will not be delivered **on time** (or at all)".  The
availability experiment measures the "at all" half; this module measures
"on time": for every ground-truth alert (what an ideal co-located CE
would raise), how long after the *triggering broadcast* did the first
matching alert reach the user's display?

With replication, the fastest replica wins each race — so even when no
alert is lost outright, adding CEs shortens the notification tail.
``benchmarks/bench_latency.py`` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import mean as _mean, median as _median, percentile as _percentile
from repro.analysis.metrics import _ground_truth_updates
from repro.components.system import RunResult
from repro.core.reference import apply_T

__all__ = ["NotificationLatency", "LatencyStats", "notification_latencies", "latency_stats"]


@dataclass(frozen=True)
class NotificationLatency:
    """One ground-truth alert's delivery outcome."""

    #: Alert identity (condname + history seqnos).
    identity: tuple
    #: Simulated time of the broadcast that should trigger it.
    triggered_at: float
    #: Simulated time the first matching alert reached the display
    #: (None when the alert never arrived — a miss).
    first_displayed_at: float | None

    @property
    def latency(self) -> float | None:
        if self.first_displayed_at is None:
            return None
        return self.first_displayed_at - self.triggered_at


def notification_latencies(run: RunResult) -> list[NotificationLatency]:
    """Per-ground-truth-alert first-notification latency for one run.

    Ground truth comes from replaying T over the broadcast log; the
    triggering time of an alert is the broadcast time of its newest
    history update.  Matching is by alert identity, and "displayed" means
    it survived the AD's filter.
    """
    broadcast_time: dict[tuple[str, int], float] = {}
    for time, update in run.sent_log:
        broadcast_time[(update.varname, update.seqno)] = time

    # First display time per identity: displayed alerts are a subsequence
    # of arrivals, displayed at their arrival instant.
    display_ids = {id(a) for a in run.displayed}
    first_display: dict[tuple, float] = {}
    for alert, time in zip(run.ad_arrivals, run.ad_arrival_times):
        if id(alert) in display_ids:
            first_display.setdefault(alert.identity(), time)

    results = []
    for alert in apply_T(run.condition, _ground_truth_updates(run)):
        # The triggering update is the newest history entry across
        # variables (the one whose arrival fired the evaluation).
        triggered_at = max(
            broadcast_time[(var, alert.histories.seqno(var))]
            for var in alert.variables
        )
        results.append(
            NotificationLatency(
                identity=alert.identity(),
                triggered_at=triggered_at,
                first_displayed_at=first_display.get(alert.identity()),
            )
        )
    return results


@dataclass(frozen=True)
class LatencyStats:
    """Aggregate first-notification latency over one or more runs."""

    expected: int
    delivered: int
    mean: float
    median: float
    p95: float

    @property
    def miss_fraction(self) -> float:
        if self.expected == 0:
            return 0.0
        return 1.0 - self.delivered / self.expected


def latency_stats(latencies: list[NotificationLatency]) -> LatencyStats:
    """Summarise a collection of per-alert outcomes."""
    delivered = [entry.latency for entry in latencies if entry.latency is not None]
    if delivered:
        mean = _mean(delivered)
        median = _median(delivered)
        p95 = _percentile(delivered, 95)
    else:
        mean = median = p95 = float("nan")
    return LatencyStats(
        expected=len(latencies),
        delivered=len(delivered),
        mean=mean,
        median=median,
        p95=p95,
    )
