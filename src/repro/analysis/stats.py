"""Statistics helpers for violation-rate estimates.

The ✗ cells of the paper's tables are existential, but the *rates* we
report for them (bench_theorems, bench_ablation) are binomial estimates
from finite trials.  :func:`wilson_interval` attaches a confidence
interval so EXPERIMENTS.md readers can judge how much to trust a rate
from N trials, and :func:`rates_differ` gives a quick two-proportion test
used when claiming one configuration violates more often than another
(e.g. AD-1's inconsistency growing with replication degree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # SciPy rides along with the optional numpy extra; see repro.accel.
    from scipy.stats import norm as _scipy_norm
except ImportError:  # pragma: no cover - exercised in no-scipy environments
    _scipy_norm = None

__all__ = ["RateEstimate", "wilson_interval", "estimate_rate", "rates_differ"]

# Coefficients of Acklam's rational approximation to the inverse normal
# CDF (relative error < 1.2e-9 everywhere) — the fallback when SciPy is
# absent.  The z values used here (e.g. 1.95996... at 95%) agree with
# scipy.stats.norm.ppf far beyond the precision any rate estimate needs.
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02,
          -2.759285104469687e+02, 1.383577518672690e+02,
          -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02,
          -1.556989798598866e+02, 6.680131188771972e+01,
          -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01,
          -2.400758277161838e+00, -2.549732539343734e+00,
          4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01,
          2.445134137142996e+00, 3.754408661907416e+00)


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (scipy when available, Acklam else)."""
    if _scipy_norm is not None:
        return float(_scipy_norm.ppf(p))
    if not 0.0 < p < 1.0:
        if p == 0.0:
            return float("-inf")
        if p == 1.0:
            return float("inf")
        return float("nan")
    a, b, c, d = _PPF_A, _PPF_B, _PPF_C, _PPF_D
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)


@dataclass(frozen=True)
class RateEstimate:
    """A binomial proportion with its Wilson confidence interval."""

    successes: int
    trials: int
    confidence: float
    low: float
    high: float

    @property
    def point(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    def __str__(self) -> str:
        return (
            f"{self.point:.1%} [{self.low:.1%}, {self.high:.1%}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0/N and N/N), unlike the normal
    approximation — important here because the paper's ✓ cells *should*
    measure exactly 0 violations.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if trials == 0:
        return (0.0, 1.0)
    z = _norm_ppf(0.5 + confidence / 2.0)
    p = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # The exact endpoints at 0/N and N/N are 0 and 1; clamp the float noise.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def estimate_rate(
    successes: int, trials: int, confidence: float = 0.95
) -> RateEstimate:
    low, high = wilson_interval(successes, trials, confidence)
    return RateEstimate(successes, trials, confidence, low, high)


def rates_differ(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = 0.95,
) -> bool:
    """Two-proportion z-test: is rate A significantly different from B?

    Returns True when the pooled z statistic exceeds the two-sided
    critical value.  Degenerate inputs (no trials) are never significant.
    """
    if trials_a == 0 or trials_b == 0:
        return False
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if variance == 0:
        return p_a != p_b
    z = (p_a - p_b) / math.sqrt(variance)
    critical = _norm_ppf(0.5 + confidence / 2.0)
    return abs(z) > critical
