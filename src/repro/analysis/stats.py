"""Statistics helpers for violation-rate estimates.

The ✗ cells of the paper's tables are existential, but the *rates* we
report for them (bench_theorems, bench_ablation) are binomial estimates
from finite trials.  :func:`wilson_interval` attaches a confidence
interval so EXPERIMENTS.md readers can judge how much to trust a rate
from N trials, and :func:`rates_differ` gives a quick two-proportion test
used when claiming one configuration violates more often than another
(e.g. AD-1's inconsistency growing with replication degree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

__all__ = ["RateEstimate", "wilson_interval", "estimate_rate", "rates_differ"]


@dataclass(frozen=True)
class RateEstimate:
    """A binomial proportion with its Wilson confidence interval."""

    successes: int
    trials: int
    confidence: float
    low: float
    high: float

    @property
    def point(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    def __str__(self) -> str:
        return (
            f"{self.point:.1%} [{self.low:.1%}, {self.high:.1%}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0/N and N/N), unlike the normal
    approximation — important here because the paper's ✓ cells *should*
    measure exactly 0 violations.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if trials == 0:
        return (0.0, 1.0)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # The exact endpoints at 0/N and N/N are 0 and 1; clamp the float noise.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def estimate_rate(
    successes: int, trials: int, confidence: float = 0.95
) -> RateEstimate:
    low, high = wilson_interval(successes, trials, confidence)
    return RateEstimate(successes, trials, confidence, low, high)


def rates_differ(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = 0.95,
) -> bool:
    """Two-proportion z-test: is rate A significantly different from B?

    Returns True when the pooled z statistic exceeds the two-sided
    critical value.  Degenerate inputs (no trials) are never significant.
    """
    if trials_a == 0 or trials_b == 0:
        return False
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if variance == 0:
        return p_a != p_b
    z = (p_a - p_b) / math.sqrt(variance)
    critical = float(norm.ppf(0.5 + confidence / 2.0))
    return abs(z) > critical
