"""One-shot reproduction report: every experiment, one Markdown document.

``python -m repro report`` (or :func:`generate_report`) runs the full
experiment suite — all seven property tables, the domination and
maximality replays, and the availability sweep — and emits a Markdown
report with a PASS/FAIL verdict per artifact and an overall verdict.
``budget`` scales every trial count, so the same entry point serves a
30-second smoke check (``budget=0.1``) and a full run (``budget=1.0``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.experiments import (
    availability_experiment,
    domination_experiment,
    maximality_experiment,
)
from repro.analysis.tables import EXPECTED_GRIDS, build_table, render_table

__all__ = ["SectionResult", "ReproductionReport", "generate_report"]


@dataclass(frozen=True)
class SectionResult:
    """One experiment's outcome inside the report."""

    name: str
    passed: bool
    body: str
    seconds: float


@dataclass
class ReproductionReport:
    sections: list[SectionResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(section.passed for section in self.sections)

    def to_markdown(self) -> str:
        lines = [
            "# Reproduction report — Replicated condition monitoring "
            "(PODC 2001)",
            "",
            f"Overall: **{'PASS' if self.passed else 'FAIL'}** "
            f"({sum(s.passed for s in self.sections)}/{len(self.sections)} "
            "artifacts agree with the paper)",
            "",
        ]
        for section in self.sections:
            status = "PASS" if section.passed else "FAIL"
            lines.append(f"## {section.name} — {status} ({section.seconds:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(section.body)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def _scaled(value: int, budget: float, minimum: int = 5) -> int:
    return max(minimum, int(value * budget))


def generate_report(
    budget: float = 1.0, base_seed: int = 20010800, processes: int | str = 1
) -> ReproductionReport:
    """Run every experiment at ``budget`` × the default trial counts.

    ``processes > 1`` (or ``"auto"``) fans the table trials out over one
    persistent :class:`~repro.engine.core.TrialEngine` — the same worker
    pool serves all seven tables — with identical results, wall-clock
    divided.
    """
    from repro.engine import resolve_processes

    if budget <= 0:
        raise ValueError("budget must be positive")
    worker_count = resolve_processes(processes)
    report = ReproductionReport()

    # Property tables.
    single_trials = _scaled(150, budget)
    multi_trials = _scaled(60, budget)
    # The ✗ completeness witnesses in historical multi-variable rows are
    # the rarest events in the suite; keep a healthy floor even at tiny
    # budgets so the report doesn't flake.
    completeness_trials = _scaled(120, budget, minimum=40)
    engine = None
    if worker_count > 1:
        from repro.engine import TrialEngine

        engine = TrialEngine(processes=worker_count)
    try:
        for table_id in EXPECTED_GRIDS:
            start = time.perf_counter()
            multi = table_id in ("table3", "ad6", "ad1-multi")
            table_kwargs = dict(
                trials=multi_trials if multi else single_trials,
                n_updates=20 if multi else 40,
                base_seed=base_seed,
                completeness_trials=completeness_trials if multi else 0,
                completeness_n_updates=8,
            )
            if engine is not None:
                from repro.analysis.parallel import build_table_parallel

                result = build_table_parallel(
                    table_id, engine=engine, **table_kwargs
                )
            else:
                result = build_table(table_id, **table_kwargs)
            report.sections.append(
                SectionResult(
                    name=f"Property grid: {table_id}",
                    passed=result.matches_paper(),
                    body=render_table(result),
                    seconds=time.perf_counter() - start,
                )
            )
    finally:
        if engine is not None:
            engine.close()

    # Domination (Theorems 6 and 8).
    start = time.perf_counter()
    dom = domination_experiment(trials=_scaled(400, budget))
    dom_lines = []
    dom_ok = True
    for name, outcome in dom.items():
        dom_lines.append(
            f"{name}: violations={outcome.violations} "
            f"strict={outcome.strict_witnesses} streams={outcome.streams}"
        )
        dom_ok = dom_ok and outcome.dominates and outcome.strictly_dominates
    report.sections.append(
        SectionResult(
            "Domination (Thm 6, Thm 8)",
            dom_ok,
            "\n".join(dom_lines),
            time.perf_counter() - start,
        )
    )

    # Maximality (Theorems 5, 7, 9).
    start = time.perf_counter()
    maxim = maximality_experiment(trials=_scaled(400, budget))
    max_lines = []
    max_ok = True
    for name, outcome in maxim.items():
        max_lines.append(
            f"{name}: discards={outcome.discards} "
            f"unjustified={outcome.unjustified}"
        )
        max_ok = max_ok and outcome.maximal and outcome.discards > 0
    report.sections.append(
        SectionResult(
            "Maximality (Thm 5, Thm 7, Thm 9)",
            max_ok,
            "\n".join(max_lines),
            time.perf_counter() - start,
        )
    )

    # Availability (Figure-1 motivation).
    start = time.perf_counter()
    points = availability_experiment(
        loss_probs=(0.0, 0.2, 0.4), replications=(1, 2, 3),
        trials=_scaled(40, budget),
    )
    by_key = {(p.front_loss, p.replication): p for p in points}
    avail_lines = [
        f"loss={p.front_loss} CEs={p.replication} "
        f"miss={p.mean_miss_fraction:.3f}"
        for p in points
    ]
    avail_ok = all(
        by_key[(loss, 2)].mean_miss_fraction
        <= by_key[(loss, 1)].mean_miss_fraction
        for loss in (0.0, 0.2, 0.4)
    )
    report.sections.append(
        SectionResult(
            "Availability (Figure-1 motivation)",
            avail_ok,
            "\n".join(avail_lines),
            time.perf_counter() - start,
        )
    )

    return report
