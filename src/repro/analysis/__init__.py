"""Analysis: run metrics, table regeneration, experiment drivers."""

from repro.analysis.experiments import (
    AvailabilityPoint,
    availability_experiment,
    collect_arrival_streams,
    consistency_property,
    domination_experiment,
    maximality_experiment,
    strict_orderedness_property,
)
from repro.analysis.timeline import (
    TimelineEvent,
    TimelineRecorder,
    render_logical_timeline,
)
from repro.analysis.witness import (
    Counterexample,
    counterexample_from_run,
    find_violation,
    replay,
    shrink_counterexample,
)
from repro.analysis.compare import (
    AlgorithmComparison,
    ComparisonRow,
    compare_algorithms,
    compare_run,
)
from repro.analysis.parallel import build_table_parallel, run_trials
from repro.analysis.latency import (
    LatencyStats,
    NotificationLatency,
    latency_stats,
    notification_latencies,
)
from repro.analysis.metrics import (
    DeliveryStats,
    back_link_bytes,
    RunMetrics,
    collect_metrics,
    delivery_stats,
)
from repro.analysis.repro_report import (
    ReproductionReport,
    SectionResult,
    generate_report,
)
from repro.analysis.stats import (
    RateEstimate,
    estimate_rate,
    rates_differ,
    wilson_interval,
)
from repro.analysis.sweeps import (
    SweepPoint,
    loss_sweep,
    render_sweep,
    replication_sweep,
)
from repro.analysis.tables import (
    EXPECTED_GRIDS,
    TableResult,
    build_table,
    grid_matches,
    render_table,
)

__all__ = [
    "AvailabilityPoint",
    "AlgorithmComparison",
    "ComparisonRow",
    "Counterexample",
    "build_table_parallel",
    "compare_algorithms",
    "compare_run",
    "run_trials",
    "LatencyStats",
    "NotificationLatency",
    "latency_stats",
    "notification_latencies",
    "RateEstimate",
    "ReproductionReport",
    "SectionResult",
    "estimate_rate",
    "generate_report",
    "rates_differ",
    "wilson_interval",
    "SweepPoint",
    "TimelineEvent",
    "TimelineRecorder",
    "counterexample_from_run",
    "find_violation",
    "loss_sweep",
    "render_logical_timeline",
    "render_sweep",
    "replay",
    "replication_sweep",
    "shrink_counterexample",
    "DeliveryStats",
    "back_link_bytes",
    "EXPECTED_GRIDS",
    "RunMetrics",
    "TableResult",
    "availability_experiment",
    "build_table",
    "collect_arrival_streams",
    "collect_metrics",
    "consistency_property",
    "delivery_stats",
    "domination_experiment",
    "grid_matches",
    "maximality_experiment",
    "render_table",
    "strict_orderedness_property",
]
