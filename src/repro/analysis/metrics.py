"""Run metrics: loss, alert volumes, and alert-delivery statistics.

Besides the three formal properties, the benchmarks report operational
metrics — how many updates were lost, how many alerts each stage saw, and
(for the availability experiment motivating Figure 1) whether the *ground
truth* alerts were delivered to the user at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.system import RunResult
from repro.core.alert import alert_identity_set
from repro.core.reference import apply_T

__all__ = ["RunMetrics", "DeliveryStats", "collect_metrics", "delivery_stats"]


@dataclass(frozen=True)
class RunMetrics:
    """Volume counters for one run."""

    updates_sent: int
    updates_received_per_ce: tuple[int, ...]
    alerts_generated_per_ce: tuple[int, ...]
    alerts_arrived: int
    alerts_displayed: int
    alerts_filtered: int

    @property
    def mean_loss_fraction(self) -> float:
        """Average fraction of sent updates each CE failed to receive."""
        if self.updates_sent == 0:
            return 0.0
        fractions = [
            1.0 - received / self.updates_sent
            for received in self.updates_received_per_ce
        ]
        return sum(fractions) / len(fractions)

    @property
    def filter_fraction(self) -> float:
        """Fraction of arriving alerts the AD filtered out."""
        if self.alerts_arrived == 0:
            return 0.0
        return self.alerts_filtered / self.alerts_arrived


def collect_metrics(run: RunResult) -> RunMetrics:
    return RunMetrics(
        updates_sent=sum(len(v) for v in run.sent.values()),
        updates_received_per_ce=tuple(len(t) for t in run.received),
        alerts_generated_per_ce=tuple(len(a) for a in run.ce_alerts),
        alerts_arrived=len(run.ad_arrivals),
        alerts_displayed=len(run.displayed),
        alerts_filtered=len(run.filtered),
    )


@dataclass(frozen=True)
class DeliveryStats:
    """Ground-truth alert delivery for the availability experiment.

    ``expected`` is the number of alerts an ideal system — one CE, no
    losses, no downtime — would have raised over the DM's full output;
    ``delivered`` counts how many of those identities reached the user.
    For multi-variable conditions the ground truth depends on the
    interleaving of the DM streams; we use the interleaving by broadcast
    time (which is what an ideal co-located CE would observe).
    """

    expected: int
    delivered: int
    extraneous: int

    @property
    def missed(self) -> int:
        return self.expected - self.delivered

    @property
    def miss_fraction(self) -> float:
        if self.expected == 0:
            return 0.0
        return self.missed / self.expected


def _ground_truth_updates(run: RunResult) -> list:
    """The DM output merged in broadcast order — what an ideal co-located
    CE (one per all variables, zero-latency, lossless) would observe."""
    return [update for _, update in run.sent_log]


def delivery_stats(run: RunResult) -> DeliveryStats:
    """Compare displayed alerts against the ideal system's alerts."""
    ground_truth = apply_T(run.condition, _ground_truth_updates(run))
    expected = alert_identity_set(ground_truth)
    displayed = alert_identity_set(run.displayed)
    return DeliveryStats(
        expected=len(expected),
        delivered=len(expected & displayed),
        extraneous=len(displayed - expected),
    )


def back_link_bytes(run: RunResult, encoding=None) -> int:
    """Total bytes the CEs sent to the AD under a given wire encoding.

    ``encoding`` defaults to the *minimum* encoding the run's AD algorithm
    needs (§2's observation, see :mod:`repro.core.wire`) — pass an
    explicit :class:`~repro.core.wire.AlertEncoding` to compare choices.
    """
    from repro.core.wire import encode_alert, minimum_encoding

    if encoding is None:
        encoding = minimum_encoding(run.config.ad_algorithm)
    return sum(
        encode_alert(alert, encoding).size_bytes for alert in run.all_generated
    )
