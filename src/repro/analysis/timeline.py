"""ASCII timeline rendering of a monitoring run.

Turns a run into the kind of lane diagram the paper draws by hand — one
lane per DM, CE and the AD — so a violating run can be *read*::

    t=     0.00  DM-x     broadcast 1x(2900)
    t=     0.83  CE1      receive   1x
    t=     1.21  CE2      receive   1x
    t=    10.00  DM-x     broadcast 2x(3100)
    t=    10.94  CE1      receive   2x
    t=    10.94  CE1      alert     a(2x)
    t=    14.51  AD       display   a(2x) (from CE1)

Two renderers:

* :func:`render_logical_timeline` works on a finished
  :class:`~repro.components.system.RunResult` (real timestamps for the
  broadcast lane, logical order for the rest — reception times are not
  retained in the result object);
* :class:`TimelineRecorder` instruments a *live* system before ``run()``
  and captures exact simulated times for every event by rewiring the link
  receiver callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.system import MonitoringSystem, RunResult

__all__ = ["render_logical_timeline", "TimelineRecorder", "TimelineEvent"]


def render_logical_timeline(run: RunResult, max_rows: int | None = None) -> str:
    """A lane-per-component rendering of a completed run (logical order)."""
    lines: list[str] = []
    lines.append("=== broadcast lane (real times) ===")
    for time, update in run.sent_log:
        lines.append(
            f"t={time:>8.1f}  DM-{update.varname:<6} broadcast {update.shorthand()}"
        )

    for index, trace in enumerate(run.received):
        alerts = run.ce_alerts[index]
        lines.append(
            f"=== CE{index + 1} lane ({len(trace)} received, "
            f"{len(alerts)} alerts) ==="
        )
        # An alert was emitted at the arrival of its newest history entry;
        # map trigger position -> alert for annotation.
        remaining = list(alerts)
        for update in trace:
            suffix = ""
            if remaining:
                head = remaining[0]
                if (
                    update.varname in head.variables
                    and head.histories.seqno(update.varname) == update.seqno
                ):
                    suffix = f"  -> {head.shorthand()}"
                    remaining.pop(0)
            lines.append(
                f"          CE{index + 1}      receive   "
                f"{update.shorthand(False)}{suffix}"
            )

    lines.append(
        f"=== AD lane ({len(run.ad_arrivals)} arrivals, "
        f"{len(run.displayed)} displayed) ==="
    )
    display_ids = {id(a) for a in run.displayed}
    for alert in run.ad_arrivals:
        verdict = "display" if id(alert) in display_ids else "filter "
        lines.append(
            f"          AD       {verdict}   {alert.shorthand()} "
            f"(from {alert.source})"
        )
    if max_rows is not None and len(lines) > max_rows:
        lines = lines[:max_rows] + [f"... ({len(lines) - max_rows} more rows)"]
    return "\n".join(lines)


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped event captured by :class:`TimelineRecorder`."""

    time: float
    lane: str
    kind: str  # "broadcast" | "receive" | "alert" | "display" | "filter"
    detail: str


@dataclass
class TimelineRecorder:
    """Captures exact event times from a live MonitoringSystem.

    Must be attached *before* ``system.run()``.  Usage::

        system = MonitoringSystem(condition, workload, config, seed=7)
        recorder = TimelineRecorder.attach(system)
        result = system.run()
        print(recorder.render())
    """

    events: list[TimelineEvent] = field(default_factory=list)

    def record(self, time: float, lane: str, kind: str, detail: str) -> None:
        self.events.append(TimelineEvent(time, lane, kind, detail))

    @classmethod
    def attach(cls, system: MonitoringSystem) -> "TimelineRecorder":
        recorder = cls()
        kernel = system.kernel

        # DM broadcasts: start() schedules `self._broadcast` lookups at
        # fire time, so wrapping the instance attribute works as long as
        # attach() runs before run().
        for dm in system.dms:
            def make_broadcast(dm, original):
                def wrapped(value):
                    original(value)
                    recorder.record(
                        kernel.now, dm.name, "broadcast", dm.sent[-1].shorthand()
                    )
                return wrapped

            dm._broadcast = make_broadcast(dm, dm._broadcast)

        # CE receptions: front links captured the CE's bound `receive` at
        # construction, so rewire each link's receiver to the wrapper.
        ce_wrappers = {}
        for ce in system.ces:
            def make_receive(ce, original):
                def wrapped(message):
                    received_before = len(ce.received)
                    alerts_before = len(ce.alerts)
                    original(message)
                    if len(ce.received) > received_before:
                        recorder.record(
                            kernel.now, ce.name, "receive",
                            message.shorthand(False),
                        )
                    if len(ce.alerts) > alerts_before:
                        recorder.record(
                            kernel.now, ce.name, "alert",
                            ce.alerts[-1].shorthand(),
                        )
                return wrapped

            wrapper = make_receive(ce, ce.receive)
            ce_wrappers[id(ce)] = wrapper
            ce.receive = wrapper

        for dm in system.dms:
            for link in dm._links:
                bound_self = getattr(link.receiver, "__self__", None)
                if bound_self is not None and id(bound_self) in ce_wrappers:
                    link.receiver = ce_wrappers[id(bound_self)]

        # AD arrivals: rewire each back link.
        ad = system.ad

        def make_ad_receive(original):
            def wrapped(message):
                displayed_before = len(ad.displayed)
                original(message)
                kind = "display" if len(ad.displayed) > displayed_before else "filter"
                recorder.record(
                    kernel.now, ad.name, kind,
                    f"{message.shorthand()} (from {message.source})",
                )
            return wrapped

        ad_wrapper = make_ad_receive(ad.receive)
        ad.receive = ad_wrapper
        for ce in system.ces:
            if ce.back_link is not None:
                ce.back_link.receiver = ad_wrapper

        return recorder

    def render(self) -> str:
        lines = [
            f"t={event.time:>9.2f}  {event.lane:<8} {event.kind:<9} {event.detail}"
            for event in sorted(self.events, key=lambda e: e.time)
        ]
        return "\n".join(lines)
