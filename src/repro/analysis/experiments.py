"""Experiment drivers: one entry point per paper artifact.

The table experiments live in :mod:`repro.analysis.tables`; this module
adds the theorem-level experiments — domination (Theorems 6 and 8),
maximality (Theorems 5, 7 and 9) — and the Figure-1 motivation experiment
(replication reduces missed alerts).  The benchmarks call these drivers
and print their results; EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.metrics import delivery_stats
from repro.components.system import SystemConfig, run_system
from repro.core.alert import Alert
from repro.core.condition import c1
from repro.core.sequences import is_strictly_ordered
from repro.displayers.ad1 import AD1
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.ad4 import AD4
from repro.props.consistency import check_consistency_single
from repro.faults.plan import FaultProfile
from repro.props.domination import DominationResult, test_domination
from repro.props.maximality import MaximalityResult, probe_streams
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import threshold_crossers
from repro.workloads.scenarios import (
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

__all__ = [
    "collect_arrival_streams",
    "domination_experiment",
    "maximality_experiment",
    "availability_experiment",
    "AvailabilityPoint",
    "strict_orderedness_property",
    "consistency_property",
]


def collect_arrival_streams(
    trials: int,
    n_updates: int = 30,
    base_seed: int = 424200,
    rows: Sequence[str] = ROW_ORDER,
) -> list[tuple[Alert, ...]]:
    """Arrival streams at the AD from randomized single-variable runs.

    The stream reaching the AD does not depend on the filtering algorithm
    (CEs send regardless), so we run with the pass-through AD and harvest
    ``ad_arrivals``.  Streams are drawn across all scenario rows so the
    replay set contains losses, gaps, duplicates and reorderings.
    """
    streams: list[tuple[Alert, ...]] = []
    for index in range(trials):
        row = rows[index % len(rows)]
        run = run_scenario(
            SINGLE_VARIABLE_SCENARIOS[row],
            "pass",
            base_seed + index,
            n_updates=n_updates,
        )
        if run.ad_arrivals:
            streams.append(run.ad_arrivals)
    return streams


def domination_experiment(
    trials: int = 200, n_updates: int = 30, base_seed: int = 424200
) -> dict[str, DominationResult]:
    """Theorems 6 and 8: AD-1 > AD-2 and AD-1 > AD-3.

    Also replays AD-1 vs AD-4 (implied by Theorems 6+8: AD-4 filters
    whatever either constituent filters) as a sanity extension.
    """
    streams = collect_arrival_streams(trials, n_updates, base_seed)
    return {
        "thm6 (AD-1 vs AD-2)": test_domination(AD1(), AD2("x"), streams),
        "thm8 (AD-1 vs AD-3)": test_domination(AD1(), AD3("x"), streams),
        "ext (AD-1 vs AD-4)": test_domination(AD1(), AD4("x"), streams),
    }


def strict_orderedness_property(varname: str = "x"):
    """The property AD-2's discards must be necessary for.

    Strictly increasing ``a.seqno.x``: non-decreasing order (the paper's
    orderedness) *plus* no repeated seqno.  The strict form treats a
    repeated seqno as a display defect (it is either an exact duplicate,
    which every AD must suppress, or two conflicting same-trigger alerts),
    matching what AD-2's ``<=`` test enforces.
    """

    def holds(alerts: Sequence[Alert]) -> bool:
        return is_strictly_ordered([a.seqno(varname) for a in alerts])

    return holds


def consistency_property(varname: str = "x"):
    """The property AD-3's discards must be necessary for: single-variable
    consistency plus duplicate-freedom."""

    def holds(alerts: Sequence[Alert]) -> bool:
        identities = [a.identity() for a in alerts]
        if len(set(identities)) != len(identities):
            return False
        return bool(check_consistency_single(alerts, varname))

    return holds


def maximality_experiment(
    trials: int = 200, n_updates: int = 30, base_seed: int = 424300
) -> dict[str, MaximalityResult]:
    """Theorems 5, 7, 9: greedy maximality probes for AD-2, AD-3, AD-4."""
    streams = collect_arrival_streams(trials, n_updates, base_seed)
    ordered = strict_orderedness_property("x")
    consistent = consistency_property("x")

    def both(alerts: Sequence[Alert]) -> bool:
        return ordered(alerts) and consistent(alerts)

    return {
        "thm5 (AD-2 maximally ordered)": probe_streams(AD2("x"), streams, ordered),
        "thm7 (AD-3 maximally consistent)": probe_streams(
            AD3("x"), streams, consistent
        ),
        "thm9 (AD-4 maximally ordered+consistent)": probe_streams(
            AD4("x"), streams, both
        ),
    }


@dataclass(frozen=True)
class AvailabilityPoint:
    """One sweep point of the Figure-1 motivation experiment."""

    front_loss: float
    replication: int
    trials: int
    mean_miss_fraction: float
    any_alert_missed_fraction: float


def availability_experiment(
    loss_probs: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    replications: Sequence[int] = (1, 2, 3),
    trials: int = 40,
    n_updates: int = 40,
    crash_rate: float = 0.004,
    mean_repair: float = 60.0,
    base_seed: int = 424400,
) -> list[AvailabilityPoint]:
    """Replication vs missed alerts (the paper's motivation for Figure 1).

    Condition c1 over threshold-crossing temperatures; front links lossy;
    each CE additionally crash/recovers as a renewal process (a
    :class:`~repro.faults.plan.FaultProfile` with only CE crashes set,
    materialized per trial from the trial's own seed).  For each
    (loss, replication) point we measure the fraction of ground-truth
    alerts that never reached the user.
    """
    profile = FaultProfile(ce_crash_rate=crash_rate, ce_mean_repair=mean_repair)
    points: list[AvailabilityPoint] = []
    horizon = n_updates * 10.0
    for loss in loss_probs:
        for replication in replications:
            total_miss = 0.0
            runs_with_miss = 0
            for trial in range(trials):
                seed = base_seed + trial + int(loss * 1000) * 7 + replication * 131
                streams = RandomStreams(seed)
                workload = {
                    "x": threshold_crossers(streams.stream("workload/x"), n_updates)
                }
                plan = profile.materialize(
                    streams,
                    horizon=horizon,
                    replication=replication,
                    variables=("x",),
                )
                config = plan.apply_to(
                    SystemConfig(
                        replication=replication,
                        ad_algorithm="AD-1",
                        front_loss=loss,
                    )
                )
                run = run_system(c1(), workload, config, seed=seed)
                stats = delivery_stats(run)
                total_miss += stats.miss_fraction
                if stats.missed > 0:
                    runs_with_miss += 1
            points.append(
                AvailabilityPoint(
                    front_loss=loss,
                    replication=replication,
                    trials=trials,
                    mean_miss_fraction=total_miss / trials,
                    any_alert_missed_fraction=runs_with_miss / trials,
                )
            )
    return points
