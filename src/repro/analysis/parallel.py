"""Parallel trial execution for the randomized experiments.

The table experiments run thousands of independent simulated trials —
embarrassingly parallel work.  This module is the stable front door to
:mod:`repro.engine`: ``run_trials`` maps legacy tuple descriptors over a
:class:`~repro.engine.core.TrialEngine`, and ``build_table_parallel`` is
a drop-in sibling of :func:`repro.analysis.tables.build_table` that plans
the same trial matrix and fans it out.

Scenarios hold lambdas (not picklable), so workers receive only
``(matrix, row, algorithm, seed, n_updates, replication)`` descriptors
and re-resolve the scenario inside the worker process; results come back
as :class:`~repro.props.report.PropertyReport` objects (plain picklable
dataclasses).

With ``processes=1`` everything degrades to the inline sequential path
(and is tested bit-identical to it); ``processes="auto"`` sizes the pool
to the machine.
"""

from __future__ import annotations

from repro.analysis.tables import TableResult
from repro.engine.core import TrialEngine, resolve_processes
from repro.engine.plan import plan_table, tabulate
from repro.engine.spec import TrialSpec as _EngineSpec
from repro.props.report import PropertyReport

__all__ = ["run_trial", "run_trials", "build_table_parallel"]

#: Legacy worker task descriptor:
#: (matrix_name, row, algorithm, seed, n_updates, replication)
TrialSpec = tuple[str, str, str, int, int, int]


def _to_engine_spec(spec: TrialSpec) -> _EngineSpec:
    matrix_name, row, algorithm, seed, n_updates, replication = spec
    return _EngineSpec(
        matrix_name, row, algorithm, seed, n_updates, replication
    )


def run_trial(spec: TrialSpec) -> tuple[int, PropertyReport]:
    """Execute one trial in a (possibly worker) process."""
    engine_spec = _to_engine_spec(spec)
    return engine_spec.seed, engine_spec.execute()


def run_trials(
    specs: list[TrialSpec],
    processes: int | str = 1,
    chunksize: int | None = None,
) -> list[tuple[int, PropertyReport]]:
    """Run trial specs, optionally across a process pool.

    Results come back in spec order regardless of worker scheduling.
    ``chunksize`` overrides the engine's bounded default (see
    :func:`repro.engine.core.default_chunksize`); single-spec batches run
    inline with a debug log rather than silently ignoring ``processes``.
    """
    resolve_processes(processes)  # validate eagerly, like the old API
    engine_specs = [_to_engine_spec(spec) for spec in specs]
    with TrialEngine(processes=processes, chunksize=chunksize) as engine:
        reports = engine.run(engine_specs)
    return [
        (spec.seed, report) for spec, report in zip(engine_specs, reports)
    ]


def build_table_parallel(
    table_id: str,
    trials: int = 100,
    n_updates: int = 30,
    base_seed: int = 20010800,
    completeness_trials: int | None = None,
    completeness_n_updates: int = 8,
    processes: int | str = 1,
    chunksize: int | None = None,
    engine: TrialEngine | None = None,
    collect_counters: bool = False,
    kernel: str = "array",
) -> TableResult:
    """Parallel sibling of :func:`repro.analysis.tables.build_table`.

    Produces identical tallies for identical parameters (same seed
    derivation via :func:`repro.engine.plan.plan_table`), whatever
    ``processes`` is.  Pass an existing ``engine`` to reuse its worker
    pool across several tables; otherwise a throwaway engine is created
    with ``processes``/``chunksize``.
    """
    plan = plan_table(
        table_id,
        trials=trials,
        n_updates=n_updates,
        base_seed=base_seed,
        completeness_trials=completeness_trials,
        completeness_n_updates=completeness_n_updates,
        collect_counters=collect_counters,
        kernel=kernel,
    )
    if engine is not None:
        return tabulate(plan, engine.run(list(plan.specs)))
    with TrialEngine(processes=processes, chunksize=chunksize) as own:
        return tabulate(plan, own.run(list(plan.specs)))
