"""Parallel trial execution for the randomized experiments.

The table experiments run thousands of independent simulated trials —
embarrassingly parallel work.  This module fans trials out over a
``multiprocessing`` pool.  Scenarios hold lambdas (not picklable), so
workers receive only ``(matrix, row, algorithm, seed, n_updates,
replication)`` descriptors and re-resolve the scenario from the module
matrices inside the worker process; results come back as
:class:`~repro.props.report.PropertyReport` objects (plain picklable
dataclasses).

``build_table_parallel`` is a drop-in sibling of
:func:`repro.analysis.tables.build_table`; with ``processes=1`` it
degrades to the sequential path (and is tested equivalent to it).
"""

from __future__ import annotations

import zlib
from multiprocessing import Pool

from repro.analysis.tables import TABLE_CONFIG, TableResult
from repro.props.report import PropertyReport, PropertyTally
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

__all__ = ["run_trial", "run_trials", "build_table_parallel"]

#: Worker task descriptor:
#: (matrix_name, row, algorithm, seed, n_updates, replication)
TrialSpec = tuple[str, str, str, int, int, int]

_MATRICES = {
    "single": SINGLE_VARIABLE_SCENARIOS,
    "multi": MULTI_VARIABLE_SCENARIOS,
}


def run_trial(spec: TrialSpec) -> tuple[int, PropertyReport]:
    """Execute one trial in a (possibly worker) process."""
    matrix_name, row, algorithm, seed, n_updates, replication = spec
    scenario = _MATRICES[matrix_name][row]
    run = run_scenario(
        scenario, algorithm, seed, n_updates=n_updates, replication=replication
    )
    return seed, run.evaluate_properties()


def run_trials(
    specs: list[TrialSpec], processes: int = 1
) -> list[tuple[int, PropertyReport]]:
    """Run trial specs, optionally across a process pool.

    Results come back in spec order regardless of worker scheduling.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes == 1 or len(specs) < 2:
        return [run_trial(spec) for spec in specs]
    with Pool(processes=processes) as pool:
        return pool.map(run_trial, specs, chunksize=max(1, len(specs) // (4 * processes)))


def build_table_parallel(
    table_id: str,
    trials: int = 100,
    n_updates: int = 30,
    base_seed: int = 20010800,
    completeness_trials: int | None = None,
    completeness_n_updates: int = 5,
    processes: int = 1,
) -> TableResult:
    """Parallel sibling of :func:`repro.analysis.tables.build_table`.

    Produces identical tallies for identical parameters (same seed
    derivation), whatever ``processes`` is.
    """
    algorithm, multi = TABLE_CONFIG[table_id]
    matrix_name = "multi" if multi else "single"
    if completeness_trials is None:
        completeness_trials = trials if multi else 0

    specs: list[TrialSpec] = []
    spec_rows: list[tuple[str, int]] = []  # (row, seed) aligned with specs
    for row in ROW_ORDER:
        cell_offset = zlib.crc32(f"{table_id}/{row}".encode()) % 100_000
        for trial in range(trials):
            seed = base_seed + cell_offset + trial
            specs.append((matrix_name, row, algorithm, seed, n_updates, 2))
            spec_rows.append((row, seed))
        for trial in range(completeness_trials):
            seed = base_seed + 7_000_000 + cell_offset + trial
            specs.append(
                (matrix_name, row, algorithm, seed, completeness_n_updates, 2)
            )
            spec_rows.append((row, seed))

    outcomes = run_trials(specs, processes=processes)

    result = TableResult(table_id, algorithm, multi, trials)
    tallies = {row: PropertyTally() for row in ROW_ORDER}
    for (row, seed), (_, report) in zip(spec_rows, outcomes):
        tallies[row].add(report, seed=seed)
    result.tallies.update(tallies)
    return result
