"""Side-by-side algorithm comparison on a single arrival stream.

Given one run's arrival stream, replay it through every applicable AD
algorithm and show, alert by alert, who displays what — the fastest way
to *see* the tradeoffs of Tables 1–3 on a concrete trace::

    arrival        AD-1  AD-2  AD-3  AD-4
    a(2x,1x)        ✓     ✓     ✓     ✓
    a(3x,1x)        ✓     ✓     ✗     ✗     <- conflicts with a(2x,1x)
    a(4x,3x)        ✓     ✓     ✓     ✗

Exposed on the CLI as ``python -m repro compare``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.components.system import RunResult
from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.displayers.base import ADAlgorithm
from repro.displayers.registry import make_ad
from repro.props.report import evaluate_run

__all__ = ["ComparisonRow", "AlgorithmComparison", "compare_algorithms", "compare_run"]


@dataclass(frozen=True)
class ComparisonRow:
    """One arriving alert and each algorithm's verdict."""

    alert: Alert
    verdicts: dict[str, bool]


@dataclass(frozen=True)
class AlgorithmComparison:
    """Full comparison: per-arrival verdicts plus per-algorithm summaries."""

    algorithms: tuple[str, ...]
    rows: tuple[ComparisonRow, ...]
    #: algorithm -> (displayed count, properties summary or None)
    summaries: dict[str, dict]

    def render(self) -> str:
        width = max((len(r.alert.shorthand()) for r in self.rows), default=10)
        header = f"{'arrival':<{width + 2}}" + "".join(
            f"{name:>7}" for name in self.algorithms
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = "".join(
                f"{'✓' if row.verdicts[name] else '·':>7}"
                for name in self.algorithms
            )
            lines.append(f"{row.alert.shorthand():<{width + 2}}{cells}")
        lines.append("-" * len(header))
        displayed = "".join(
            f"{self.summaries[name]['displayed']:>7}" for name in self.algorithms
        )
        lines.append(f"{'displayed':<{width + 2}}{displayed}")
        for prop in ("ordered", "complete", "consistent"):
            marks = []
            for name in self.algorithms:
                verdict = self.summaries[name]["properties"]
                mark = "?"
                if verdict is not None:
                    value = verdict.get(prop)
                    mark = "?" if value is None else ("✓" if value else "✗")
                marks.append(f"{mark:>7}")
            lines.append(f"{prop:<{width + 2}}{''.join(marks)}")
        return "\n".join(lines)


def compare_algorithms(
    condition: Condition,
    arrivals: Sequence[Alert],
    algorithm_names: Sequence[str],
    traces: Sequence[Sequence] | None = None,
) -> AlgorithmComparison:
    """Replay one arrival stream through several fresh algorithms.

    When ``traces`` (the per-CE received updates) are supplied, each
    algorithm's output is also scored on the three properties.
    """
    instances: dict[str, ADAlgorithm] = {
        name: make_ad(name, condition) for name in algorithm_names
    }
    rows = []
    for alert in arrivals:
        verdicts = {
            name: instance.offer(alert) for name, instance in instances.items()
        }
        rows.append(ComparisonRow(alert, verdicts))
    summaries = {}
    for name, instance in instances.items():
        properties = None
        if traces is not None:
            properties = evaluate_run(
                condition, traces, list(instance.output)
            ).summary
        summaries[name] = {
            "displayed": len(instance.output),
            "properties": properties,
        }
    return AlgorithmComparison(tuple(algorithm_names), tuple(rows), summaries)


def compare_run(
    run: RunResult, algorithm_names: Sequence[str] | None = None
) -> AlgorithmComparison:
    """Compare algorithms on a completed run's actual arrival stream."""
    if algorithm_names is None:
        if len(run.condition.variables) == 1:
            algorithm_names = ("AD-1", "AD-2", "AD-3", "AD-4")
        else:
            algorithm_names = ("AD-1", "AD-5", "AD-6")
    return compare_algorithms(
        run.condition, run.ad_arrivals, algorithm_names, traces=run.received
    )
