"""Regenerating the paper's property tables (Tables 1–3 and the AD-3/AD-4/
AD-6 variants described in §4.3, §4.4 and §5.2).

A *table* here is: for each scenario row, run many randomized trials of a
two-CE system under one AD algorithm, decide the three properties for
every trial, and mark the cell ``✓`` if no violation was ever witnessed
and ``✗`` otherwise.  ``✓`` cells correspond to the paper's theorems
(proved to always hold); ``✗`` cells are existence claims for which each
measured ✗ retains a counterexample seed.

The expected grids below transcribe the paper:

* Table 1 — single variable, Algorithm AD-1 (Theorems 1–4);
* Table 2 — single variable, Algorithm AD-2 (§4.2);
* AD-3 — "very similar to Table 1 except that the last row (Aggressive
  Triggering) is also consistent" (§4.3);
* AD-4 — "very similar to Table 2 except that Aggressive Triggering also
  becomes consistent" (§4.4);
* Table 3 — multi variable, Algorithm AD-5 (Lemmas 4–6);
* AD-6 — "the same as Table 3 except that the last row is also
  consistent" (§5.2);
* AD-1 multi-variable — "neither ordered nor consistent (hence not
  complete either)" (Theorem 10).
"""

from __future__ import annotations

import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.props.report import PropertyTally
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

__all__ = [
    "EXPECTED_GRIDS",
    "TableResult",
    "build_table",
    "render_table",
    "grid_matches",
]

#: (ordered, complete, consistent) per row; transcribed from the paper.
Grid = Mapping[str, tuple[bool, bool, bool]]

EXPECTED_GRIDS: dict[str, Grid] = {
    # Table 1: single variable under AD-1.
    "table1": {
        "lossless": (True, True, True),
        "non-historical": (False, True, True),
        "conservative": (False, False, True),
        "aggressive": (False, False, False),
    },
    # Table 2: single variable under AD-2.
    "table2": {
        "lossless": (True, True, True),
        "non-historical": (True, False, True),
        "conservative": (True, False, True),
        "aggressive": (True, False, False),
    },
    # §4.3: AD-3 = Table 1 with the aggressive row also consistent.
    "ad3": {
        "lossless": (True, True, True),
        "non-historical": (False, True, True),
        "conservative": (False, False, True),
        "aggressive": (False, False, True),
    },
    # §4.4: AD-4 = Table 2 with the aggressive row also consistent.
    "ad4": {
        "lossless": (True, True, True),
        "non-historical": (True, False, True),
        "conservative": (True, False, True),
        "aggressive": (True, False, True),
    },
    # Table 3: multi variable under AD-5.
    "table3": {
        "lossless": (True, False, True),
        "non-historical": (True, False, True),
        "conservative": (True, False, True),
        "aggressive": (True, False, False),
    },
    # §5.2: AD-6 = Table 3 with the aggressive row also consistent.
    "ad6": {
        "lossless": (True, False, True),
        "non-historical": (True, False, True),
        "conservative": (True, False, True),
        "aggressive": (True, False, True),
    },
    # Theorem 10: multi variable under AD-1 guarantees nothing.
    "ad1-multi": {
        "lossless": (False, False, False),
        "non-historical": (False, False, False),
        "conservative": (False, False, False),
        "aggressive": (False, False, False),
    },
}

#: Which AD algorithm each experiment id runs, and on which scenario matrix.
TABLE_CONFIG: dict[str, tuple[str, bool]] = {
    "table1": ("AD-1", False),
    "table2": ("AD-2", False),
    "ad3": ("AD-3", False),
    "ad4": ("AD-4", False),
    "table3": ("AD-5", True),
    "ad6": ("AD-6", True),
    "ad1-multi": ("AD-1", True),
}


@dataclass
class TableResult:
    """Measured grid for one table experiment."""

    table_id: str
    algorithm: str
    multi_variable: bool
    trials_per_cell: int
    tallies: dict[str, PropertyTally] = field(default_factory=dict)

    def measured_grid(self) -> dict[str, tuple[bool | None, bool | None, bool | None]]:
        grid = {}
        for row, tally in self.tallies.items():
            grid[row] = (
                tally.always_ordered,
                tally.always_complete,
                tally.always_consistent,
            )
        return grid

    def matches_paper(self) -> bool:
        return grid_matches(self.measured_grid(), EXPECTED_GRIDS[self.table_id])


def grid_matches(measured: Mapping[str, tuple], expected: Grid) -> bool:
    """True iff every decided cell agrees with the paper (None = undecided)."""
    for row, expected_cell in expected.items():
        measured_cell = measured.get(row)
        if measured_cell is None:
            return False
        for got, want in zip(measured_cell, expected_cell):
            if got is not None and got != want:
                return False
    return True


def build_table(
    table_id: str,
    trials: int = 100,
    n_updates: int = 30,
    base_seed: int = 20010800,
    completeness_trials: int | None = None,
    completeness_n_updates: int = 8,
    kernel: str = "array",
) -> TableResult:
    """Run the full trial matrix for one table experiment.

    For multi-variable tables the exact completeness oracle is only
    tractable on short traces, so an extra batch of
    ``completeness_trials`` runs with ``completeness_n_updates`` readings
    per variable is folded into the same tallies (the main batch's
    completeness checks are skipped automatically when the interleaving
    count explodes).  The pruned DFS checker decides 8 readings per
    variable comfortably — the enumeration it replaced capped this knob
    at 5.
    """
    algorithm, multi = TABLE_CONFIG[table_id]
    scenarios = MULTI_VARIABLE_SCENARIOS if multi else SINGLE_VARIABLE_SCENARIOS
    if completeness_trials is None:
        completeness_trials = trials if multi else 0
    result = TableResult(table_id, algorithm, multi, trials)
    for row in ROW_ORDER:
        scenario = scenarios[row]
        tally = PropertyTally()
        # Stable per-cell seed offsets (zlib.crc32 is process-independent,
        # unlike hash(), which PYTHONHASHSEED randomises).
        cell_offset = zlib.crc32(f"{table_id}/{row}".encode()) % 100_000
        for trial in range(trials):
            seed = base_seed + cell_offset + trial
            run = run_scenario(
                scenario, algorithm, seed, n_updates=n_updates, kernel=kernel
            )
            tally.add(run.evaluate_properties(), seed=seed)
        for trial in range(completeness_trials):
            seed = base_seed + 7_000_000 + cell_offset + trial
            run = run_scenario(
                scenario, algorithm, seed, n_updates=completeness_n_updates,
                kernel=kernel,
            )
            tally.add(run.evaluate_properties(), seed=seed)
        result.tallies[row] = tally
    return result


_CHECK = "✓"
_CROSS = "✗"


def _mark(value: bool | None) -> str:
    if value is None:
        return "?"
    return _CHECK if value else _CROSS


def render_table(result: TableResult) -> str:
    """Render a measured-vs-paper grid as fixed-width text."""
    expected = EXPECTED_GRIDS[result.table_id]
    header = (
        f"{result.table_id}: scenario matrix under {result.algorithm} "
        f"({'multi' if result.multi_variable else 'single'}-variable, "
        f"{result.trials_per_cell}+ trials/cell)"
    )
    lines = [header, "-" * len(header)]
    lines.append(
        f"{'Scenario':<16} {'Ord.':>10} {'Comp.':>10} {'Cons.':>10}   paper / measured"
    )
    agreement = True
    for row in ROW_ORDER:
        tally = result.tallies[row]
        measured = (
            tally.always_ordered,
            tally.always_complete,
            tally.always_consistent,
        )
        cells = []
        for got, want in zip(measured, expected[row]):
            ok = got is None or got == want
            agreement = agreement and ok
            cells.append(f"{_mark(want)}/{_mark(got)}{'' if ok else ' !'}")
        lines.append(
            f"{row:<16} {cells[0]:>10} {cells[1]:>10} {cells[2]:>10}"
        )
    lines.append(f"paper agreement: {'YES' if agreement else 'NO'}")
    return "\n".join(lines)
