"""Trace events — the unit of structured observability.

Every instrumented component (kernel, links, CEs, the AD) describes what
it did as a :class:`TraceEvent`: a simulated timestamp, a *stage* naming
the layer that emitted it, a *kind* naming the action, the emitting
*node*, and a small payload of JSON-serialisable details.  The event
stream of a run is itself the first-class artifact: identical
``(seed, config)`` pairs must produce identical event streams, which is
what the replay machinery (:mod:`repro.observability.replay`) asserts.

The JSONL schema is versioned via :data:`SCHEMA_VERSION`; bump it
whenever the serialised shape of events (or the recorder's header/footer
lines) changes incompatibly, so old trace files fail loudly instead of
replaying against the wrong decoder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "STAGE_KERNEL",
    "STAGE_LINK",
    "STAGE_CE",
    "STAGE_AD",
    "STAGE_FAULT",
    "STAGE_MEMBERSHIP",
    "TraceEvent",
    "event_from_json_obj",
]

#: Version tag written into every trace header.  ``repro.trace/1`` covers:
#: kernel schedule/fire/cancel/compact, link send/drop/deliver/hold,
#: ce update-received/missed/alert-raised, ad arrive/display/filter,
#: the time-0.0 ``fault`` surface preamble, and the ``membership``
#: lifecycle (config/heartbeat/suspect/detection/recovery-plan preamble
#: plus runtime rejoin/buffered/stale-drop/catchup-ingest/
#: replay-buffered/catchup-complete/below-quorum) — all additive, so
#: the version tag is unchanged.
SCHEMA_VERSION = "repro.trace/1"

STAGE_KERNEL = "kernel"
STAGE_LINK = "link"
STAGE_CE = "ce"
STAGE_AD = "ad"
STAGE_FAULT = "fault"
STAGE_MEMBERSHIP = "membership"


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation of a run.

    ``data`` holds stage-specific details (message shorthands, drop
    reasons, queue sizes).  Values must be JSON-serialisable scalars so
    the event round-trips through the JSONL recorder unchanged.
    """

    time: float
    stage: str
    kind: str
    node: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def key(self) -> str:
        """The ``stage/kind/node`` counter key used by CountersTracer."""
        return f"{self.stage}/{self.kind}/{self.node}"

    def to_json_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "t": self.time,
            "stage": self.stage,
            "kind": self.kind,
            "node": self.node,
        }
        if self.data:
            obj["data"] = dict(self.data)
        return obj

    def json_line(self) -> str:
        """Canonical single-line rendering (sorted keys, no whitespace).

        Two events are bit-identical iff their ``json_line`` strings are
        equal — this is the equality the replay checker enforces.
        """
        return json.dumps(
            self.to_json_obj(), sort_keys=True, separators=(",", ":")
        )


def event_from_json_obj(obj: Mapping[str, Any]) -> TraceEvent:
    """Decode one event line previously produced by :meth:`json_line`."""
    return TraceEvent(
        time=obj["t"],
        stage=obj["stage"],
        kind=obj["kind"],
        node=obj["node"],
        data=dict(obj.get("data", {})),
    )
