"""Deterministic trace recording and replay.

A recorded trace is the full proof of one run: a header naming the
``(scenario, algorithm, seed, knobs)`` that produced it, the structured
event stream the instrumented components emitted, and the run's final
:class:`~repro.analysis.metrics.RunMetrics` as a footer.  Because every
run is fully determined by its :class:`~repro.engine.spec.TrialSpec`,
replaying means *re-executing* the spec under a fresh recorder and
asserting the two event streams are bit-identical (canonical JSONL line
by line) — the strongest statement of the kernel's determinism contract,
and the property the Hypothesis suite exercises on random specs.

File format (``.jsonl``)::

    {"schema": "repro.trace/1", "record": "header", "spec": {...}}
    {"record": "event", "t": ..., "stage": ..., "kind": ..., "node": ...}
    ...
    {"record": "metrics", "metrics": {...}}
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.observability.events import (
    SCHEMA_VERSION,
    TraceEvent,
    event_from_json_obj,
)
from repro.observability.tracer import MemoryTracer

__all__ = [
    "TraceSchemaError",
    "RecordedTrace",
    "ReplayResult",
    "record_trial",
    "load_trace",
    "replay_trace",
    "summarize_trace",
]


class TraceSchemaError(ValueError):
    """Raised when a trace file does not match the supported schema."""


def _canonical(obj: Any) -> Any:
    """Normalise tuples/dataclasses to the JSON value space, so in-memory
    and reloaded traces compare equal."""
    return json.loads(json.dumps(obj, sort_keys=True))


@dataclass(frozen=True)
class RecordedTrace:
    """Header + event stream + metrics footer of one recorded run."""

    spec: dict[str, Any]
    events: tuple[TraceEvent, ...]
    metrics: dict[str, Any]
    schema: str = SCHEMA_VERSION

    def event_lines(self) -> list[str]:
        """The canonical JSONL event lines (the bit-identity carrier)."""
        return [event.json_line() for event in self.events]

    def to_jsonl(self) -> str:
        header = {
            "schema": self.schema,
            "record": "header",
            "spec": self.spec,
        }
        footer = {"record": "metrics", "metrics": self.metrics}
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for event in self.events:
            obj = {"record": "event", **event.to_json_obj()}
            lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))
        lines.append(json.dumps(footer, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path


def record_trial(spec) -> RecordedTrace:
    """Execute ``spec`` under a fresh recorder and capture everything.

    ``spec`` is a :class:`~repro.engine.spec.TrialSpec`; the import is
    deferred so that lightweight consumers of this module do not pull in
    the scenario matrices.
    """
    from repro.analysis.metrics import collect_metrics
    from repro.workloads.scenarios import run_scenario

    recorder = MemoryTracer()
    run = run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        tracer=recorder,
        faults=getattr(spec, "faults", None),
        kernel=getattr(spec, "kernel", "array"),
        membership=getattr(spec, "membership", None),
        sharding=getattr(spec, "sharding", None),
    )
    return RecordedTrace(
        spec=_canonical(asdict(spec)),
        events=tuple(recorder.events),
        metrics=_canonical(asdict(collect_metrics(run))),
    )


def load_trace(path: str | Path) -> RecordedTrace:
    """Parse a ``.jsonl`` trace file, validating its schema version."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise TraceSchemaError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("record") != "header":
        raise TraceSchemaError(f"first line of {path} is not a trace header")
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise TraceSchemaError(
            f"unsupported trace schema {schema!r} (supported: {SCHEMA_VERSION!r})"
        )
    events: list[TraceEvent] = []
    metrics: dict[str, Any] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        obj = json.loads(line)
        record = obj.get("record")
        if record == "event":
            events.append(event_from_json_obj(obj))
        elif record == "metrics":
            metrics = obj.get("metrics", {})
        else:
            raise TraceSchemaError(
                f"{path}:{lineno}: unknown record type {record!r}"
            )
    return RecordedTrace(
        spec=header["spec"], events=tuple(events), metrics=metrics,
        schema=schema,
    )


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a recorded trace against a live re-execution."""

    events_identical: bool
    metrics_identical: bool
    recorded_events: int
    replayed_events: int
    #: First (index, recorded line, replayed line) mismatch; lines are
    #: None past the end of the shorter stream.
    first_divergence: tuple[int, str | None, str | None] | None = None
    replayed: RecordedTrace | None = field(default=None, compare=False)

    @property
    def identical(self) -> bool:
        return self.events_identical and self.metrics_identical

    def __bool__(self) -> bool:
        return self.identical

    def describe(self) -> str:
        if self.identical:
            return (
                f"replay OK: {self.replayed_events} events bit-identical, "
                "metrics identical"
            )
        parts = []
        if not self.events_identical:
            index, recorded, replayed = self.first_divergence
            parts.append(
                f"event streams diverge at index {index}: "
                f"recorded={recorded!r} replayed={replayed!r} "
                f"({self.recorded_events} recorded vs "
                f"{self.replayed_events} replayed events)"
            )
        if not self.metrics_identical:
            parts.append("run metrics differ")
        return "replay FAILED: " + "; ".join(parts)


def replay_trace(trace: RecordedTrace) -> ReplayResult:
    """Re-execute a recorded trace's spec and compare event streams."""
    from repro.engine.spec import TrialSpec

    replayed = record_trial(TrialSpec(**trace.spec))
    recorded_lines = trace.event_lines()
    replayed_lines = replayed.event_lines()
    divergence = None
    for index in range(max(len(recorded_lines), len(replayed_lines))):
        a = recorded_lines[index] if index < len(recorded_lines) else None
        b = replayed_lines[index] if index < len(replayed_lines) else None
        if a != b:
            divergence = (index, a, b)
            break
    return ReplayResult(
        events_identical=divergence is None,
        metrics_identical=_canonical(trace.metrics)
        == _canonical(replayed.metrics),
        recorded_events=len(recorded_lines),
        replayed_events=len(replayed_lines),
        first_divergence=divergence,
        replayed=replayed,
    )


def summarize_trace(trace: RecordedTrace) -> dict[str, Any]:
    """Aggregate a trace for human consumption (the CLI's ``summarize``)."""
    per_stage: dict[str, dict[str, int]] = {}
    nodes: set[str] = set()
    for event in trace.events:
        per_stage.setdefault(event.stage, {})
        per_stage[event.stage][event.kind] = (
            per_stage[event.stage].get(event.kind, 0) + 1
        )
        if event.node:
            nodes.add(event.node)
    return {
        "schema": trace.schema,
        "spec": dict(trace.spec),
        "events": len(trace.events),
        "duration": max((event.time for event in trace.events), default=0.0),
        "stages": {
            stage: dict(sorted(kinds.items()))
            for stage, kinds in sorted(per_stage.items())
        },
        "nodes": sorted(nodes),
        "metrics": dict(trace.metrics),
    }
