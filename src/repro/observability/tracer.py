"""Tracer implementations — where emitted events go.

The kernel and the instrumented components hold a single optional
``tracer`` per run and call ``tracer.emit(...)`` only when one is
attached, so a run without observability pays one attribute check per
instrumentation point and nothing else.  Implementations here cover the
three consumption modes the observability layer needs:

* :class:`CountersTracer` — per-stage/kind/node counters, cheap enough
  to leave on across thousands of trials; conserved totals are
  cross-validated against :func:`repro.analysis.metrics.collect_metrics`
  in the property suite.
* :class:`MemoryTracer` / :class:`JsonlTraceRecorder` — full event
  capture, for replay equality checks and JSONL trace artifacts.
* :class:`TeeTracer` — fan one run out to several consumers.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Protocol, runtime_checkable

from repro.observability.events import TraceEvent

__all__ = [
    "Tracer",
    "NullTracer",
    "MemoryTracer",
    "CountersTracer",
    "ReasonCountersTracer",
    "TeeTracer",
]


@runtime_checkable
class Tracer(Protocol):
    """Anything that can receive instrumentation events."""

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None: ...


class NullTracer:
    """Swallows every event — an *attached but inert* tracer.

    Useful for measuring the cost of the emission path itself (payload
    construction included) as opposed to the disabled path, where the
    ``tracer is None`` check short-circuits before any payload is built.
    """

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None:
        return None


class MemoryTracer:
    """Records every event, in emission order, as :class:`TraceEvent`s."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None:
        self.events.append(TraceEvent(time, stage, kind, node, data))

    def event_lines(self) -> list[str]:
        """Canonical JSONL rendering of the captured stream."""
        return [event.json_line() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class CountersTracer:
    """Per-stage, per-node event counters.

    Keys are ``"stage/kind/node"`` strings (flat, picklable, mergeable),
    e.g. ``"link/drop/DM-x->CE1"`` or ``"ad/display/AD"``.  Payloads are
    discarded; only occurrence counts are kept, which makes this tracer
    cheap enough for bulk trial batches.
    """

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None:
        self.counts[f"{stage}/{kind}/{node}"] += 1

    def as_dict(self) -> dict[str, int]:
        """A plain sorted dict — the picklable cross-process form."""
        return dict(sorted(self.counts.items()))

    def merge(self, counters: "CountersTracer | dict[str, int]") -> None:
        """Fold another tracer's (or ``as_dict``'s) counts into this one.

        The service runtime keeps one tracer per connection pipeline and
        merges them into the server-lifetime aggregate on drain.
        """
        if isinstance(counters, CountersTracer):
            counters = counters.counts
        self.counts.update(counters)

    def total(self, stage: str, kind: str) -> int:
        """Sum of ``stage/kind/*`` over every node."""
        prefix = f"{stage}/{kind}/"
        return sum(
            count for key, count in self.counts.items()
            if key.startswith(prefix)
        )

    def node_total(self, stage: str, kind: str, node: str) -> int:
        return self.counts.get(f"{stage}/{kind}/{node}", 0)

    def stage_summary(self) -> dict[str, dict[str, int]]:
        """``{stage: {kind: count}}`` aggregated over nodes."""
        summary: dict[str, dict[str, int]] = {}
        for key, count in sorted(self.counts.items()):
            stage, kind, _node = key.split("/", 2)
            summary.setdefault(stage, {})
            summary[stage][kind] = summary[stage].get(kind, 0) + count
        return summary


class ReasonCountersTracer(CountersTracer):
    """Counters keyed by ``"stage/kind:reason/node"`` when a reason exists.

    The flat :class:`CountersTracer` keys discard event payloads, which
    erases exactly the dimension behaviour-coverage cares about: *why* a
    datagram was dropped (``loss`` vs ``burst`` vs ``outage``) or why the
    AD rejected an alert (the per-algorithm ``rejection_reason``).  This
    variant splices the event's ``reason`` payload field into the kind
    segment, so ``link/drop/...`` fans out into ``link/drop:loss/...``,
    ``link/drop:burst/...`` etc. while reason-less events keep their
    plain ``stage/kind/node`` keys.  Everything else (merging, totals,
    picklability) is inherited.

    Reasons are truncated to their *class* — the text before the first
    colon — because AD rejection reasons embed instance detail after it
    (``"seqno regression: a.seqno.x=13 <= ..."``): a counter per
    distinct seqno pair would be as unbounded as the runs themselves,
    and coverage signatures built on these keys would degenerate into
    run identities.
    """

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None:
        reason = data.get("reason")
        if reason is not None:
            kind = f"{kind}:{str(reason).split(':', 1)[0]}"
        self.counts[f"{stage}/{kind}/{node}"] += 1


class TeeTracer:
    """Forwards every event to several tracers in order."""

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = tuple(tracers)

    def emit(
        self, time: float, stage: str, kind: str, node: str, **data: Any
    ) -> None:
        for tracer in self.tracers:
            tracer.emit(time, stage, kind, node, **data)
