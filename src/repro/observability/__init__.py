"""Structured observability: kernel event tracing, counters, and replay.

The paper's properties are timing-dependent — which interleaving of
A1/A2 the AD saw decides orderedness/completeness/consistency — so the
*observed event stream itself* is a first-class artifact here.  This
package provides:

* a :class:`~repro.observability.tracer.Tracer` protocol that every
  instrumented layer (kernel, links, CEs, AD) emits into when a tracer
  is attached to the run's kernel — and costs one ``is None`` check per
  instrumentation point when none is;
* :class:`~repro.observability.tracer.CountersTracer` for per-stage,
  per-node counters cheap enough to aggregate across trial batches;
* JSONL trace recording and deterministic replay
  (:mod:`repro.observability.replay`): any interesting run — a property
  violation, a perf regression, a flaky property test — can be captured
  with ``repro trace record`` and re-executed bit-identically with
  ``repro trace replay``.
"""

from repro.observability.events import (
    SCHEMA_VERSION,
    STAGE_AD,
    STAGE_CE,
    STAGE_KERNEL,
    STAGE_LINK,
    TraceEvent,
    event_from_json_obj,
)
from repro.observability.replay import (
    RecordedTrace,
    ReplayResult,
    TraceSchemaError,
    load_trace,
    record_trial,
    replay_trace,
    summarize_trace,
)
from repro.observability.tracer import (
    CountersTracer,
    MemoryTracer,
    NullTracer,
    ReasonCountersTracer,
    TeeTracer,
    Tracer,
)

__all__ = [
    "SCHEMA_VERSION",
    "STAGE_KERNEL",
    "STAGE_LINK",
    "STAGE_CE",
    "STAGE_AD",
    "TraceEvent",
    "event_from_json_obj",
    "Tracer",
    "NullTracer",
    "MemoryTracer",
    "CountersTracer",
    "ReasonCountersTracer",
    "TeeTracer",
    "RecordedTrace",
    "ReplayResult",
    "TraceSchemaError",
    "record_trial",
    "load_trace",
    "replay_trace",
    "summarize_trace",
]
