"""Command-line interface: ``python -m repro <command>``.

Everything the benchmarks do, driveable from a shell::

    python -m repro tables table1 table2        # regenerate paper tables
    python -m repro scenario aggressive --algorithm AD-1 --seed 7 --timeline
    python -m repro trace record aggressive --seed 7 --out run.jsonl
    python -m repro trace replay run.jsonl      # bit-identical or exit 1
    python -m repro trace summarize run.jsonl
    python -m repro shrink aggressive --property consistent
    python -m repro fuzz --target consistency --budget 2000 --minimize
    python -m repro domination
    python -m repro maximality
    python -m repro availability --trials 30
    python -m repro chaos --intensities 0 1 2 --trials 30
    python -m repro quality --row aggressive --trials 20
    python -m repro quality --losses 0 0.3 --intensities 0 1 --json out.json
    python -m repro feed record aggressive --seed 7 --out run.feed.jsonl
    python -m repro feed conform run.feed.jsonl   # all runtimes identical?
    python -m repro serve --port 7801             # online monitoring service
    python -m repro feed send run.feed.jsonl --port 7801 --conform
    python -m repro list

Exit status is 0 when the measured results agree with the paper's claims,
1 otherwise — so the CLI doubles as a reproduction check in CI.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.experiments import (
    availability_experiment,
    domination_experiment,
    maximality_experiment,
)
from repro.analysis.tables import EXPECTED_GRIDS, build_table, render_table
from repro.analysis.witness import counterexample_from_run, shrink_counterexample
from repro.displayers.registry import algorithm_info, algorithm_names, make_ad
from repro.workloads.scenarios import (
    DIVERSITY_ROWS,
    MULTI_VARIABLE_SCENARIOS,
    ROW_ORDER,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

__all__ = ["main"]


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.engine import TrialEngine, resolve_processes

    table_ids = args.tables or list(EXPECTED_GRIDS)
    all_ok = True
    # One persistent engine serves every requested table: the worker pool
    # (and each worker's warmed imports) is reused across grids.
    with TrialEngine(processes=args.processes) as engine:
        parallel = resolve_processes(args.processes) > 1
        for table_id in table_ids:
            if table_id not in EXPECTED_GRIDS:
                print(
                    f"unknown table {table_id!r}; known: {list(EXPECTED_GRIDS)}"
                )
                return 2
            kwargs = {"kernel": args.kernel}
            if args.trials:
                kwargs["trials"] = args.trials
            if args.updates:
                kwargs["n_updates"] = args.updates
            if parallel or args.counters:
                from repro.analysis.parallel import build_table_parallel

                result = build_table_parallel(
                    table_id, engine=engine,
                    collect_counters=args.counters, **kwargs
                )
            else:
                result = build_table(table_id, **kwargs)
            print(render_table(result))
            if args.counters:
                _print_table_counters(result)
            print()
            all_ok = all_ok and result.matches_paper()
    print(f"overall paper agreement: {'YES' if all_ok else 'NO'}")
    return 0 if all_ok else 1


def _print_stage_counters(summary: dict[str, dict[str, int]], indent: str = "  ") -> None:
    for stage, kinds in summary.items():
        rendered = ", ".join(f"{kind}={count}" for kind, count in kinds.items())
        print(f"{indent}{stage:<7} {rendered}")


def _print_table_counters(result) -> None:
    print("observability counters (summed over trials):")
    for row, tally in result.tallies.items():
        print(f" {row}:")
        _print_stage_counters(tally.stage_counters(), indent="   ")


def _scenario_for(row: str, multi: bool):
    scenarios = MULTI_VARIABLE_SCENARIOS if multi else SINGLE_VARIABLE_SCENARIOS
    if row not in scenarios:
        raise SystemExit(
            f"unknown scenario {row!r} in the"
            f" {'multi' if multi else 'single'}-variable matrix;"
            f" rows: {sorted(scenarios)}"
        )
    return scenarios[row]


def _cmd_scenario(args: argparse.Namespace) -> int:
    scenario = _scenario_for(args.row, args.multi)
    tracer = None
    if args.counters:
        from repro.observability import CountersTracer

        tracer = CountersTracer()
    run = run_scenario(
        scenario, args.algorithm, args.seed, n_updates=args.updates,
        tracer=tracer, kernel=args.kernel,
    )
    print(f"scenario: {scenario.label}")
    print(f"algorithm: {args.algorithm}, seed: {args.seed}")
    for var, sent in run.sent.items():
        print(f"  DM-{var} sent {len(sent)} updates")
    for index, trace in enumerate(run.received):
        print(f"  CE{index + 1} received {len(trace)}, generated "
              f"{len(run.ce_alerts[index])} alerts")
    print(f"  AD displayed {len(run.displayed)} of {len(run.ad_arrivals)} arrivals")
    report = run.evaluate_properties()
    print(f"  properties: {report.summary}")
    if tracer is not None:
        print("  observability counters:")
        _print_stage_counters(tracer.stage_summary(), indent="    ")
    if args.timeline:
        from repro.analysis.timeline import render_logical_timeline

        print()
        print(render_logical_timeline(run))
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    scenario = _scenario_for(args.row, args.multi)
    condition = scenario.make_condition()
    for seed in range(args.seed, args.seed + args.max_seeds):
        run = run_scenario(scenario, args.algorithm, seed, n_updates=args.updates)
        counterexample = counterexample_from_run(run)
        if counterexample is None:
            continue
        if args.property and counterexample.violation != args.property:
            continue
        print(f"violation found at seed {seed}; shrinking "
              f"({counterexample.total_updates} updates) ...")
        shrunk = shrink_counterexample(
            counterexample, lambda: make_ad(args.algorithm, condition)
        )
        print(shrunk.describe())
        print(f"(shrunk from {counterexample.total_updates} to "
              f"{shrunk.total_updates} updates)")
        return 0
    print(f"no {'violation' if not args.property else args.property + ' violation'} "
          f"found in seeds [{args.seed}, {args.seed + args.max_seeds})")
    return 1


#: Accepted ``--target`` spellings (the paper says "consistency", the
#: report keys say "consistent" — take both).
_FUZZ_TARGETS = {
    "ordered": "ordered",
    "orderedness": "ordered",
    "complete": "complete",
    "completeness": "complete",
    "consistent": "consistent",
    "consistency": "consistent",
    "any": None,
}


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.engine import TrialEngine, resolve_processes
    from repro.fuzz import FuzzConfig, FuzzEngine, shrink_spec
    from repro.observability import replay_trace

    _scenario_for(args.row, args.multi)  # validate the row early
    config = FuzzConfig(
        matrix="multi" if args.multi else "single",
        row=args.row,
        algorithm=args.algorithm,
        target=_FUZZ_TARGETS[args.target],
        budget=args.budget,
        fuzz_seed=args.fuzz_seed,
        batch_size=args.batch,
        n_updates=args.updates,
        replication=args.replication,
        kernel=args.kernel,
    )
    if resolve_processes(args.processes) > 1:
        with TrialEngine(processes=args.processes) as engine:
            result = FuzzEngine(config, engine=engine).run()
    else:
        result = FuzzEngine(config).run()

    print(
        f"fuzz: {config.matrix}/{config.row} {config.algorithm} "
        f"target={args.target} budget={config.budget} "
        f"fuzz-seed={config.fuzz_seed}"
    )
    print(
        f"  {result.executed} runs ({result.skipped_duplicates} duplicate "
        f"specs skipped), corpus {result.corpus_size}, "
        f"{result.features} coverage features, "
        f"{result.distinct_signatures} distinct signatures"
    )
    print(
        f"  {result.distinct_violating_signatures} distinct violating "
        "signatures"
    )
    if not result.findings:
        print("  no violations found")
        return 1

    for finding in result.findings[:5]:
        spec = finding.witness_spec
        print(
            f"  - {finding.violation} @ seed={spec.seed} "
            f"n_updates={spec.n_updates} replication={spec.replication}"
            + ("" if spec.faults is None else " +faults")
        )
    if len(result.findings) > 5:
        print(f"    ... and {len(result.findings) - 5} more")

    if not args.minimize:
        return 0

    out_dir = None
    if args.out:
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    replays_ok = True
    for index, finding in enumerate(result.findings[: args.minimize_limit]):
        shrunk = shrink_spec(finding.witness_spec, finding.violation)
        print()
        print(shrunk.describe())
        replay = replay_trace(shrunk.trace)
        print(f"  replay: {replay.describe()}")
        replays_ok = replays_ok and replay.identical
        if out_dir is not None:
            path = shrunk.trace.write(
                out_dir / f"witness_{index}_{finding.violation}.jsonl"
            )
            print(f"  trace written to {path}")
    return 0 if replays_ok else 1


def _cmd_domination(args: argparse.Namespace) -> int:
    results = domination_experiment(trials=args.trials)
    ok = True
    for name, result in results.items():
        verdict = "holds" if result.dominates else "VIOLATED"
        print(f"{name}: {verdict} over {result.streams} streams "
              f"({result.strict_witnesses} strict witnesses)")
        ok = ok and result.dominates and result.strictly_dominates
    return 0 if ok else 1


def _cmd_maximality(args: argparse.Namespace) -> int:
    results = maximality_experiment(trials=args.trials)
    ok = True
    for name, result in results.items():
        verdict = "maximal" if result.maximal else "NOT MAXIMAL"
        print(f"{name}: {verdict} ({result.discards} discards, "
              f"{result.unjustified} unjustified)")
        ok = ok and result.maximal
    return 0 if ok else 1


def _cmd_availability(args: argparse.Namespace) -> int:
    points = availability_experiment(trials=args.trials)
    print(f"{'loss':>6} {'CEs':>4} {'mean miss':>10} {'any-miss':>9}")
    for p in points:
        print(f"{p.front_loss:>6} {p.replication:>4} "
              f"{p.mean_miss_fraction:>10.3f} {p.any_alert_missed_fraction:>9.2f}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.churn:
        return _cmd_chaos_churn(args)
    from repro.engine import TrialEngine, resolve_processes
    from repro.faults import (
        chaos_sweep,
        render_chaos_table,
        replication_reduces_misses,
    )

    engine = None
    kwargs = dict(
        intensities=args.intensities,
        replications=args.replications,
        trials=args.trials,
        row=args.row,
        algorithm=args.algorithm,
        n_updates=args.updates,
        kernel=args.kernel,
    )
    if resolve_processes(args.processes) > 1:
        with TrialEngine(processes=args.processes) as engine:
            cells = chaos_sweep(engine=engine, **kwargs)
    else:
        cells = chaos_sweep(**kwargs)
    print(render_chaos_table(cells))
    shape_ok = replication_reduces_misses(cells)
    print(
        "replication reduces missed alerts: "
        f"{'YES' if shape_ok else 'NO'} (the Figure-1 claim)"
    )
    witnessed = sorted(
        {
            (prop, seed)
            for cell in cells
            for prop, seed in cell.witness_seeds.items()
        }
    )
    if witnessed:
        print(
            "replay a witness with: repro trace record "
            f"{args.row} --algorithm {args.algorithm} "
            f"--updates {args.updates} --chaos <intensity> --seed <seed>"
        )
    return 0 if shape_ok else 1


def _cmd_quality(args: argparse.Namespace) -> int:
    from repro.engine import TrialEngine, resolve_processes
    from repro.quality import (
        adaptive_matches_best_static,
        quality_json,
        quality_sweep,
        render_quality_table,
    )

    kwargs = dict(
        algorithms=args.algorithms,
        losses=args.losses,
        intensities=args.intensities,
        trials=args.trials,
        row=args.row,
        matrix=args.matrix,
        n_updates=args.updates,
        replication=args.replication,
        kernel=args.kernel,
    )
    if resolve_processes(args.processes) > 1:
        with TrialEngine(processes=args.processes) as engine:
            cells = quality_sweep(engine=engine, **kwargs)
    else:
        cells = quality_sweep(**kwargs)
    print(render_quality_table(cells))
    gate = adaptive_matches_best_static(cells)
    print(
        "adaptive missed-alert rate <= best static at every point: "
        f"{'YES' if gate else 'NO'}"
    )
    if args.json:
        import json as json_module

        document = quality_json(
            cells,
            row=args.row,
            matrix=args.matrix,
            trials=args.trials,
            n_updates=args.updates,
        )
        with open(args.json, "w") as handle:
            json_module.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check and not gate:
        return 1
    return 0


def _cmd_chaos_churn(args: argparse.Namespace) -> int:
    from repro.engine import TrialEngine, resolve_processes
    from repro.faults import (
        churn_sweep,
        recovery_restores_alerts,
        render_churn_table,
    )

    intensities = [i for i in args.intensities if i > 0] or [1.0]
    kwargs = dict(
        intensities=intensities,
        detection_timeouts=[None, *args.detection_timeouts],
        catchup_latencies=args.catchup_latencies,
        trials=args.trials,
        row=args.row,
        algorithm=args.algorithm,
        n_updates=args.updates,
        replication=max(args.replications),
        kernel=args.kernel,
        catchup_source=args.catchup_source,
    )
    if resolve_processes(args.processes) > 1:
        with TrialEngine(processes=args.processes) as engine:
            cells = churn_sweep(engine=engine, **kwargs)
    else:
        cells = churn_sweep(**kwargs)
    print(render_churn_table(cells))
    restored = recovery_restores_alerts(cells)
    print(
        "detection + catch-up reduces missed alerts vs crash-only: "
        f"{'YES' if restored else 'NO'}"
    )
    return 0 if restored else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_run

    scenario = _scenario_for(args.row, args.multi)
    run = run_scenario(scenario, "pass", args.seed, n_updates=args.updates)
    comparison = compare_run(run)
    print(f"scenario: {scenario.label}, seed {args.seed}")
    print(comparison.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.repro_report import generate_report

    report = generate_report(budget=args.budget, processes=args.processes)
    text = report.to_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    print(f"overall: {'PASS' if report.passed else 'FAIL'}")
    return 0 if report.passed else 1


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.engine.spec import TrialSpec
    from repro.observability import record_trial

    _scenario_for(args.row, args.multi)  # validate the row early
    matrix = "multi" if args.multi else "single"
    faults = None
    if args.chaos is not None:
        from repro.faults import DEFAULT_CHAOS_PROFILE

        faults = DEFAULT_CHAOS_PROFILE.scaled(args.chaos)
        if faults.is_clean:
            faults = None
    membership = None
    if args.membership:
        from repro.membership import MembershipConfig

        membership = MembershipConfig(
            detection_timeout=args.detection_timeout,
            catchup_latency=args.catchup_latency,
            catchup_source=args.catchup_source,
        )
    spec = TrialSpec(
        matrix, args.row, args.algorithm, args.seed, args.updates,
        args.replication, faults=faults, kernel=args.kernel,
        membership=membership, sharding=_sharding_from_args(args),
    )
    trace = record_trial(spec)
    out = args.out or (
        f"trace_{matrix}_{args.row}_{args.algorithm}_seed{args.seed}.jsonl"
    )
    path = trace.write(out)
    print(f"recorded {len(trace.events)} events to {path}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.observability import load_trace, replay_trace

    result = replay_trace(load_trace(args.path))
    print(result.describe())
    return 0 if result.identical else 1


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.observability import load_trace, summarize_trace

    summary = summarize_trace(load_trace(args.path))
    spec = summary["spec"]
    print(f"trace: {args.path} (schema {summary['schema']})")
    print(
        f"  spec: {spec.get('matrix')}/{spec.get('row')} "
        f"algorithm={spec.get('algorithm')} seed={spec.get('seed')} "
        f"n_updates={spec.get('n_updates')} "
        f"replication={spec.get('replication')}"
    )
    print(
        f"  {summary['events']} events over {summary['duration']:g} "
        f"simulated time units, {len(summary['nodes'])} nodes"
    )
    _print_stage_counters(summary["stages"])
    metrics = summary["metrics"]
    if metrics:
        print("  metrics:")
        for key, value in metrics.items():
            print(f"    {key}: {value}")
    return 0


def _feed_spec_from_args(args: argparse.Namespace):
    """Build the TrialSpec a ``repro feed record`` invocation describes."""
    from repro.engine.spec import TrialSpec

    _scenario_for(args.row, args.multi)  # validate the row early
    matrix = "multi" if args.multi else "single"
    faults = None
    if args.chaos is not None:
        from repro.faults import DEFAULT_CHAOS_PROFILE

        faults = DEFAULT_CHAOS_PROFILE.scaled(args.chaos)
        if faults.is_clean:
            faults = None
    return TrialSpec(
        matrix, args.row, args.algorithm, args.seed, args.updates,
        args.replication, faults=faults, kernel=args.kernel,
        sharding=_sharding_from_args(args),
    )


def _sharding_from_args(args: argparse.Namespace):
    """A ShardConfig from a ``--shards N`` flag (None when unsharded)."""
    shards = getattr(args, "shards", None)
    if not shards or shards <= 1:
        return None
    from repro.sharding import ShardConfig

    return ShardConfig(shards=shards)


def _cmd_feed_record(args: argparse.Namespace) -> int:
    from repro.service import record_feed

    spec = _feed_spec_from_args(args)
    feed = record_feed(spec)
    out = args.out or (
        f"feed_{spec.matrix}_{args.row}_{args.algorithm}_seed{args.seed}.jsonl"
    )
    path = feed.write(out)
    print(
        f"recorded {len(feed.deliveries)} deliveries / {feed.total_alerts} "
        f"alerts across {feed.replication} CEs to {path}"
    )
    return 0


def _cmd_feed_conform(args: argparse.Namespace) -> int:
    from repro.service import check_conformance, default_runtimes, load_feed

    feed = load_feed(args.path)
    runtimes = default_runtimes(include_service=not args.no_service)
    if args.shards:
        from repro.sharding import sharded_runtimes

        runtimes.extend(
            sharded_runtimes([n for n in args.shards if n > 1])
        )
    report = check_conformance(feed, runtimes)
    for result in report.results:
        latency = ""
        if result.latency_ms:
            latency = (
                f"  p50={result.latency_ms['p50']:.3f}ms "
                f"p99={result.latency_ms['p99']:.3f}ms"
            )
        print(
            f"  {result.runtime:<14} digest={result.digest()[:16]} "
            f"displayed={len(result.displayed)} "
            f"verdicts={result.verdicts}{latency}"
        )
    print(f"conformance: {'IDENTICAL' if report.identical else 'DIVERGED'}")
    if not report.identical:
        print(f"  {report.explain()}")
    return 0 if report.identical else 1


def _cmd_feed_send(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DirectRuntime, load_feed
    from repro.service.server import execute_feed

    feed = load_feed(args.path)
    result = asyncio.run(execute_feed(feed, args.host, args.port))
    print(
        f"service displayed {len(result.displayed)} alerts, "
        f"verdicts={result.verdicts}"
    )
    if result.latency_ms:
        print(
            f"  update→alert latency: p50={result.latency_ms['p50']:.3f}ms "
            f"p99={result.latency_ms['p99']:.3f}ms"
        )
    if args.conform:
        from repro.service.runtime import ConformanceReport

        reference = DirectRuntime().execute(feed)
        report = ConformanceReport(results=(reference, result))
        print(
            "conformance vs direct runtime: "
            f"{'IDENTICAL' if report.identical else 'DIVERGED'}"
        )
        if not report.identical:
            print(f"  {report.explain()}")
        return 0 if report.identical else 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import MonitorService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        high_water=args.high_water,
        shards=args.shards,
        virtual_nodes=args.virtual_nodes,
        ring_seed=args.ring_seed,
    )
    service = MonitorService(config)

    async def run() -> None:
        await service.start()
        sharded = f" ({args.shards} shards)" if args.shards > 1 else ""
        print(
            f"monitoring service listening on "
            f"{service.host}:{service.port}{sharded}",
            flush=True,
        )
        try:
            await service.serve_until(once=args.once)
        finally:
            counters = service.counters.as_dict()
            if counters:
                print("service counters:")
                for key, count in counters.items():
                    print(f"  {key}: {count}")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print(f"served {service.connections_handled} connection(s)")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("AD algorithms:")
    for name in algorithm_names():
        info = algorithm_info(name)
        guarantees = []
        if info.guarantees_ordered:
            guarantees.append("ordered")
        if info.guarantees_consistent:
            guarantees.append("consistent")
        scope = "multi" if info.multi_variable else "single"
        print(f"  {name:<6} [{scope:<6}] guarantees: "
              f"{', '.join(guarantees) or '(none)'}  ({info.paper_figure})")
    print("\nscenario rows (Tables 1-3):")
    for row in ROW_ORDER:
        print(f"  {row:<16} {SINGLE_VARIABLE_SCENARIOS[row].label}")
    print("\ntable experiments:")
    for table_id in EXPECTED_GRIDS:
        print(f"  {table_id}")
    return 0


def _processes_arg(value: str) -> int | str:
    """argparse type for ``--processes``: a positive int or 'auto'."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"processes must be >= 1, got {count}")
    return count


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replicated condition monitoring (PODC 2001) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper property tables")
    p_tables.add_argument("tables", nargs="*", help="table ids (default: all)")
    p_tables.add_argument("--trials", type=int, default=None)
    p_tables.add_argument("--updates", type=int, default=None)
    p_tables.add_argument(
        "--kernel",
        choices=("object", "array"),
        default="array",
        help="trial executor: struct-of-arrays fast path (default) or the "
        "event-object oracle (differentially identical, slower)",
    )
    p_tables.add_argument(
        "--processes",
        type=_processes_arg,
        default=1,
        help="fan trials out over N worker processes ('auto' = CPU count)",
    )
    p_tables.add_argument(
        "--counters",
        action="store_true",
        help="trace every trial and print aggregated per-stage counters",
    )
    p_tables.set_defaults(func=_cmd_tables)

    p_scenario = sub.add_parser("scenario", help="run one randomized trial")
    p_scenario.add_argument("row", choices=sorted({*ROW_ORDER, *DIVERSITY_ROWS}))
    p_scenario.add_argument("--algorithm", default="AD-1")
    p_scenario.add_argument("--seed", type=int, default=0)
    p_scenario.add_argument("--updates", type=int, default=30)
    p_scenario.add_argument("--multi", action="store_true")
    p_scenario.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="trial executor (array = fast path, object = oracle)",
    )
    p_scenario.add_argument("--timeline", action="store_true")
    p_scenario.add_argument(
        "--counters",
        action="store_true",
        help="run under a CountersTracer and print per-stage counters",
    )
    p_scenario.set_defaults(func=_cmd_scenario)

    p_trace = sub.add_parser(
        "trace", help="record, replay and summarize JSONL run traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trec = trace_sub.add_parser(
        "record", help="run one trial under a recorder and write its trace"
    )
    p_trec.add_argument("row", choices=list(ROW_ORDER))
    p_trec.add_argument("--algorithm", default="AD-1")
    p_trec.add_argument("--seed", type=int, default=0)
    p_trec.add_argument("--updates", type=int, default=30)
    p_trec.add_argument("--replication", type=int, default=2)
    p_trec.add_argument("--multi", action="store_true")
    p_trec.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="trial executor (both record bit-identical traces)",
    )
    p_trec.add_argument("--out", default=None, help="output .jsonl path")
    p_trec.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="INTENSITY",
        help="inject faults at this chaos intensity (default profile), so "
        "witness seeds from 'repro chaos' replay exactly",
    )
    p_trec.add_argument(
        "--membership",
        action="store_true",
        help="enable dynamic membership (heartbeat detection + crash "
        "recovery with catch-up); the trace carries the full "
        "membership surface and replays bit-identically",
    )
    p_trec.add_argument(
        "--detection-timeout", type=float, default=4.0,
        help="(--membership) failure-detector timeout",
    )
    p_trec.add_argument(
        "--catchup-latency", type=float, default=2.0,
        help="(--membership) state-transfer latency per recovery",
    )
    p_trec.add_argument(
        "--catchup-source",
        choices=("peer-then-log", "peer", "log", "none"),
        default="peer-then-log",
        help="(--membership) where a recovering CE replays history from",
    )
    p_trec.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="place the run on an N-shard consistent-hash ring; sharding "
        "is semantics-neutral, so the trace still replays bit-identically",
    )
    p_trec.set_defaults(func=_cmd_trace_record)
    p_trep = trace_sub.add_parser(
        "replay",
        help="re-execute a recorded trace; exit 0 iff bit-identical",
    )
    p_trep.add_argument("path")
    p_trep.set_defaults(func=_cmd_trace_replay)
    p_tsum = trace_sub.add_parser(
        "summarize", help="per-stage event counts and metrics of a trace"
    )
    p_tsum.add_argument("path")
    p_tsum.set_defaults(func=_cmd_trace_summarize)

    p_shrink = sub.add_parser(
        "shrink", help="find a property violation and minimize it"
    )
    p_shrink.add_argument("row", choices=list(ROW_ORDER))
    p_shrink.add_argument("--algorithm", default="AD-1")
    p_shrink.add_argument(
        "--property", choices=["ordered", "complete", "consistent"], default=None
    )
    p_shrink.add_argument("--seed", type=int, default=0)
    p_shrink.add_argument("--max-seeds", type=int, default=200)
    p_shrink.add_argument("--updates", type=int, default=25)
    p_shrink.add_argument("--multi", action="store_true")
    p_shrink.set_defaults(func=_cmd_shrink)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided search for property violations, with "
        "optional full-simulator witness minimization",
    )
    p_fuzz.add_argument(
        "--target",
        choices=sorted(_FUZZ_TARGETS),
        default="any",
        help="property to hunt ('any' retains every violation)",
    )
    p_fuzz.add_argument("--budget", type=int, default=1000,
                        help="simulator runs to spend")
    p_fuzz.add_argument("--row", choices=list(ROW_ORDER), default="aggressive")
    p_fuzz.add_argument("--algorithm", default="AD-2")
    p_fuzz.add_argument("--multi", action="store_true")
    p_fuzz.add_argument("--updates", type=int, default=20,
                        help="baseline reading count for initial inputs")
    p_fuzz.add_argument("--replication", type=int, default=2)
    p_fuzz.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="trial executor every campaign spec runs under",
    )
    p_fuzz.add_argument(
        "--fuzz-seed", type=int, default=0,
        help="seed of the fuzzer's own RNG streams (campaigns replay)",
    )
    p_fuzz.add_argument("--batch", type=int, default=32,
                        help="specs scheduled per engine batch")
    p_fuzz.add_argument(
        "--processes",
        type=_processes_arg,
        default=1,
        help="fan batches out over N worker processes ('auto' = CPU count)",
    )
    p_fuzz.add_argument(
        "--minimize",
        action="store_true",
        help="delta-debug findings to 1-minimal witnesses and verify "
        "each recorded trace replays bit-identically",
    )
    p_fuzz.add_argument(
        "--minimize-limit", type=int, default=3,
        help="findings to minimize (they are deduplicated by signature)",
    )
    p_fuzz.add_argument(
        "--out", default=None,
        help="directory for minimized witness traces (.jsonl)",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_dom = sub.add_parser("domination", help="Theorems 6/8 replay")
    p_dom.add_argument("--trials", type=int, default=200)
    p_dom.set_defaults(func=_cmd_domination)

    p_max = sub.add_parser("maximality", help="Theorems 5/7/9 probes")
    p_max.add_argument("--trials", type=int, default=200)
    p_max.set_defaults(func=_cmd_maximality)

    p_avail = sub.add_parser("availability", help="Figure-1 motivation sweep")
    p_avail.add_argument("--trials", type=int, default=40)
    p_avail.set_defaults(func=_cmd_availability)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep fault intensity x replication: property survival "
        "rates, witness seeds, and the Figure-1 availability check",
    )
    p_chaos.add_argument(
        "--intensities",
        type=float,
        nargs="+",
        default=[0.0, 0.5, 1.0, 2.0],
        help="chaos knob values scaling the default fault profile",
    )
    p_chaos.add_argument(
        "--replications",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="CE replication factors to compare at each intensity",
    )
    p_chaos.add_argument("--trials", type=int, default=30)
    p_chaos.add_argument("--row", choices=list(ROW_ORDER), default="non-historical")
    p_chaos.add_argument("--algorithm", default="AD-4")
    p_chaos.add_argument("--updates", type=int, default=30)
    p_chaos.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="trial executor (array = fast path, object = oracle)",
    )
    p_chaos.add_argument(
        "--processes",
        type=_processes_arg,
        default=1,
        help="fan trials out over N worker processes ('auto' = CPU count)",
    )
    p_chaos.add_argument(
        "--churn",
        action="store_true",
        help="membership mode: sweep intensity x detection timeout x "
        "catch-up latency under the CE-crash-only churn profile, "
        "reporting what detection + catch-up buys back vs the "
        "crash-without-recovery baseline",
    )
    p_chaos.add_argument(
        "--detection-timeouts",
        type=float,
        nargs="+",
        default=[2.0, 6.0],
        help="(--churn) failure-detector timeouts; the membership-off "
        "baseline is always swept alongside",
    )
    p_chaos.add_argument(
        "--catchup-latencies",
        type=float,
        nargs="+",
        default=[2.0],
        help="(--churn) state-transfer latencies per recovery",
    )
    p_chaos.add_argument(
        "--catchup-source",
        choices=("peer-then-log", "peer", "log", "none"),
        default="peer-then-log",
        help="(--churn) where a recovering CE replays history from",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_quality = sub.add_parser(
        "quality",
        help="sweep alert quality (precision/recall/duplicates/latency "
        "vs ground truth) over algorithm x loss x fault intensity, "
        "with the adaptive-vs-static missed-alert gate",
    )
    p_quality.add_argument(
        "--algorithms",
        nargs="+",
        default=["AD-1", "AD-2", "AD-3", "AD-4", "adaptive"],
        help="AD algorithms to compare (same seeds per grid point)",
    )
    p_quality.add_argument(
        "--losses",
        type=float,
        nargs="+",
        default=[0.0, 0.15, 0.3],
        help="front-link loss probabilities",
    )
    p_quality.add_argument(
        "--intensities",
        type=float,
        nargs="+",
        default=[0.0, 0.5, 1.0, 2.0],
        help="chaos knob values scaling the default fault profile "
        "(includes delay spikes, so this is also the delay axis)",
    )
    p_quality.add_argument("--trials", type=int, default=20)
    p_quality.add_argument(
        "--row",
        choices=sorted({*ROW_ORDER, *DIVERSITY_ROWS}),
        default="aggressive",
        help="scenario row (historical rows separate the algorithms "
        "most; diversity rows need --matrix multi for zipfian/correlated)",
    )
    p_quality.add_argument(
        "--matrix", choices=("single", "multi"), default="single"
    )
    p_quality.add_argument("--updates", type=int, default=30)
    p_quality.add_argument("--replication", type=int, default=2)
    p_quality.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="trial executor (array = fast path, object = oracle)",
    )
    p_quality.add_argument(
        "--processes",
        type=_processes_arg,
        default=1,
        help="fan trials out over N worker processes ('auto' = CPU count)",
    )
    p_quality.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the sweep as a BENCH_quality.json document",
    )
    p_quality.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the adaptive algorithm's missed-alert rate "
        "is <= the best static's at every grid point",
    )
    p_quality.set_defaults(func=_cmd_quality)

    p_feed = sub.add_parser(
        "feed", help="record, replay and conformance-check update feeds"
    )
    feed_sub = p_feed.add_subparsers(dest="feed_command", required=True)
    p_frec = feed_sub.add_parser(
        "record",
        help="run one trial and record its update feed (deliveries + "
        "arrival stamps) for service replay",
    )
    p_frec.add_argument("row", choices=list(ROW_ORDER))
    p_frec.add_argument("--algorithm", default="AD-1")
    p_frec.add_argument("--seed", type=int, default=0)
    p_frec.add_argument("--updates", type=int, default=30)
    p_frec.add_argument("--replication", type=int, default=2)
    p_frec.add_argument("--multi", action="store_true")
    p_frec.add_argument(
        "--kernel", choices=("object", "array"), default="array",
        help="recording executor (both record identical feeds)",
    )
    p_frec.add_argument(
        "--chaos", type=float, default=None, metavar="INTENSITY",
        help="inject faults at this chaos intensity (default profile)",
    )
    p_frec.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="record the feed with an N-shard ring config in its spec "
        "(semantics-neutral; the feed bytes do not change)",
    )
    p_frec.add_argument("--out", default=None, help="output .jsonl path")
    p_frec.set_defaults(func=_cmd_feed_record)
    p_fcon = feed_sub.add_parser(
        "conform",
        help="replay a feed through every runtime (kernels, direct core, "
        "asyncio service); exit 0 iff all outputs are byte-identical",
    )
    p_fcon.add_argument("path")
    p_fcon.add_argument(
        "--no-service", action="store_true",
        help="skip the asyncio service runtime (no sockets)",
    )
    p_fcon.add_argument(
        "--shards", type=int, nargs="+", default=None, metavar="N",
        help="also run the feed through sharded runtimes at these shard "
        "counts (e.g. --shards 1 2 3 8) and hold them byte-identical",
    )
    p_fcon.set_defaults(func=_cmd_feed_conform)
    p_fsend = feed_sub.add_parser(
        "send", help="stream a recorded feed to a running 'repro serve'"
    )
    p_fsend.add_argument("path")
    p_fsend.add_argument("--host", default="127.0.0.1")
    p_fsend.add_argument("--port", type=int, required=True)
    p_fsend.add_argument(
        "--conform", action="store_true",
        help="also replay locally (direct runtime) and exit 0 iff the "
        "service's output is byte-identical",
    )
    p_fsend.set_defaults(func=_cmd_feed_send)

    p_serve = sub.add_parser(
        "serve", help="run the online monitoring service (asyncio runtime)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 = ephemeral, printed at startup)",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="bound of every inter-stage pipeline queue",
    )
    p_serve.add_argument(
        "--high-water", type=int, default=None,
        help="throttle-reporting mark (default: 3/4 of capacity)",
    )
    p_serve.add_argument(
        "--once", action="store_true",
        help="exit after serving one connection (CI smoke mode)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard the pipeline over an N-shard consistent-hash ring "
        "(tenant front + per-shard ingest queues; 1 = unsharded)",
    )
    p_serve.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="(--shards) virtual nodes per shard on the ring",
    )
    p_serve.add_argument(
        "--ring-seed", type=int, default=0,
        help="(--shards) seed of the ring's hash positions",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_list = sub.add_parser("list", help="algorithms, scenarios, tables")
    p_list.set_defaults(func=_cmd_list)

    p_compare = sub.add_parser(
        "compare", help="replay one run's arrivals through several algorithms"
    )
    p_compare.add_argument("row", choices=list(ROW_ORDER))
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.add_argument("--updates", type=int, default=20)
    p_compare.add_argument("--multi", action="store_true")
    p_compare.set_defaults(func=_cmd_compare)

    p_report = sub.add_parser(
        "report", help="run the full experiment suite, emit a Markdown report"
    )
    p_report.add_argument(
        "--budget",
        type=float,
        default=1.0,
        help="trial-count multiplier (0.1 = quick smoke run)",
    )
    p_report.add_argument(
        "--output", default=None, help="write the report to this file"
    )
    p_report.add_argument(
        "--processes",
        type=_processes_arg,
        default=1,
        help="fan table trials out over N worker processes ('auto' = CPU count)",
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
