"""Sharded multi-tenant scale-out (conformance-tested).

Partitions the monitoring estate across shards with a consistent-hash
ring (:mod:`~repro.sharding.ring`), routes DM updates only to shards
whose conditions reference the variable (:mod:`~repro.sharding.router`,
reusing the degree inference of :mod:`repro.core.expressions`), runs
each shard as a full CE-replica-set + AD-merge instance on the existing
:class:`~repro.service.runtime.Runtime` interface
(:mod:`~repro.sharding.runtime`), and rebalances live via a seqno
high-water state handoff (:mod:`~repro.sharding.handoff`).  The
guarantee is the same as the service runtime's: any sharded
configuration — any shard count, any ring dicing, resized mid-feed —
must display **byte-identical** alert frames and identical property
verdicts to the single-set reference.
"""

from repro.sharding.handoff import ShardHost, ShardState
from repro.sharding.ring import (
    SHARD_FIELD_KINDS,
    HashRing,
    ShardConfig,
    moved_keys,
    shard_field_default,
)
from repro.sharding.router import ShardAssignment, assign_condition, split_feed
from repro.sharding.runtime import (
    ShardedRuntime,
    execute_rebalanced,
    sharded_runtimes,
)

__all__ = [
    "SHARD_FIELD_KINDS",
    "HashRing",
    "ShardConfig",
    "shard_field_default",
    "moved_keys",
    "ShardAssignment",
    "assign_condition",
    "split_feed",
    "ShardHost",
    "ShardState",
    "ShardedRuntime",
    "execute_rebalanced",
    "sharded_runtimes",
]
