"""Variable-aware routing: which shard sees which DM update.

The ring (:mod:`repro.sharding.ring`) owns *variables*; conditions
co-locate with their data: a condition is **placed** on the shard that
owns its primary variable (the lexicographically smallest, so placement
is deterministic and independent of AST shape), and the router forwards
a variable's updates to every shard hosting a condition that *references*
it — inferred from the condition's degree map
(:meth:`~repro.core.expressions.Expr.degrees`), the same inference the
CEs use to size their histories.  For single-variable conditions this
degenerates to the pure ring map; a multi-variable condition pulls its
non-primary variables' streams to its home shard, which is exactly why
routing is by condition-reference rather than by ring ownership alone.

:func:`split_feed` applies the routing to a recorded
:class:`~repro.service.feed.UpdateFeed`: each shard receives the
subsequence of deliveries it must see (per-CE FIFO order preserved —
the split never reorders within a CE stream), with the home shard
carrying the feed's arrival stamps because every alert of the condition
is raised there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.core.condition import Condition
from repro.service.feed import UpdateFeed
from repro.sharding.ring import HashRing, ShardConfig

__all__ = [
    "ShardAssignment",
    "assign_condition",
    "split_feed",
]


@dataclass(frozen=True)
class ShardAssignment:
    """Where one condition and its variables live on a ring."""

    config: ShardConfig
    #: The condition's home shard (ring owner of its primary variable).
    home: int
    #: The condition's primary (placement) variable.
    primary: str
    #: Ring ownership of every referenced variable — where the variable
    #: *itself* lives (its DM's registration point).
    variable_owner: dict[str, int]
    #: Routing table: variable -> shards that must receive its updates
    #: (every shard hosting a condition referencing it; one condition ⇒
    #: exactly the home shard).
    routes: dict[str, tuple[int, ...]]

    @property
    def shards(self) -> int:
        return self.config.shards

    def route(self, varname: str) -> tuple[int, ...]:
        """Destination shards of one variable's updates (() = nobody
        subscribed — the update is dropped at the router)."""
        return self.routes.get(varname, ())

    def summary(self) -> dict[str, object]:
        return {
            "shards": self.config.shards,
            "virtual_nodes": self.config.virtual_nodes,
            "ring_seed": self.config.ring_seed,
            "home": self.home,
            "primary": self.primary,
            "variable_owner": dict(sorted(self.variable_owner.items())),
        }


def assign_condition(
    condition: Condition, config: ShardConfig, ring: HashRing | None = None
) -> ShardAssignment:
    """Place ``condition`` on ``config``'s ring and derive its routes."""
    if ring is None:
        ring = HashRing(config)
    variables = sorted(condition.variables)
    primary = variables[0]
    home = ring.shard_for(primary)
    return ShardAssignment(
        config=config,
        home=home,
        primary=primary,
        variable_owner={var: ring.shard_for(var) for var in variables},
        routes={var: (home,) for var in variables},
    )


def split_feed(
    feed: UpdateFeed,
    config: ShardConfig,
    condition: Condition | None = None,
) -> tuple[ShardAssignment, dict[int, UpdateFeed], int]:
    """Split one feed into per-shard sub-feeds under ``config``'s ring.

    Returns ``(assignment, {shard: sub_feed}, dropped)``: only shards
    that receive at least one delivery (plus the home shard, which also
    carries the arrival stamps) appear in the dict; ``dropped`` counts
    deliveries for variables no hosted condition references (the CEs
    would have ignored them anyway — see
    :meth:`~repro.core.evaluator.ConditionEvaluator.ingest`).

    Within each sub-feed the per-CE delivery order is the original
    per-CE order (the split filters, never reorders), so a shard's CE
    replica set observes exactly the ``U_i`` subsequence routed to it.
    """
    if condition is None:
        condition = feed.condition()
    assignment = assign_condition(condition, config)
    per_shard: dict[int, list[tuple[int, object]]] = {}
    dropped = 0
    for ce_index, update in feed.deliveries:
        targets = assignment.route(update.varname)
        if not targets:
            dropped += 1
            continue
        for shard in targets:
            per_shard.setdefault(shard, []).append((ce_index, update))
    per_shard.setdefault(assignment.home, [])
    sub_feeds = {
        shard: dc_replace(
            feed,
            deliveries=tuple(deliveries),
            stamps=feed.stamps if shard == assignment.home else tuple(
                () for _ in feed.stamps
            ),
        )
        for shard, deliveries in sorted(per_shard.items())
    }
    return assignment, sub_feeds, dropped
