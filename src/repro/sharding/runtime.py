"""Sharded execution behind the :class:`~repro.service.runtime.Runtime`
interface.

Two engines:

* :class:`ShardedRuntime` — a static ring: split the feed into per-shard
  sub-feeds (:func:`~repro.sharding.router.split_feed`), execute each
  shard's sub-feed on an *existing* runtime (the scheduler-free direct
  core by default — any conformant engine works, each shard being a full
  CE-replica-set + AD-merge instance), and recombine the stamp-ordered
  results.  With one monitored condition exactly one shard is active;
  the conformance matrix still has teeth because the *routing* (which
  shard, which deliveries, in which per-CE order) varies with the shard
  count and must be output-invisible.
* :func:`execute_rebalanced` — a ring resize mid-feed: deliveries before
  the cut run under the old ring, the condition's state moves to its new
  home via the JSON-round-tripped handoff protocol
  (:mod:`repro.sharding.handoff`), and the remainder runs under the new
  ring.  Byte-identity with the static run is the rebalance guarantee
  the property suite enforces.

Both produce ordinary :class:`~repro.service.runtime.FeedResult`\\ s, so
:func:`~repro.service.runtime.check_conformance` can diff sharded
configurations against ``DirectRuntime`` directly.
"""

from __future__ import annotations

from typing import Callable

from repro.core.alert import Alert
from repro.service.feed import UpdateFeed
from repro.service.runtime import (
    DirectRuntime,
    FeedMismatchError,
    FeedResult,
    Runtime,
    merge_stamped,
)
from repro.sharding.handoff import ShardHost, ShardState
from repro.sharding.ring import ShardConfig
from repro.sharding.router import assign_condition, split_feed

__all__ = ["ShardedRuntime", "execute_rebalanced", "sharded_runtimes"]


class ShardedRuntime:
    """A static-ring sharded deployment as a :class:`Runtime`."""

    def __init__(
        self,
        config: ShardConfig,
        inner_factory: "Callable[[], Runtime] | None" = None,
    ) -> None:
        self.config = config
        self._inner_factory = inner_factory or DirectRuntime
        inner_name = self._inner_factory().name
        self.name = f"sharded[{config.shards}]:{inner_name}"

    def execute(self, feed: UpdateFeed) -> FeedResult:
        condition = feed.condition()
        assignment, sub_feeds, dropped = split_feed(
            feed, self.config, condition
        )
        routed = sum(len(sub.deliveries) for sub in sub_feeds.values())
        if routed + dropped != len(feed.deliveries):
            raise FeedMismatchError(
                f"{self.name}: shard split lost deliveries "
                f"({routed} routed + {dropped} dropped != "
                f"{len(feed.deliveries)} recorded)"
            )
        home_result: FeedResult | None = None
        counters: dict[str, int] = {
            f"shard/route/shard{shard}": len(sub.deliveries)
            for shard, sub in sub_feeds.items()
        }
        if dropped:
            counters["shard/drop/router"] = dropped
        for shard, sub_feed in sub_feeds.items():
            if shard != assignment.home:
                # No condition is hosted there; routing must not have
                # sent it anything (one condition ⇒ one subscriber set).
                if sub_feed.deliveries:
                    raise FeedMismatchError(
                        f"{self.name}: shard {shard} received "
                        f"{len(sub_feed.deliveries)} deliveries but hosts "
                        "no condition"
                    )
                continue
            home_result = self._inner_factory().execute(sub_feed)
        assert home_result is not None  # split always materializes home
        counters.update(home_result.counters)
        return FeedResult(
            runtime=self.name,
            displayed=home_result.displayed,
            verdicts=home_result.verdicts,
            counters=counters,
            latency_ms=home_result.latency_ms,
        )


def execute_rebalanced(
    feed: UpdateFeed,
    config: ShardConfig,
    rebalance_at: int,
    new_config: ShardConfig,
) -> FeedResult:
    """Execute ``feed`` with a ring resize after ``rebalance_at`` deliveries.

    The handoff is exercised for real: the departing host's state is
    exported, JSON-round-tripped (as it would cross a wire), and
    restored on the new home shard; the stale guard then protects the
    cutover.  When the resize does not move the condition's home, the
    run degenerates to the static path — which is the point: minimal
    movement makes most resizes free.
    """
    condition = feed.condition()
    replication = len(feed.stamps)
    assignment = assign_condition(condition, config)
    host = ShardHost(assignment.home, condition, replication)
    handoffs = 0
    dropped = 0
    for index, (ce_index, update) in enumerate(feed.deliveries):
        if index == rebalance_at:
            new_assignment = assign_condition(condition, new_config)
            if new_assignment.home != host.shard:
                state = ShardState.from_json_obj(
                    host.export_state().to_json_obj()
                )
                host = ShardHost.restore(
                    new_assignment.home, condition, state
                )
                handoffs += 1
            assignment = new_assignment
        if not assignment.route(update.varname):
            dropped += 1
            continue
        host.ingest(ce_index, update)
    arrivals = merge_stamped(host.per_ce_alerts(), feed.stamps)
    from repro.displayers.registry import make_ad
    from repro.props.report import evaluate_run

    algorithm = make_ad(feed.spec["algorithm"], condition)
    algorithm.offer_all(arrivals)
    displayed: tuple[Alert, ...] = algorithm.output
    report = evaluate_run(condition, host.received(), displayed)
    counters = {
        "shard/handoff/ring": handoffs,
        "shard/stale/guard": sum(host.stale_dropped),
    }
    if dropped:
        counters["shard/drop/router"] = dropped
    return FeedResult(
        runtime=f"sharded-rebalance[{config.shards}->{new_config.shards}]",
        displayed=displayed,
        verdicts=report.summary,
        counters=counters,
    )


def sharded_runtimes(
    shard_counts: "tuple[int, ...] | list[int]",
    inner_factory: "Callable[[], Runtime] | None" = None,
    virtual_nodes: int = 64,
    ring_seed: int = 0,
) -> "list[Runtime]":
    """One :class:`ShardedRuntime` per requested shard count."""
    return [
        ShardedRuntime(
            ShardConfig(
                shards=count,
                virtual_nodes=virtual_nodes,
                ring_seed=ring_seed,
            ),
            inner_factory,
        )
        for count in shard_counts
    ]
