"""Multi-tenant scale-out: many conditions, partitioned by the ring.

The conformance harness replays *one* recorded condition at a time; the
north-star workload is millions of users' conditions monitored at once.
This module provides that population: deterministic synthetic tenants
(one cheap condition each — non-historical threshold, aggressive delta,
or conservative consecutive-delta, cycling), partitioned over a
:class:`~repro.sharding.ring.ShardConfig` by each tenant's variable, and
executed shard by shard through the same semantic core as everything
else — :class:`~repro.core.evaluator.ConditionEvaluator` per CE replica,
stamp-ordered merge, online AD filter, canonical alert rendering.

Each tenant is a pure function of ``(tenant_index, seed)``, so a shard's
batch can be generated *inside* the worker that executes it — nothing
but index lists crosses process boundaries, which is what lets the
benchmark sweep 10⁵–10⁶ conditions.  Per-tenant output digests fold into
an order-independent XOR aggregate, so a sweep can assert that every
shard count (and any process layout) produced identical results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random

from repro.core.condition import ExpressionCondition
from repro.core.evaluator import ConditionEvaluator
from repro.core.expressions import H
from repro.core.serialization import alert_canonical_line
from repro.core.update import Update
from repro.displayers.registry import make_ad
from repro.service.runtime import merge_stamped
from repro.sharding.ring import HashRing, ShardConfig
from repro.workloads.generators import zipf_counts

__all__ = [
    "tenant_variable",
    "make_tenant_condition",
    "partition_tenants",
    "zipfian_update_counts",
    "run_tenant",
    "run_shard",
    "ShardBatchResult",
]

#: Per-tenant AD algorithms, cycled by tenant index (single-variable,
#: cheap online filters).
_ALGORITHMS = ("AD-1", "AD-2", "AD-3")


def tenant_variable(index: int) -> str:
    """The real-world variable tenant ``index`` monitors (ring key)."""
    return f"tenant{index:07d}.x"


def make_tenant_condition(index: int) -> ExpressionCondition:
    """Tenant ``index``'s condition — kind cycles with the index."""
    var = tenant_variable(index)
    kind = index % 3
    if kind == 0:
        # Non-historical threshold (the paper's c1 shape).
        return ExpressionCondition(
            f"t{index}", H[var][0].value > 3000.0, conservative=False
        )
    delta = H[var][0].value - H[var][-1].value > 150.0
    if kind == 1:
        # Historical, aggressive (c2 shape).
        return ExpressionCondition(f"t{index}", delta, conservative=False)
    # Historical, conservative (c3 shape).
    return ExpressionCondition(
        f"t{index}",
        delta & (H[var][0].seqno == H[var][-1].seqno + 1),
        conservative=True,
    )


def partition_tenants(
    count: int, config: ShardConfig
) -> list[list[int]]:
    """Tenant indices per shard, assigned by the ring over their variables."""
    ring = HashRing(config)
    shards: list[list[int]] = [[] for _ in range(config.shards)]
    for index in range(count):
        shards[ring.shard_for(tenant_variable(index))].append(index)
    return shards


def zipfian_update_counts(
    count: int,
    total_updates: int,
    seed: int,
    exponent: float = 1.2,
) -> list[int]:
    """Per-tenant update counts under Zipf popularity (head-heavy).

    Real tenant populations are skewed: a few hot tenants produce most
    of the traffic, the long tail barely updates.  The counts are a pure
    function of ``(count, total_updates, seed, exponent)`` — independent
    of any shard layout — so a population generated this way produces
    identical per-tenant outputs at every shard count, which the
    cross-shard conformance suite asserts over the XOR'd digests.
    """
    return zipf_counts(Random(f"zipf/{seed}"), total_updates, count, exponent)


def _tenant_stream(index: int, seed: int, n_updates: int) -> list[Update]:
    """Tenant ``index``'s DM broadcast: a random walk around the threshold."""
    rng = Random(f"tenant/{seed}/{index}")
    var = tenant_variable(index)
    value = 2900.0 + rng.uniform(-100.0, 100.0)
    stream = []
    for seqno in range(1, n_updates + 1):
        value += rng.uniform(-120.0, 140.0)
        stream.append(Update(var, seqno, round(value, 3)))
    return stream


@dataclass(frozen=True)
class TenantResult:
    tenant: int
    updates: int
    alerts: int
    displayed: int
    #: sha256 over the displayed canonical alert lines (the same
    #: rendering the conformance harness diffs).
    digest: str


def run_tenant(
    index: int,
    seed: int,
    n_updates: int = 12,
    replication: int = 2,
) -> TenantResult:
    """Monitor one tenant end to end (CE replicas → merge → AD filter).

    Replica disagreement is real: each non-primary CE independently
    loses ~20% of the front-link deliveries, so the AD filter has actual
    duplicate/ordering work to do.
    """
    rng = Random(f"loss/{seed}/{index}")
    condition = make_tenant_condition(index)
    stream = _tenant_stream(index, seed, n_updates)
    evaluators = [
        ConditionEvaluator(condition, source=f"CE{i + 1}")
        for i in range(replication)
    ]
    ingested = 0
    stamped: list[tuple[tuple[float, int], object]] = []
    counter = 0
    for position, update in enumerate(stream):
        for ce_index, evaluator in enumerate(evaluators):
            if ce_index > 0 and rng.random() < 0.2:
                continue  # front-link loss on this replica
            ingested += 1
            alert = evaluator.ingest(update)
            if alert is not None:
                # Back-link arrival stamp: position-major, replica-minor
                # — a deterministic total order for the AD merge.
                stamped.append(
                    ((position * 10.0 + ce_index * 0.5, counter), alert)
                )
                counter += 1
    per_ce = tuple(evaluator.alerts for evaluator in evaluators)
    stamps = tuple(
        tuple(stamp for stamp, alert in stamped if alert.source == f"CE{i + 1}")
        for i in range(replication)
    )
    arrivals = merge_stamped(per_ce, stamps)
    algorithm = make_ad(_ALGORITHMS[index % len(_ALGORITHMS)], condition)
    algorithm.offer_all(arrivals)
    displayed = algorithm.output
    digest = hashlib.sha256(
        "\n".join(alert_canonical_line(a) for a in displayed).encode()
    ).hexdigest()
    return TenantResult(
        tenant=index,
        updates=ingested,
        alerts=len(arrivals),
        displayed=len(displayed),
        digest=digest,
    )


@dataclass(frozen=True)
class ShardBatchResult:
    """One shard's whole batch, with the order-independent aggregate."""

    shard: int
    tenants: int
    updates: int
    alerts: int
    displayed: int
    #: XOR of the per-tenant digests — equal aggregates ⇔ equal
    #: per-tenant outputs, regardless of shard layout or process order.
    digest: str

    @staticmethod
    def combine_digests(digests: "list[str]") -> str:
        acc = 0
        for digest in digests:
            acc ^= int(digest, 16)
        return f"{acc:064x}"


def run_shard(
    shard: int,
    tenant_indices: "list[int]",
    seed: int,
    n_updates: int = 12,
    replication: int = 2,
    update_counts: "dict[int, int] | None" = None,
) -> ShardBatchResult:
    """Execute one shard's tenant batch (generation included — a real
    shard owns its tenants' whole lifecycle).

    ``update_counts`` optionally overrides the per-tenant update volume
    (tenant index → count) — how Zipf-skewed populations from
    :func:`zipfian_update_counts` reach the workers; tenants outside the
    mapping fall back to the uniform ``n_updates``.
    """
    updates = alerts = displayed = 0
    digests: list[str] = []
    counts = update_counts or {}
    for index in tenant_indices:
        result = run_tenant(
            index, seed, counts.get(index, n_updates), replication
        )
        updates += result.updates
        alerts += result.alerts
        displayed += result.displayed
        digests.append(result.digest)
    return ShardBatchResult(
        shard=shard,
        tenants=len(tenant_indices),
        updates=updates,
        alerts=alerts,
        displayed=displayed,
        digest=ShardBatchResult.combine_digests(digests),
    )
