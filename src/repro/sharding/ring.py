"""Consistent-hash ring — the variables→shards map of the scale-out plan.

A :class:`ShardConfig` names a ring the way
:class:`~repro.faults.plan.FaultProfile` names a fault surface: all
scalars, picklable, hashable, JSON-round-trippable, so it rides on a
:class:`~repro.engine.spec.TrialSpec` across process boundaries and
through trace/feed headers unchanged.  :data:`SHARD_FIELD_KINDS` gives
the fuzzer's mutation catalog typed access to every knob.

:class:`HashRing` materializes the config into the classic structure:
every shard contributes ``virtual_nodes`` points on a 64-bit circle
(position = BLAKE2b of ``"<ring_seed>/<shard>/<vnode>"`` — *never*
Python's randomized ``hash()``), and a key belongs to the shard owning
the first ring point at or after the key's own hash, wrapping around.
Virtual nodes bound the load imbalance; hashing shard identities (rather
than slicing the circle evenly) gives the *minimal movement* property:
resizing from N to N+1 shards only moves keys whose new successor point
belongs to the new shard — everything else stays put, which is what
makes a live rebalance (ring resize → per-variable state handoff) cheap.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, fields, replace
from hashlib import blake2b
from typing import Iterable, Mapping

__all__ = [
    "SHARD_FIELD_KINDS",
    "ShardConfig",
    "HashRing",
    "shard_field_default",
    "moved_keys",
]

#: Knob name -> mutation kind, mirroring PROFILE_FIELD_KINDS /
#: MEMBERSHIP_FIELD_KINDS: "count" (integer >= 1), "seed" (integer >= 0).
SHARD_FIELD_KINDS: dict[str, str] = {
    "shards": "count",
    "virtual_nodes": "count",
    "ring_seed": "seed",
}


@dataclass(frozen=True)
class ShardConfig:
    """One ring: how many shards, how finely diced, under which salt."""

    #: Number of shards (independent per-shard replica sets + AD merges).
    shards: int = 1
    #: Ring points per shard.  More points → tighter balance bound at
    #: O(shards × virtual_nodes log ·) ring build cost; 64 keeps the
    #: max/mean load under ~1.5 for the shard counts swept here.
    virtual_nodes: int = 64
    #: Salt folded into every ring-point hash, so rings can be re-diced
    #: (e.g. by the fuzzer) without changing any other knob.
    ring_seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.ring_seed < 0:
            raise ValueError(f"ring_seed must be >= 0, got {self.ring_seed}")

    @property
    def is_single(self) -> bool:
        """True iff the ring cannot split anything (one shard)."""
        return self.shards == 1

    def resized(self, shards: int) -> "ShardConfig":
        """The same ring dicing with a different shard count."""
        return replace(self, shards=shards)

    def with_value(self, name: str, value) -> "ShardConfig":
        """This config with one knob replaced, clamped to its kind, so
        arbitrary mutated values always construct."""
        kind = SHARD_FIELD_KINDS[name]
        if kind == "count":
            value = max(int(value), 1)
        else:  # "seed"
            value = max(int(value), 0)
        return replace(self, **{name: value})


def shard_field_default(name: str):
    """The default value of one knob (the shrinker's identity target)."""
    for f in fields(ShardConfig):
        if f.name == name:
            return f.default
    raise KeyError(name)


def _hash64(key: str) -> int:
    """A process-stable 64-bit hash (PYTHONHASHSEED-independent)."""
    return int.from_bytes(blake2b(key.encode(), digest_size=8).digest(), "big")


class HashRing:
    """The materialized ring of one :class:`ShardConfig`.

    Deterministic: two rings built from equal configs assign every key
    identically, in any process (the Hypothesis suite pins this).
    """

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        points: list[tuple[int, int]] = []
        for shard in range(config.shards):
            for vnode in range(config.virtual_nodes):
                position = _hash64(f"{config.ring_seed}/{shard}/{vnode}")
                points.append((position, shard))
        # Sorting by (position, shard) makes even the astronomically
        # unlikely position collision deterministic.
        points.sort()
        self._positions = [position for position, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: first ring point ≥ hash(key), wrapping."""
        if self.config.is_single:
            return 0
        index = bisect_left(self._positions, _hash64(key))
        if index == len(self._positions):
            index = 0
        return self._shards[index]

    def assignment(self, keys: Iterable[str]) -> dict[str, int]:
        """``{key: shard}`` for every key, in input order."""
        return {key: self.shard_for(key) for key in keys}

    def loads(self, keys: Iterable[str]) -> list[int]:
        """Keys owned per shard (index = shard id)."""
        counts = [0] * self.config.shards
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts


def moved_keys(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, tuple[int, int]]:
    """``{key: (old_shard, new_shard)}`` for keys that changed owner."""
    return {
        key: (before[key], after[key])
        for key in before
        if key in after and before[key] != after[key]
    }
