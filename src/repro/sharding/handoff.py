"""Shard state handoff — the rebalance path's catch-up protocol.

When the ring resizes mid-run, a condition whose home shard changed must
move *with its state*: each CE replica's incorporated update log and its
per-variable **seqno high-water vector**.  The mechanism mirrors
membership catch-up (:mod:`repro.membership`): the departing shard
exports an all-scalar :class:`ShardState` (JSON-round-trippable, so the
handoff could cross a real wire), the receiving shard rebuilds every CE
replica by replaying the log through a fresh
:class:`~repro.core.evaluator.ConditionEvaluator` — sound because the
CE mapping is deterministic, ``A_i = T(U_i)`` — and the high-water
vector then guards the cutover: any delivery still in flight to the old
shard that gets re-forwarded after the handoff is recognized as stale
(``seqno <= high_water[var]``) and dropped instead of double-ingested.

:class:`ShardHost` is the unit both the static and the rebalancing
sharded runtimes execute on: one shard's CE replica set for one
condition, with the export/restore pair and the stale guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.serialization import update_from_json, update_to_json
from repro.core.update import Update

__all__ = ["ShardState", "ShardHost"]


@dataclass(frozen=True)
class ShardState:
    """The transferable state of one shard's CE replica set.

    All plain values — the JSON round trip (:meth:`to_json_obj` /
    :meth:`from_json_obj`) is pinned by the unit suite so a handoff
    serializes byte-stably.
    """

    shard: int
    #: Per CE: the update log it incorporated, in ingest order.
    logs: tuple[tuple[Update, ...], ...]
    #: Per CE: ``{var: highest seqno ingested}`` — the stale guard.
    high_water: tuple[dict[str, int], ...]
    #: Per CE: alerts already raised (and stamped) before the handoff.
    emitted: tuple[int, ...]

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "logs": [
                [update_to_json(u) for u in log] for log in self.logs
            ],
            "high_water": [
                dict(sorted(hw.items())) for hw in self.high_water
            ],
            "emitted": list(self.emitted),
        }

    @classmethod
    def from_json_obj(cls, obj: dict[str, Any]) -> "ShardState":
        return cls(
            shard=int(obj["shard"]),
            logs=tuple(
                tuple(update_from_json(u) for u in log)
                for log in obj["logs"]
            ),
            high_water=tuple(
                {str(k): int(v) for k, v in hw.items()}
                for hw in obj["high_water"]
            ),
            emitted=tuple(int(n) for n in obj["emitted"]),
        )


class ShardHost:
    """One shard's replica set for one condition.

    Ingests routed deliveries per CE replica, tracks the per-variable
    seqno high-water, and can export/restore its whole state for a
    rebalance handoff.
    """

    def __init__(
        self, shard: int, condition: Condition, replication: int
    ) -> None:
        self.shard = shard
        self.condition = condition
        self.evaluators = [
            ConditionEvaluator(condition, source=f"CE{i + 1}")
            for i in range(replication)
        ]
        self._high_water: list[dict[str, int]] = [
            {} for _ in range(replication)
        ]
        #: Deliveries refused by the stale guard (per CE).
        self.stale_dropped = [0] * replication

    @property
    def replication(self) -> int:
        return len(self.evaluators)

    def ingest(self, ce_index: int, update: Update) -> Alert | None:
        """Route one delivery into CE ``ce_index``; None if no alert.

        Applies the stale guard first: after a handoff, a duplicate
        forwarded to the new host must not re-trigger evaluation.
        """
        high_water = self._high_water[ce_index]
        last = high_water.get(update.varname)
        if last is not None and update.seqno <= last:
            self.stale_dropped[ce_index] += 1
            return None
        alert = self.evaluators[ce_index].ingest(update)
        # The evaluator ignores unreferenced variables entirely; only
        # advance the guard for updates it actually incorporated.
        if update.varname in self.condition.variables:
            high_water[update.varname] = update.seqno
        return alert

    def per_ce_alerts(self) -> tuple[tuple[Alert, ...], ...]:
        return tuple(evaluator.alerts for evaluator in self.evaluators)

    def received(self) -> tuple[tuple[Update, ...], ...]:
        return tuple(evaluator.received for evaluator in self.evaluators)

    # -- handoff -------------------------------------------------------------
    def export_state(self) -> ShardState:
        """Freeze this host's state for transfer to another shard."""
        return ShardState(
            shard=self.shard,
            logs=self.received(),
            high_water=tuple(dict(hw) for hw in self._high_water),
            emitted=tuple(
                len(evaluator.alerts) for evaluator in self.evaluators
            ),
        )

    @classmethod
    def restore(
        cls, shard: int, condition: Condition, state: ShardState
    ) -> "ShardHost":
        """Rebuild a host on ``shard`` from a transferred state.

        Replays each CE's log through a fresh evaluator — ``A_i =
        T(U_i)`` makes this reproduce the exact alert history — then
        verifies the replay regenerated the alerts the old host had
        already stamped (a mismatch means the state was tampered with or
        the evaluator drifted, the rebalance analogue of
        :class:`~repro.service.runtime.FeedMismatchError`).
        """
        host = cls(shard, condition, replication=len(state.logs))
        for ce_index, log in enumerate(state.logs):
            host.evaluators[ce_index].ingest_all(log)
            regenerated = len(host.evaluators[ce_index].alerts)
            if regenerated != state.emitted[ce_index]:
                raise ValueError(
                    f"handoff replay of CE{ce_index + 1} regenerated "
                    f"{regenerated} alerts but {state.emitted[ce_index]} "
                    "were already emitted — the transferred log does not "
                    "reproduce the pre-handoff run"
                )
            host._high_water[ce_index] = dict(state.high_water[ce_index])
        return host
