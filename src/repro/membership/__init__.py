"""Dynamic membership: failure detection, crash-recovery, catch-up.

The fault layer (:mod:`repro.faults`) breaks things; this package makes
the system notice and heal.  Crashes become a full lifecycle —

    heartbeat → suspect (unreliable timeout detector) → rejoin at
    ``next_up_time`` → catch-up (replay missed history from a live peer
    or the DM broadcast log) → state-complete again

— planned analytically from the crash schedules
(:func:`~repro.membership.registry.plan_membership`), executed
identically by both trial kernels, and recorded as ``membership``-stage
trace events so every churn-laden run still replays bit-identically.
:mod:`repro.membership.verdicts` then distinguishes property violations
that happened while the replica set was below quorum from steady-state
ones — the distinction the churn chaos sweeps report.
"""

from repro.membership.config import (
    CATCHUP_SOURCES,
    MEMBERSHIP_FIELD_KINDS,
    MembershipConfig,
    membership_field_default,
)
from repro.membership.detector import NodeView, node_view
from repro.membership.registry import (
    MembershipPlan,
    RecoveryEvent,
    emit_membership_surface,
    membership_horizon,
    plan_membership,
)
from repro.membership.verdicts import churn_summary, classify_verdicts

__all__ = [
    "CATCHUP_SOURCES",
    "MEMBERSHIP_FIELD_KINDS",
    "MembershipConfig",
    "MembershipPlan",
    "NodeView",
    "RecoveryEvent",
    "churn_summary",
    "classify_verdicts",
    "emit_membership_surface",
    "membership_field_default",
    "membership_horizon",
    "node_view",
    "plan_membership",
]
