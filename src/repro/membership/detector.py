"""Heartbeat emission and the unreliable failure detector.

Every node (each CE replica and the AD) emits a heartbeat each
``heartbeat_interval`` while it is up; heartbeats arrive after a fixed
``heartbeat_delay``.  The detector is the classic timeout family: a node
is *suspected* once no heartbeat has arrived for
``suspicion_threshold * detection_timeout`` time units, and *restored*
by the next arrival.  Nothing here draws randomness — heartbeat times
are a pure function of the crash schedule and the config — so the whole
membership view is computable up front and the simulation stays
record→replay bit-identical by construction.

The detector is deliberately *unreliable* in both directions, exactly as
the Chandra–Toueg framing requires:

* **false suspicions** when the suspicion window is shorter than the
  heartbeat interval (every inter-heartbeat gap looks like a silence);
* **missed detections** when a crash window is shorter than the
  suspicion window (the node is back before anyone got impatient).

Both show up in :class:`NodeView` and drive the detection-latency /
missed-alert trade-off the membership benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.membership.config import MembershipConfig
from repro.simulation.failures import CrashSchedule

__all__ = ["NodeView", "node_view"]


@dataclass(frozen=True)
class NodeView:
    """What the failure detector believes about one node over a run."""

    name: str
    #: Heartbeat emission times (k * interval while the node was up).
    heartbeats: tuple[float, ...]
    #: Heartbeat arrival times (emission + delay), the detector's input.
    arrivals: tuple[float, ...]
    #: Believed-down intervals ``[suspected, restored)`` — includes
    #: false suspicions when the detector is too impatient.
    suspects: tuple[tuple[float, float], ...]
    #: ``(crash_start, suspect_time)`` per *detected* real crash window.
    detections: tuple[tuple[float, float], ...]
    #: Real crash windows the detector never noticed (the node was back
    #: before the suspicion window elapsed).
    missed_detections: int

    def believed_down(self, time: float) -> bool:
        for suspected, restored in self.suspects:
            if suspected <= time < restored:
                return True
            if suspected > time:
                break
        return False

    @property
    def detection_latencies(self) -> tuple[float, ...]:
        return tuple(st - s for s, st in self.detections)


def _gap_suspects(
    arrivals: list[float], window: float, horizon: float
) -> tuple[tuple[float, float], ...]:
    """Believed-down intervals from inter-arrival gaps.

    The node registers at time 0 (an implicit arrival); the horizon acts
    as the end-of-observation sentinel, so a node that falls silent near
    the end stays suspected through the horizon.
    """
    out: list[tuple[float, float]] = []
    prev = 0.0
    for arrival in [*arrivals, horizon]:
        limit = arrival if arrival < horizon else horizon
        if limit - prev > window:
            out.append((prev + window, limit))
        if arrival > prev:
            prev = arrival
    return tuple(out)


def node_view(
    name: str,
    schedule: CrashSchedule,
    config: MembershipConfig,
    horizon: float,
) -> NodeView:
    """The detector's complete view of one node over ``[0, horizon]``."""
    interval = config.heartbeat_interval
    delay = config.heartbeat_delay
    window = config.suspicion_window

    heartbeats: list[float] = []
    k = 0
    t = 0.0
    while t <= horizon:
        if schedule.is_up(t):
            heartbeats.append(t)
        k += 1
        t = k * interval
    arrivals = [t + delay for t in heartbeats]

    detections: list[tuple[float, float]] = []
    missed = 0
    for start, end in schedule.windows:
        if start > horizon:
            continue
        # Last arrival the detector saw before the crash could possibly
        # silence the stream (emissions at t < start arrive < start+delay).
        last_arrival = 0.0
        for arrival in arrivals:
            if arrival < start + delay:
                last_arrival = arrival
            else:
                break
        suspect_time = last_arrival + window
        first_back = next((a for a in arrivals if a >= end), None)
        restored = first_back if first_back is not None else horizon
        if suspect_time < restored:
            detections.append((start, suspect_time))
        else:
            missed += 1

    return NodeView(
        name=name,
        heartbeats=tuple(heartbeats),
        arrivals=tuple(arrivals),
        suspects=_gap_suspects(arrivals, window, horizon),
        detections=tuple(detections),
        missed_detections=missed,
    )
