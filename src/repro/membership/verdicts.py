"""Churn-aware verdict context: was the run below quorum when it failed?

A violated property means something different while half the replica
set is state-incomplete than in steady state — the paper's guarantees
are stated for the full replica set, so the chaos sweep must separate
"violated while below quorum" (the guarantee was degraded, by design)
from "violated steady-state" (a real loss under churn).  This module
folds a run's :class:`~repro.membership.registry.MembershipPlan` into a
small JSON-safe churn summary that rides on
:class:`~repro.props.report.PropertyReport` across process boundaries,
plus the per-property classification the sweeps and tallies consume.
"""

from __future__ import annotations

__all__ = ["churn_summary", "classify_verdicts"]


def _mean(values) -> float | None:
    values = list(values)
    return sum(values) / len(values) if values else None


def churn_summary(run) -> dict:
    """JSON-safe membership digest of one completed run.

    ``run`` is a :class:`~repro.components.system.RunResult` whose
    ``membership`` field carries the executed plan.
    """
    plan = run.membership
    recoveries = plan.recoveries
    return {
        "below_quorum": plan.degraded_time > 0.0,
        "degraded_fraction": plan.degraded_fraction,
        "recoveries": len(recoveries),
        "recovered": sum(1 for e in recoveries if e.successful),
        "aborted": sum(1 for e in recoveries if e.aborted),
        "unrecovered": sum(
            1 for e in recoveries if not e.successful and not e.aborted
        ),
        "caught_up": sum(run.caught_up),
        "missed_detections": plan.missed_detections,
        "mean_detection_latency": _mean(plan.detection_latencies),
        "mean_time_to_recover": _mean(plan.recovery_latencies),
    }


def classify_verdicts(
    summary: dict, churn: dict | None
) -> dict[str, str]:
    """Per-property churn classification of one run's verdicts.

    ``"ok"`` / ``"undecided"`` pass through; a violation becomes
    ``"violated-degraded"`` when the run spent any time below quorum
    (run-level granularity: the checkers decide over whole sequences,
    so violations are not attributable to individual instants) and
    ``"violated-steady"`` otherwise.
    """
    degraded = bool(churn and churn.get("below_quorum"))
    out: dict[str, str] = {}
    for prop, verdict in summary.items():
        if verdict is None:
            out[prop] = "undecided"
        elif verdict:
            out[prop] = "ok"
        else:
            out[prop] = "violated-degraded" if degraded else "violated-steady"
    return out
