"""The membership registry: recovery planning and the run's plan.

:func:`plan_membership` turns (crash schedules, membership config) into
a frozen :class:`MembershipPlan`: per-node detector views, one
:class:`RecoveryEvent` per crash window (rejoin instant, chosen catch-up
source, completion instant or the reason there is none), and the
below-quorum intervals where fewer than ``⌊n/2⌋+1`` replicas hold a
complete history.  Everything is computed analytically before the run —
the lifecycle consumes no randomness — so the object and array kernels
execute the *same* plan and stay bit-identical.

Catch-up source selection honours the unreliable detector: a recovering
CE only tries peers it *believes* alive (skipping suspects for free),
and each believed-alive peer that turns out to be unusable — actually
down, or itself still state-incomplete — costs one ``retry_backoff``
before the next candidate.  The per-variable seqno high-water vector
each CE maintains at runtime (its vector clock over the DM streams) then
decides exactly which updates the transfer must replay; see
:class:`~repro.components.ce_node.CENode`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.membership.config import MembershipConfig
from repro.membership.detector import NodeView, node_view
from repro.simulation.failures import CrashSchedule

__all__ = [
    "HORIZON_SLACK",
    "REJOIN_EPSILON",
    "MembershipPlan",
    "RecoveryEvent",
    "emit_membership_surface",
    "membership_horizon",
    "plan_membership",
]

#: Rejoin instant = window end + this, matching CrashSchedule.next_up_time.
REJOIN_EPSILON = 1e-6

#: Detector-observation slack past the last reading, numerically equal to
#: scenarios.FAULT_HORIZON_SLACK (kept local: workloads imports components
#: which imports this package, so importing scenarios here would cycle).
HORIZON_SLACK = 80.0


def membership_horizon(workload: Mapping) -> float:
    """The time span the detector observes: last reading + slack."""
    last = 0.0
    for entries in workload.values():
        for time, _value in entries:
            if time > last:
                last = time
    return last + HORIZON_SLACK


@dataclass(frozen=True)
class RecoveryEvent:
    """One crash window's planned rejoin + catch-up."""

    ce_index: int
    window_start: float
    window_end: float
    #: When the node is back up and starts recovering.
    rejoin_time: float
    #: "peer:CEk", "log", or "none" (restart without catch-up).
    source: str
    #: Believed-alive peers that failed before the chosen source.
    attempts: int
    #: When catch-up finishes and the node is state-complete again;
    #: ``None`` when there is no catch-up (source "none") or the node
    #: re-crashed mid-transfer (``aborted``).
    complete_time: float | None
    #: True when the next crash window started before catch-up finished.
    aborted: bool = False

    @property
    def successful(self) -> bool:
        return self.complete_time is not None


@dataclass(frozen=True)
class MembershipPlan:
    """The complete, pre-computed membership lifecycle of one run."""

    config: MembershipConfig
    horizon: float
    replication: int
    #: Minimum state-complete CEs for full-strength guarantees.
    quorum: int
    #: Detector views: CE1..CEn in index order, then the AD.
    views: tuple[NodeView, ...]
    #: Recovery events in global (rejoin_time, ce_index) order.
    recoveries: tuple[RecoveryEvent, ...]
    #: Intervals where fewer than ``quorum`` CEs were state-complete.
    degraded: tuple[tuple[float, float], ...]

    def events_for(self, ce_index: int) -> tuple[RecoveryEvent, ...]:
        return tuple(e for e in self.recoveries if e.ce_index == ce_index)

    @property
    def detection_latencies(self) -> tuple[float, ...]:
        return tuple(
            latency for view in self.views for latency in view.detection_latencies
        )

    @property
    def missed_detections(self) -> int:
        return sum(view.missed_detections for view in self.views)

    @property
    def recovery_latencies(self) -> tuple[float, ...]:
        """Mean-time-to-recover samples: crash start → state-complete."""
        return tuple(
            e.complete_time - e.window_start
            for e in self.recoveries
            if e.complete_time is not None
        )

    @property
    def degraded_time(self) -> float:
        return sum(end - start for start, end in self.degraded)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_time / self.horizon if self.horizon > 0 else 0.0


def plan_membership(
    crash_schedules: Mapping[int, CrashSchedule],
    ad_crash_schedule: CrashSchedule | None,
    replication: int,
    config: MembershipConfig,
    horizon: float,
) -> MembershipPlan:
    """Plan the run's whole membership lifecycle up front.

    Events are planned in global rejoin order (ties broken by CE index)
    so that peer selection for a later recovery can consult the already
    planned state of earlier ones — the circular "can my peer serve me
    while it is itself recovering" question has a unique well-founded
    answer under that order.
    """
    schedules = [
        crash_schedules.get(i) or CrashSchedule.never()
        for i in range(replication)
    ]
    views = tuple(
        [
            node_view(f"CE{i + 1}", schedules[i], config, horizon)
            for i in range(replication)
        ]
        + [node_view("AD", ad_crash_schedule or CrashSchedule.never(), config, horizon)]
    )

    pending: list[tuple[float, int, float, float]] = []
    for i in range(replication):
        for start, end in schedules[i].windows:
            pending.append((end + REJOIN_EPSILON, i, start, end))
    pending.sort()

    planned: dict[tuple[int, float], RecoveryEvent] = {}

    def incomplete_at(j: int, time: float) -> bool:
        """CE j has an unhealed history gap at ``time`` (its crash either
        has no planned recovery yet, or one completing later)."""
        for start, _end in schedules[j].windows:
            if start > time:
                break
            event = planned.get((j, start))
            if (
                event is None
                or event.complete_time is None
                or event.complete_time > time
            ):
                return True
        return False

    events: list[RecoveryEvent] = []
    for rejoin, i, start, end in pending:
        attempts = 0
        chosen: int | None = None
        if config.catchup_source in ("peer", "peer-then-log"):
            for j in range(replication):
                if j == i:
                    continue
                if views[j].believed_down(rejoin):
                    continue  # detector says down: skipped for free
                if incomplete_at(j, rejoin):
                    attempts += 1  # believed alive, transfer times out
                    continue
                chosen = j
                break
        if chosen is not None:
            source = f"peer:CE{chosen + 1}"
        elif config.catchup_source in ("log", "peer-then-log"):
            source = "log"
        else:
            source = "none"

        if source == "none":
            event = RecoveryEvent(i, start, end, rejoin, source, attempts, None)
        else:
            complete = (
                rejoin + attempts * config.retry_backoff + config.catchup_latency
            )
            next_start = next(
                (s for s, _e in schedules[i].windows if s > end), None
            )
            if next_start is not None and next_start <= complete:
                event = RecoveryEvent(
                    i, start, end, rejoin, source, attempts, None, aborted=True
                )
            else:
                event = RecoveryEvent(
                    i, start, end, rejoin, source, attempts, complete
                )
        planned[(i, start)] = event
        events.append(event)

    quorum = replication // 2 + 1
    degraded = _degraded_intervals(schedules, planned, replication, quorum, horizon)
    return MembershipPlan(
        config=config,
        horizon=horizon,
        replication=replication,
        quorum=quorum,
        views=views,
        recoveries=tuple(events),
        degraded=degraded,
    )


def _degraded_intervals(
    schedules: list[CrashSchedule],
    planned: Mapping[tuple[int, float], RecoveryEvent],
    replication: int,
    quorum: int,
    horizon: float,
) -> tuple[tuple[float, float], ...]:
    """Below-quorum intervals over [0, horizon].

    A CE is state-incomplete from a crash's start until the first
    *successful* catch-up after it (catch-up replays everything missed,
    so one completion heals all earlier gaps too), or forever within the
    horizon if none succeeds.
    """
    incomplete: list[list[tuple[float, float]]] = []
    for i in range(replication):
        spans: list[tuple[float, float]] = []
        windows = schedules[i].windows
        for start, _end in windows:
            if start >= horizon:
                continue
            heal = None
            for later_start, _later_end in windows:
                if later_start < start:
                    continue
                event = planned.get((i, later_start))
                if event is not None and event.complete_time is not None:
                    heal = event.complete_time
                    break
            spans.append((start, min(heal if heal is not None else horizon, horizon)))
        merged: list[tuple[float, float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        incomplete.append(merged)

    points = {0.0, horizon}
    for spans in incomplete:
        for start, end in spans:
            points.add(min(start, horizon))
            points.add(min(end, horizon))
    ordered = sorted(points)
    out: list[tuple[float, float]] = []
    for left, right in zip(ordered, ordered[1:]):
        if right <= left:
            continue
        mid = (left + right) / 2
        complete_count = sum(
            1
            for spans in incomplete
            if not any(s <= mid < e for s, e in spans)
        )
        if complete_count < quorum:
            if out and out[-1][1] == left:
                out[-1] = (out[-1][0], right)
            else:
                out.append((left, right))
    return tuple(out)


def emit_membership_surface(emit, plan: MembershipPlan) -> None:
    """Record the planned lifecycle as time-0 ``membership``-stage events.

    Both kernels call this same function right after their fault-surface
    preamble, so the membership surface is bit-identical by construction;
    only the *runtime* rejoin/catch-up events exercise each kernel's own
    execution path.
    """
    cfg = plan.config
    emit(
        0.0, "membership", "config", "",
        heartbeat_interval=cfg.heartbeat_interval,
        heartbeat_delay=cfg.heartbeat_delay,
        detection_timeout=cfg.detection_timeout,
        suspicion_threshold=cfg.suspicion_threshold,
        catchup_latency=cfg.catchup_latency,
        retry_backoff=cfg.retry_backoff,
        catchup_source=cfg.catchup_source,
        quorum=plan.quorum,
        horizon=plan.horizon,
    )
    for view in plan.views:
        for at in view.heartbeats:
            emit(0.0, "membership", "heartbeat", view.name, at=at)
        for suspected, restored in view.suspects:
            emit(0.0, "membership", "suspect", view.name,
                 at=suspected, restore=restored)
        for crashed, detected in view.detections:
            emit(0.0, "membership", "detection", view.name,
                 crashed=crashed, detected=detected)
    for event in plan.recoveries:
        emit(
            0.0, "membership", "recovery-plan", f"CE{event.ce_index + 1}",
            window_start=event.window_start,
            window_end=event.window_end,
            rejoin=event.rejoin_time,
            source=event.source,
            attempts=event.attempts,
            complete=event.complete_time,
            aborted=event.aborted,
        )
    for start, end in plan.degraded:
        emit(0.0, "membership", "below-quorum", "", start=start, end=end)
