"""Membership knobs — the picklable carrier of the churn lifecycle.

A :class:`MembershipConfig` parameterizes the whole detect → suspect →
recover → catch-up pipeline: how often nodes heartbeat, how impatient
the (deliberately unreliable) failure detector is, and how a recovering
CE re-acquires the history it missed.  Like
:class:`~repro.faults.plan.FaultProfile` it is all scalars, so it rides
on :class:`~repro.engine.spec.TrialSpec` across process boundaries and
trace headers unchanged, and :data:`MEMBERSHIP_FIELD_KINDS` gives the
fuzzer's mutation catalog typed access to every knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

__all__ = [
    "CATCHUP_SOURCES",
    "MEMBERSHIP_FIELD_KINDS",
    "MembershipConfig",
    "membership_field_default",
]

#: Where a recovering CE replays its missed history H from, in order of
#: preference.  "peer-then-log" tries live peers first (a state-transfer
#: over the back-plane) and falls back to the append-only DM broadcast
#: log; "none" models restart *without* catch-up — the node rejoins with
#: a hole in its history (the pre-membership behaviour, made explicit).
CATCHUP_SOURCES = ("peer-then-log", "peer", "log", "none")

#: Knob name -> mutation kind, mirroring PROFILE_FIELD_KINDS:
#: "interval" (strictly positive time), "mean" (non-negative time),
#: "count" (integer >= 1), "choice" (one of CATCHUP_SOURCES).
MEMBERSHIP_FIELD_KINDS: dict[str, str] = {
    "heartbeat_interval": "interval",
    "heartbeat_delay": "mean",
    "detection_timeout": "mean",
    "suspicion_threshold": "count",
    "catchup_latency": "mean",
    "retry_backoff": "mean",
    "catchup_source": "choice",
}


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detector and crash-recovery parameters for one run.

    Defaults are tuned to the simulator's scale (readings every 10 time
    units, crash repairs with means of tens of units): heartbeats every
    5 units, suspicion after 2 missed timeouts, catch-up in 2 units.
    """

    #: Period of heartbeat emission from every CE and the AD.
    heartbeat_interval: float = 5.0
    #: Fixed heartbeat propagation delay (registration at time 0).
    heartbeat_delay: float = 0.5
    #: Base timeout of the unreliable failure detector.
    detection_timeout: float = 4.0
    #: How many consecutive timeouts a silence must span before the node
    #: is suspected (the timeout × suspicion-counter detector family):
    #: a node is believed down once no heartbeat has arrived for
    #: ``suspicion_threshold * detection_timeout`` time units.
    suspicion_threshold: int = 2
    #: Time to transfer and replay the missed history once a source is
    #: reached (state-transfer cost).
    catchup_latency: float = 2.0
    #: Cost of each catch-up attempt against a peer the detector
    #: believed alive but that cannot actually serve (itself down or
    #: still state-incomplete): a timed-out transfer before trying the
    #: next source.
    retry_backoff: float = 1.0
    #: History source policy; see :data:`CATCHUP_SOURCES`.
    catchup_source: str = "peer-then-log"

    def __post_init__(self) -> None:
        for name in (
            "heartbeat_interval",
            "heartbeat_delay",
            "detection_timeout",
            "catchup_latency",
            "retry_backoff",
        ):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        for name in (
            "heartbeat_delay", "detection_timeout",
            "catchup_latency", "retry_backoff",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.suspicion_threshold < 1:
            raise ValueError(
                f"suspicion_threshold must be >= 1, got {self.suspicion_threshold}"
            )
        if self.catchup_source not in CATCHUP_SOURCES:
            raise ValueError(
                f"catchup_source must be one of {CATCHUP_SOURCES}, "
                f"got {self.catchup_source!r}"
            )

    @property
    def suspicion_window(self) -> float:
        """Silence length after which a node is believed down."""
        return self.suspicion_threshold * self.detection_timeout

    def with_value(self, name: str, value) -> "MembershipConfig":
        """This config with one knob replaced, clamped to its kind, so
        arbitrary mutated/halved values always construct."""
        kind = MEMBERSHIP_FIELD_KINDS[name]
        if kind == "interval":
            value = max(float(value), 1e-3)
        elif kind == "count":
            value = max(int(value), 1)
        elif kind == "choice":
            value = str(value)
        else:
            value = max(float(value), 0.0)
        return replace(self, **{name: value})


def membership_field_default(name: str):
    """The default value of one knob (the shrinker's identity target)."""
    for f in fields(MembershipConfig):
        if f.name == name:
            return f.default
    raise KeyError(name)
