"""Alert Displayer node (Section 2).

Collects the interleaved alert arrival stream from all CEs — the input to
the merge/filter function M of Appendix B — and runs one of the AD
filtering algorithms over it.  The node records both the raw arrival
order (for domination replays and debugging) and the displayed output A.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.displayers.base import ADAlgorithm
from repro.simulation.kernel import Kernel
from repro.simulation.node import Node

__all__ = ["ADNode"]


class ADNode(Node):
    """The user's alert display, with a pluggable filtering algorithm."""

    def __init__(self, kernel: Kernel, name: str, algorithm: ADAlgorithm) -> None:
        super().__init__(kernel, name)
        self.algorithm = algorithm
        self._arrivals: list[Alert] = []
        self._arrival_times: list[float] = []

    @property
    def arrivals(self) -> tuple[Alert, ...]:
        """Every alert that reached the AD, in arrival (interleaved) order."""
        return tuple(self._arrivals)

    @property
    def arrival_times(self) -> tuple[float, ...]:
        """Simulated arrival time of each alert, aligned with ``arrivals``."""
        return tuple(self._arrival_times)

    @property
    def displayed(self) -> tuple[Alert, ...]:
        """The final alert sequence A shown to the user."""
        return self.algorithm.output

    @property
    def filtered(self) -> tuple[Alert, ...]:
        """Alerts the algorithm discarded."""
        return self.algorithm.discarded

    def receive(self, message) -> None:
        if not isinstance(message, Alert):
            raise TypeError(f"{self.name} expected an Alert, got {type(message)!r}")
        self._arrivals.append(message)
        self._arrival_times.append(self.kernel.now)
        tracer = self.kernel.tracer
        if tracer is None:
            self.algorithm.offer(message)
            return
        tracer.emit(
            self.kernel.now, "ad", "arrive", self.name, alert=str(message)
        )
        # The rejection reason must be computed *before* offer() for
        # accepted alerts (offer mutates filter state), but algorithms only
        # explain rejections — and a rejected offer leaves state untouched —
        # so asking after a False offer() is exact.
        if self.algorithm.offer(message):
            tracer.emit(
                self.kernel.now, "ad", "display", self.name, alert=str(message)
            )
        else:
            tracer.emit(
                self.kernel.now, "ad", "filter", self.name,
                alert=str(message),
                reason=self.algorithm.rejection_reason(message),
            )
