"""Data Monitor — the sensor node (Section 2).

A DM tracks one real-world variable and broadcasts a data update —
``u(varname, seqno, value)`` with consecutive seqnos starting at 1 and a
full snapshot value — to every subscribed CE, each over its own front
link.  A sensor monitoring two targets is modelled as two DMs (the paper's
convention), so this class is strictly one-variable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.update import Update
from repro.simulation.kernel import Kernel
from repro.simulation.network import Link
from repro.simulation.node import Node

__all__ = ["DataMonitor"]


class DataMonitor(Node):
    """Broadcasts a scheduled sequence of readings for one variable.

    Parameters
    ----------
    kernel, name:
        Simulation binding.
    varname:
        The monitored variable's identifier.
    readings:
        ``(time, value)`` pairs, in non-decreasing time order — the
        variable's trajectory.  Each reading becomes one update with the
        next consecutive seqno.
    crash_schedule:
        Optional downtime windows for the sensor itself.  A reading whose
        broadcast instant falls inside a window is never taken: no update
        is built, no seqno consumed — the sent sequence U stays gap-free,
        it is simply shorter (ground truth shrinks with the sensor).
    """

    def __init__(
        self,
        kernel: Kernel,
        varname: str,
        readings: Sequence[tuple[float, float]],
        name: str | None = None,
        crash_schedule=None,
    ) -> None:
        super().__init__(kernel, name or f"DM-{varname}")
        times = [t for t, _ in readings]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("readings must be in non-decreasing time order")
        self.varname = varname
        self.crash_schedule = crash_schedule
        self.suppressed = 0
        self._readings = list(readings)
        self._links: list[Link] = []
        self._next_seqno = 1
        self._sent: list[Update] = []
        self._sent_log: list[tuple[float, Update]] = []

    @property
    def sent(self) -> tuple[Update, ...]:
        """The update sequence U this DM has broadcast so far."""
        return tuple(self._sent)

    @property
    def sent_log(self) -> tuple[tuple[float, Update], ...]:
        """(broadcast time, update) pairs, for ground-truth interleaving."""
        return tuple(self._sent_log)

    def attach(self, link: Link) -> None:
        """Subscribe a CE by adding its front link to the broadcast set."""
        self._links.append(link)

    def attach_all(self, links: Iterable[Link]) -> None:
        for link in links:
            self.attach(link)

    def start(self) -> None:
        """Schedule every reading's broadcast on the kernel."""
        for time, value in self._readings:
            self.kernel.schedule_at(
                time,
                lambda v=value: self._broadcast(v),
                note=f"{self.name} reading",
            )

    def _broadcast(self, value: float) -> None:
        if self.crash_schedule is not None and not self.crash_schedule.is_up(
            self.kernel.now
        ):
            self.suppressed += 1
            if self.kernel.tracer is not None:
                self.kernel.tracer.emit(
                    self.kernel.now, "dm", "suppressed", self.name,
                    value=value, reason="crashed",
                )
            return
        update = Update(self.varname, self._next_seqno, value)
        self._next_seqno += 1
        self._sent.append(update)
        self._sent_log.append((self.kernel.now, update))
        for link in self._links:
            link.send(update)

    def receive(self, message) -> None:  # pragma: no cover - DMs only send
        raise RuntimeError("Data Monitors do not receive messages")
