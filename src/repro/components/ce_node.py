"""Condition Evaluator node — the replicated server (Sections 1–3).

Wraps the pure :class:`~repro.core.evaluator.ConditionEvaluator` in a
simulation node: updates arrive over front links, alerts leave over the
back link to the AD.  A crash schedule can take the node down for
intervals of simulated time; updates delivered while down are *missed
permanently* (front links are datagrams — no retransmission), which is
precisely the failure replication is meant to mask.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import Link
from repro.simulation.node import Node

__all__ = ["CENode"]


class CENode(Node):
    """A Condition Evaluator bound to the simulation."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        condition: Condition,
        crash_schedule: CrashSchedule | None = None,
    ) -> None:
        super().__init__(kernel, name)
        self.evaluator = ConditionEvaluator(condition, source=name)
        self.crash_schedule = crash_schedule or CrashSchedule.never()
        self.back_link: Link | None = None
        self.missed_while_down = 0

    # -- wiring --------------------------------------------------------------
    def connect_ad(self, link: Link) -> None:
        """Attach the back link carrying alerts to the AD."""
        self.back_link = link

    # -- inspection ------------------------------------------------------------
    @property
    def received(self) -> tuple[Update, ...]:
        """``U_i``: the updates this CE incorporated, in arrival order."""
        return self.evaluator.received

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """``A_i = T(U_i)``: alerts this CE generated, in order."""
        return self.evaluator.alerts

    @property
    def is_up(self) -> bool:
        return self.crash_schedule.is_up(self.kernel.now)

    # -- message handling --------------------------------------------------------
    def receive(self, message) -> None:
        if not isinstance(message, Update):
            raise TypeError(f"{self.name} expected an Update, got {type(message)!r}")
        tracer = self.kernel.tracer
        if not self.is_up:
            self.missed_while_down += 1
            if tracer is not None:
                tracer.emit(
                    self.kernel.now, "ce", "missed", self.name,
                    msg=str(message), reason="crashed",
                )
            return
        if tracer is not None:
            tracer.emit(
                self.kernel.now, "ce", "update-received", self.name,
                msg=str(message),
            )
        alert = self.evaluator.ingest(message)
        if alert is not None:
            if tracer is not None:
                tracer.emit(
                    self.kernel.now, "ce", "alert-raised", self.name,
                    alert=str(alert),
                )
            if self.back_link is not None:
                self.back_link.send(alert)
