"""Condition Evaluator node — the replicated server (Sections 1–3).

Wraps the pure :class:`~repro.core.evaluator.ConditionEvaluator` in a
simulation node: updates arrive over front links, alerts leave over the
back link to the AD.  A crash schedule can take the node down for
intervals of simulated time; updates delivered while down are *missed
permanently* (front links are datagrams — no retransmission), which is
precisely the failure replication is meant to mask.

With dynamic membership enabled (see :mod:`repro.membership`) a crash is
no longer the end of the story.  The CE keeps a per-variable seqno
high-water vector — its vector clock over the DM broadcast streams —
and walks a small state machine:

* **up**: updates must advance the clock (``seqno > high_water[var]``);
  an in-flight datagram that arrives late, after catch-up already
  replayed its contents, is dropped as stale instead of corrupting the
  history buffers with an out-of-order entry.
* **recovering** (between ``rejoin`` and ``catchup-complete``): live
  arrivals are buffered, not evaluated — the node's history still has a
  hole, so evaluating against it would raise alerts from a gapped H.
* **catch-up**: the snapshot from the source (live peer or DM log) is
  replayed through the normal evaluation path, clock-filtered so only
  genuinely missed updates are ingested; buffered live arrivals follow,
  same filter.  Alerts raised during replay leave over the ordinary
  back link — late, but ordered.

A recovery that aborts (the node re-crashes mid-transfer) leaves the
node in ``recovering``; its buffer is flushed to ``missed_while_down``
at the next rejoin or at end of run.
"""

from __future__ import annotations

from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import Update
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import Link
from repro.simulation.node import Node

__all__ = ["CENode"]


class CENode(Node):
    """A Condition Evaluator bound to the simulation."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        condition: Condition,
        crash_schedule: CrashSchedule | None = None,
    ) -> None:
        super().__init__(kernel, name)
        self.evaluator = ConditionEvaluator(condition, source=name)
        self.crash_schedule = crash_schedule or CrashSchedule.never()
        self.back_link: Link | None = None
        self.missed_while_down = 0
        # -- membership runtime state (inert until enable_membership) --
        self.membership_enabled = False
        self.recovering = False
        self.recovery_buffer: list[Update] = []
        #: Per-variable seqno high-water marks: the CE's vector clock
        #: over the DM streams, deciding which updates catch-up owes it.
        self.high_water: dict[str, int] = {}
        self.caught_up = 0

    # -- wiring --------------------------------------------------------------
    def connect_ad(self, link: Link) -> None:
        """Attach the back link carrying alerts to the AD."""
        self.back_link = link

    def enable_membership(self) -> None:
        """Turn on the recovery state machine (clock tracking included)."""
        self.membership_enabled = True

    # -- inspection ------------------------------------------------------------
    @property
    def received(self) -> tuple[Update, ...]:
        """``U_i``: the updates this CE incorporated, in arrival order."""
        return self.evaluator.received

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """``A_i = T(U_i)``: alerts this CE generated, in order."""
        return self.evaluator.alerts

    @property
    def is_up(self) -> bool:
        return self.crash_schedule.is_up(self.kernel.now)

    # -- message handling --------------------------------------------------------
    def receive(self, message) -> None:
        if not isinstance(message, Update):
            raise TypeError(f"{self.name} expected an Update, got {type(message)!r}")
        tracer = self.kernel.tracer
        if not self.is_up:
            self.missed_while_down += 1
            if tracer is not None:
                tracer.emit(
                    self.kernel.now, "ce", "missed", self.name,
                    msg=str(message), reason="crashed",
                )
            return
        if self.membership_enabled:
            if self.recovering:
                self.recovery_buffer.append(message)
                if tracer is not None:
                    tracer.emit(
                        self.kernel.now, "membership", "buffered", self.name,
                        msg=str(message), reason="recovering",
                    )
                return
            if message.seqno <= self.high_water.get(message.varname, 0):
                if tracer is not None:
                    tracer.emit(
                        self.kernel.now, "membership", "stale-drop", self.name,
                        msg=str(message),
                    )
                return
            self.high_water[message.varname] = message.seqno
        if tracer is not None:
            tracer.emit(
                self.kernel.now, "ce", "update-received", self.name,
                msg=str(message),
            )
        self._evaluate(message)

    def _evaluate(self, update: Update) -> None:
        """Ingest one update and ship any resulting alert to the AD."""
        alert = self.evaluator.ingest(update)
        if alert is not None:
            if self.kernel.tracer is not None:
                self.kernel.tracer.emit(
                    self.kernel.now, "ce", "alert-raised", self.name,
                    alert=str(alert),
                )
            if self.back_link is not None:
                self.back_link.send(alert)

    # -- membership lifecycle -----------------------------------------------
    def rejoin(self, event) -> None:
        """The node is back up; start recovering (or just restart).

        Any updates still buffered from an *aborted* previous recovery
        died with the crash — they count as missed.  ``event`` is the
        planned :class:`~repro.membership.registry.RecoveryEvent`; with
        source ``"none"`` the node restarts without catch-up and resumes
        evaluating over its gapped history immediately.
        """
        tracer = self.kernel.tracer
        if self.recovery_buffer:
            self.missed_while_down += len(self.recovery_buffer)
            self.recovery_buffer.clear()
        self.recovering = event.source != "none"
        if tracer is not None:
            tracer.emit(
                self.kernel.now, "membership", "rejoin", self.name,
                source=event.source, attempts=event.attempts,
                aborted=event.aborted,
            )

    def complete_recovery(self, event, knowledge) -> None:
        """Replay the source's knowledge, clock-filtered, then the buffer.

        ``knowledge`` is the snapshot taken at this instant: the peer's
        received stream in arrival order, or the merged DM log in
        (time, varname) order.  Only updates past the high-water vector
        are ingested, so nothing already incorporated is double-fed.
        """
        tracer = self.kernel.tracer
        now = self.kernel.now
        self.recovering = False
        high_water = self.high_water
        recovered = replayed = stale = 0
        for update in knowledge:
            if update.seqno <= high_water.get(update.varname, 0):
                continue
            high_water[update.varname] = update.seqno
            if tracer is not None:
                tracer.emit(
                    now, "membership", "catchup-ingest", self.name,
                    msg=str(update), source=event.source,
                )
            recovered += 1
            self._evaluate(update)
        for update in self.recovery_buffer:
            if update.seqno <= high_water.get(update.varname, 0):
                stale += 1
                continue
            high_water[update.varname] = update.seqno
            if tracer is not None:
                tracer.emit(
                    now, "membership", "replay-buffered", self.name,
                    msg=str(update),
                )
            replayed += 1
            self._evaluate(update)
        self.recovery_buffer.clear()
        self.caught_up += recovered
        if tracer is not None:
            tracer.emit(
                now, "membership", "catchup-complete", self.name,
                source=event.source, recovered=recovered,
                replayed=replayed, stale=stale,
                clock={var: high_water[var] for var in sorted(high_water)},
            )

    def flush_recovery_buffer(self) -> None:
        """End-of-run cleanup: a still-recovering node never evaluated
        its buffered arrivals, so they count as missed."""
        if self.recovery_buffer:
            self.missed_while_down += len(self.recovery_buffer)
            self.recovery_buffer.clear()
        self.recovering = False
