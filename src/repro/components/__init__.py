"""System components: Data Monitors, CE nodes, AD nodes, and the system
builder (Figures 1-3)."""

from repro.components.ad_node import ADNode
from repro.components.ce_node import CENode
from repro.components.data_monitor import DataMonitor
from repro.components.system import MonitoringSystem, RunResult, SystemConfig, run_system

__all__ = [
    "ADNode",
    "CENode",
    "DataMonitor",
    "MonitoringSystem",
    "RunResult",
    "SystemConfig",
    "run_system",
]
