"""Monitoring system builder and runner (Figures 1–3).

:class:`MonitoringSystem` wires DMs, CEs and an AD together on a fresh
kernel according to a :class:`SystemConfig`, runs the workload to
completion, and returns a :class:`RunResult` carrying everything the
analysis needs: U (sent), U_i (received per CE), A_i (generated per CE),
the interleaved arrival stream at the AD, and the displayed A.

``replication = 1`` with the ``"pass"`` algorithm is the corresponding
non-replicated system N; ``replication >= 2`` with any AD algorithm is a
replicated system R.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.components.ad_node import ADNode
from repro.components.ce_node import CENode
from repro.components.data_monitor import DataMonitor
from repro.core.alert import Alert
from repro.core.condition import Condition
from repro.core.update import Update
from repro.displayers.base import ADAlgorithm
from repro.displayers.registry import make_ad
from repro.membership.config import MembershipConfig
from repro.membership.registry import (
    MembershipPlan,
    emit_membership_surface,
    membership_horizon,
    plan_membership,
)
from repro.props.report import PropertyReport, evaluate_run
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import (
    DelayModel,
    LossyFifoLink,
    ReliableLink,
    StoreAndForwardLink,
    UniformDelay,
)
from repro.simulation.rng import RandomStreams

__all__ = ["SystemConfig", "RunResult", "MonitoringSystem", "run_system"]

#: A workload: per-variable (time, value) reading schedules.
Workload = Mapping[str, Sequence[tuple[float, float]]]


@dataclass(frozen=True)
class SystemConfig:
    """Topology and link parameters of one monitoring system."""

    #: Number of Condition Evaluators (1 = non-replicated).
    replication: int = 2
    #: AD algorithm name from the registry ("pass", "AD-1", ... "AD-6").
    ad_algorithm: str = "AD-1"
    #: Per-message loss probability on every front link.
    front_loss: float = 0.0
    #: Front-link propagation delay model.
    front_delay: DelayModel = field(default_factory=lambda: UniformDelay(0.05, 1.5))
    #: Back-link propagation delay model (randomises A1/A2 interleaving).
    #: The spread intentionally exceeds the default 10-unit reading interval
    #: so alerts from different CEs can overtake each other at the AD.
    back_delay: DelayModel = field(default_factory=lambda: UniformDelay(0.05, 30.0))
    #: Optional per-CE crash schedules, keyed by CE index (0-based).
    crash_schedules: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: Optional AD (PDA) downtime.  When set, back links store and forward:
    #: alerts arriving while the display device is off are held and
    #: delivered, still in order, at its next up-time — the paper's "the
    #: CE logs the alert, and sends it later" (§1).
    ad_crash_schedule: CrashSchedule | None = None
    #: Optional per-CE front-link loss override (CE index → probability),
    #: for heterogeneous networks; CEs absent from the map use front_loss.
    front_loss_per_ce: Mapping[int, float] = field(default_factory=dict)
    #: Optional per-CE front-link outage windows (§1: front links "can
    #: also be out of service") — datagrams sent while a CE's front links
    #: are down are lost.
    front_outages: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: Optional per-variable DM (sensor) downtime: readings scheduled
    #: while the sensor is down are never taken (see
    #: :class:`~repro.components.data_monitor.DataMonitor`).
    dm_crash_schedules: Mapping[str, CrashSchedule] = field(default_factory=dict)
    #: Optional per-CE back-link outage windows.  Back links are TCP-like,
    #: so an outage stalls alert delivery until the link recovers.
    back_outages: Mapping[int, CrashSchedule] = field(default_factory=dict)
    #: Optional correlated-loss model for front links (a stateful
    #: GilbertElliottLoss; see :mod:`repro.faults.model`).  When set it
    #: replaces the Bernoulli front_loss coin on every front link.
    front_loss_model: object | None = None
    #: Optional bounded duplication adversary on front links.
    front_duplication: object | None = None
    #: Optional congestion (delay-spike) schedules for front/back links.
    front_delay_spikes: object | None = None
    back_delay_spikes: object | None = None
    #: Optional dynamic-membership config (see :mod:`repro.membership`).
    #: When set, CE crashes stop being permanent silences: the run plans
    #: a detect → suspect → rejoin → catch-up lifecycle from the crash
    #: schedules and executes it deterministically on both kernels.
    membership: MembershipConfig | None = None

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not 0.0 <= self.front_loss <= 1.0:
            raise ValueError(f"front_loss must be in [0,1], got {self.front_loss}")
        for index, loss in self.front_loss_per_ce.items():
            if not 0.0 <= loss <= 1.0:
                raise ValueError(
                    f"front_loss_per_ce[{index}] must be in [0,1], got {loss}"
                )


@dataclass(frozen=True)
class RunResult:
    """Everything observable about one completed run."""

    condition: Condition
    config: SystemConfig
    seed: int
    #: U per variable: the updates each DM broadcast.
    sent: dict[str, tuple[Update, ...]]
    #: All broadcasts merged in kernel order: (time, update) pairs.
    sent_log: tuple[tuple[float, Update], ...]
    #: U_i per CE: updates actually incorporated, in arrival order.
    received: tuple[tuple[Update, ...], ...]
    #: A_i per CE: alerts generated.
    ce_alerts: tuple[tuple[Alert, ...], ...]
    #: The interleaved arrival stream at the AD (input to M).
    ad_arrivals: tuple[Alert, ...]
    #: Simulated arrival time of each alert, aligned with ``ad_arrivals``.
    ad_arrival_times: tuple[float, ...]
    #: The displayed sequence A.
    displayed: tuple[Alert, ...]
    #: Alerts the AD filtered out.
    filtered: tuple[Alert, ...]
    #: Updates missed because a CE was crashed at delivery time.
    missed_while_down: tuple[int, ...]
    #: Readings never taken because the DM was down, per variable in
    #: sorted-variable order (empty when no DM crash schedules are set).
    dm_suppressed: tuple[int, ...] = ()
    #: Updates each CE re-acquired via membership catch-up, per CE
    #: (empty when membership is off).
    caught_up: tuple[int, ...] = ()
    #: The executed membership plan (None when membership is off).
    membership: MembershipPlan | None = None
    #: Where this run's condition and variables live on the shard ring
    #: (a :class:`~repro.sharding.router.ShardAssignment`; None when the
    #: run is unsharded).  Sharding is semantics-neutral by construction
    #: — it never perturbs the event schedule — so the assignment is
    #: derived analytically and attached after the run.
    sharding: object | None = None

    def evaluate_properties(self, interleaving_limit: int | None = None) -> PropertyReport:
        """Decide orderedness/completeness/consistency for this run."""
        kwargs = {}
        if interleaving_limit is not None:
            kwargs["interleaving_limit"] = interleaving_limit
        return evaluate_run(self.condition, self.received, self.displayed, **kwargs)

    @property
    def all_generated(self) -> tuple[Alert, ...]:
        """Union of the CEs' alert streams (unordered concatenation)."""
        return tuple(a for stream in self.ce_alerts for a in stream)

    def arrival_stamps(self) -> tuple[tuple[tuple[float, int], ...], ...]:
        """Per-CE ``(arrival_time, global_index)`` stamps of the AD stream.

        Back links are FIFO, so the k-th stamp of CE *i* belongs to the
        k-th alert that CE sent; the global index makes ``(time, index)``
        a total order that reproduces the kernel's AD arrival
        interleaving exactly.  This is the scheduler-owned half of a
        run's semantics — the service runtime (:mod:`repro.service`)
        replays it without a scheduler by merging stamped alert streams.
        """
        stamps: list[list[tuple[float, int]]] = [
            [] for _ in range(self.config.replication)
        ]
        for index, (alert, time) in enumerate(
            zip(self.ad_arrivals, self.ad_arrival_times)
        ):
            if not alert.source.startswith("CE"):
                raise ValueError(
                    f"arrival {index} has unattributed source {alert.source!r}"
                )
            stamps[int(alert.source[2:]) - 1].append((time, index))
        return tuple(tuple(per_ce) for per_ce in stamps)


class MonitoringSystem:
    """Builds and runs one monitoring system instance."""

    def __init__(
        self,
        condition: Condition,
        workload: Workload,
        config: SystemConfig,
        seed: int = 0,
        algorithm: ADAlgorithm | None = None,
        tracer: object | None = None,
    ) -> None:
        missing = set(condition.variables) - set(workload)
        if missing:
            raise ValueError(
                f"workload lacks readings for condition variables: {sorted(missing)}"
            )
        self.condition = condition
        self.config = config
        self.seed = seed
        # The tracer rides on the kernel so every component (links, CEs,
        # the AD) reaches it through its existing kernel reference.
        self.kernel = Kernel(tracer=tracer)
        streams = RandomStreams(seed)

        ad_algorithm = algorithm if algorithm is not None else make_ad(
            config.ad_algorithm, condition
        )
        self.ad = ADNode(self.kernel, "AD", ad_algorithm)

        self.ces: list[CENode] = []
        for index in range(config.replication):
            ce = CENode(
                self.kernel,
                f"CE{index + 1}",
                condition,
                config.crash_schedules.get(index),
            )
            if config.ad_crash_schedule is not None:
                back: ReliableLink | StoreAndForwardLink = StoreAndForwardLink(
                    self.kernel,
                    self.ad.receive,
                    config.back_delay,
                    streams.stream(f"back/{ce.name}"),
                    availability=config.ad_crash_schedule,
                    name=f"{ce.name}->AD",
                    outage_schedule=config.back_outages.get(index),
                    spikes=config.back_delay_spikes,
                )
            else:
                back = ReliableLink(
                    self.kernel,
                    self.ad.receive,
                    config.back_delay,
                    streams.stream(f"back/{ce.name}"),
                    name=f"{ce.name}->AD",
                    outage_schedule=config.back_outages.get(index),
                    spikes=config.back_delay_spikes,
                )
            ce.connect_ad(back)
            self.ces.append(ce)

        self.dms: list[DataMonitor] = []
        for varname in sorted(workload):
            dm = DataMonitor(
                self.kernel,
                varname,
                list(workload[varname]),
                crash_schedule=config.dm_crash_schedules.get(varname),
            )
            for index, ce in enumerate(self.ces):
                front = LossyFifoLink(
                    self.kernel,
                    ce.receive,
                    config.front_delay,
                    streams.stream(f"front/{varname}/{ce.name}"),
                    loss_prob=config.front_loss_per_ce.get(
                        index, config.front_loss
                    ),
                    outage_schedule=config.front_outages.get(index),
                    name=f"DM-{varname}->{ce.name}",
                    loss_model=config.front_loss_model,
                    duplication=config.front_duplication,
                    spikes=config.front_delay_spikes,
                )
                dm.attach(front)
            self.dms.append(dm)

        self.membership_plan: MembershipPlan | None = None
        if config.membership is not None:
            self.membership_plan = plan_membership(
                config.crash_schedules,
                config.ad_crash_schedule,
                config.replication,
                config.membership,
                membership_horizon(workload),
            )
            for ce in self.ces:
                ce.enable_membership()

        if tracer is not None:
            self._emit_fault_surface()
            if self.membership_plan is not None:
                emit_membership_surface(
                    self.kernel.tracer.emit, self.membership_plan
                )

    def _emit_fault_surface(self) -> None:
        """Record the run's planned fault surface as structured events.

        Emitted once, before any simulated event, in a deterministic
        order — so a trace of a fault-injected run carries the complete
        fault model (every window and adversary parameter), not just the
        runtime consequences, and replays bit-identically.
        """
        emit = self.kernel.tracer.emit
        config = self.config
        for index in sorted(config.crash_schedules):
            for start, end in config.crash_schedules[index].windows:
                emit(0.0, "fault", "ce-crash-window", f"CE{index + 1}",
                     start=start, end=end)
        for varname in sorted(config.dm_crash_schedules):
            for start, end in config.dm_crash_schedules[varname].windows:
                emit(0.0, "fault", "dm-crash-window", f"DM-{varname}",
                     start=start, end=end)
        if config.ad_crash_schedule is not None:
            for start, end in config.ad_crash_schedule.windows:
                emit(0.0, "fault", "ad-crash-window", "AD", start=start, end=end)
        for index in sorted(config.front_outages):
            for start, end in config.front_outages[index].windows:
                emit(0.0, "fault", "front-outage-window", f"CE{index + 1}",
                     start=start, end=end)
        for index in sorted(config.back_outages):
            for start, end in config.back_outages[index].windows:
                emit(0.0, "fault", "back-outage-window", f"CE{index + 1}->AD",
                     start=start, end=end)
        if config.front_loss_model is not None:
            params = config.front_loss_model.params
            emit(0.0, "fault", "burst-loss", "front",
                 good_to_bad=params.good_to_bad, bad_to_good=params.bad_to_good,
                 loss_good=params.loss_good, loss_bad=params.loss_bad)
        if config.front_duplication is not None:
            emit(0.0, "fault", "duplication", "front",
                 prob=config.front_duplication.duplicate_prob,
                 max_copies=config.front_duplication.max_copies)
        for side, spikes in (
            ("front", config.front_delay_spikes),
            ("back", config.back_delay_spikes),
        ):
            if spikes is not None:
                for start, end in spikes.windows:
                    emit(0.0, "fault", "delay-spike-window", side,
                         start=start, end=end, factor=spikes.factor)

    def _schedule_membership_events(self) -> None:
        """Schedule every planned rejoin/catch-up *before* any reading.

        Membership events therefore take the globally lowest schedule
        seqs, so at equal simulated time a rejoin or catch-up fires
        before any reading or delivery — the invariant the catch-up
        knowledge snapshot relies on, and what the array kernel's traced
        path replicates seq for seq.  With membership off nothing is
        scheduled and every existing trace stays bit-identical.
        """
        for event in self.membership_plan.recoveries:
            ce = self.ces[event.ce_index]
            self.kernel.schedule_at(
                event.rejoin_time,
                lambda ce=ce, event=event: ce.rejoin(event),
                note=f"{ce.name} rejoin",
            )
            if event.complete_time is not None:
                self.kernel.schedule_at(
                    event.complete_time,
                    lambda ce=ce, event=event: self._complete_recovery(ce, event),
                    note=f"{ce.name} catch-up",
                )

    def _complete_recovery(self, ce: CENode, event) -> None:
        """Snapshot the catch-up source's knowledge at fire time and
        replay it into the recovering CE."""
        now = self.kernel.now
        if event.source == "log":
            entries = sorted(
                (
                    entry
                    for dm in self.dms
                    for entry in dm.sent_log
                    if entry[0] < now
                ),
                key=lambda pair: (pair[0], pair[1].varname),
            )
            knowledge = [update for _time, update in entries]
        else:
            peer_index = int(event.source.rsplit(":CE", 1)[1]) - 1
            knowledge = list(self.ces[peer_index].received)
        ce.complete_recovery(event, knowledge)

    def run(self) -> RunResult:
        """Execute the workload to quiescence and collect the results."""
        if self.membership_plan is not None:
            self._schedule_membership_events()
        for dm in self.dms:
            dm.start()
        self.kernel.run()
        if self.membership_plan is not None:
            for ce in self.ces:
                ce.flush_recovery_buffer()
        return RunResult(
            condition=self.condition,
            config=self.config,
            seed=self.seed,
            sent={dm.varname: dm.sent for dm in self.dms},
            sent_log=tuple(
                sorted(
                    (entry for dm in self.dms for entry in dm.sent_log),
                    key=lambda pair: (pair[0], pair[1].varname),
                )
            ),
            received=tuple(ce.received for ce in self.ces),
            ce_alerts=tuple(ce.alerts for ce in self.ces),
            ad_arrivals=self.ad.arrivals,
            ad_arrival_times=self.ad.arrival_times,
            displayed=self.ad.displayed,
            filtered=self.ad.filtered,
            missed_while_down=tuple(ce.missed_while_down for ce in self.ces),
            dm_suppressed=tuple(dm.suppressed for dm in self.dms),
            caught_up=(
                tuple(ce.caught_up for ce in self.ces)
                if self.membership_plan is not None
                else ()
            ),
            membership=self.membership_plan,
        )


def run_system(
    condition: Condition,
    workload: Workload,
    config: SystemConfig,
    seed: int = 0,
    algorithm: ADAlgorithm | None = None,
    tracer: object | None = None,
    kernel: str = "object",
) -> RunResult:
    """Build and run a system in one call.

    ``tracer`` (see :mod:`repro.observability`) observes the run's kernel,
    link, CE and AD events; ``None`` — the default — disables tracing.

    ``kernel`` selects the trial executor: ``"object"`` (this module's
    event-object simulator, the authoritative semantics) or ``"array"``
    (:mod:`repro.simulation.arraykernel`, the struct-of-arrays fast path
    that must produce identical results and bit-identical traces).
    """
    if kernel == "array":
        from repro.simulation.arraykernel import run_system_array

        return run_system_array(
            condition, workload, config, seed=seed,
            algorithm=algorithm, tracer=tracer,
        )
    if kernel != "object":
        raise ValueError(f"unknown kernel {kernel!r}; expected 'object' or 'array'")
    return MonitoringSystem(
        condition, workload, config, seed, algorithm, tracer=tracer
    ).run()
