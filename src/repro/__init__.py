"""repro — Replicated Condition Monitoring.

A from-scratch reproduction of *"Replicated condition monitoring"*
(Yongqiang Huang and Hector Garcia-Molina, PODC 2001): the condition
monitoring model (Data Monitors, Condition Evaluators, Alert Displayers),
the six AD filtering algorithms AD-1 … AD-6, exact checkers for the
paper's three correctness properties (orderedness, completeness,
consistency), and a deterministic discrete-event simulator that
regenerates every table and theorem-level claim in the paper.

Quickstart::

    from repro import H, ExpressionCondition, SystemConfig, run_system

    overheat = ExpressionCondition("overheat", H.reactor[0].value > 3000)
    workload = {"reactor": [(t * 10.0, 2900 + 30 * t) for t in range(20)]}
    config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.2)
    result = run_system(overheat, workload, config, seed=7)
    print([a.shorthand() for a in result.displayed])
    print(result.evaluate_properties().summary)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.components import (
    ADNode,
    CENode,
    DataMonitor,
    MonitoringSystem,
    RunResult,
    SystemConfig,
    run_system,
)
from repro.core import (
    Alert,
    Condition,
    ConditionEvaluator,
    ExpressionCondition,
    H,
    HistorySet,
    HistorySnapshot,
    PredicateCondition,
    Update,
    always_true,
    apply_T,
    c1,
    c2,
    c3,
    cm,
    make_alert,
    merge_single_variable,
    ordered_union,
    parse_trace,
    parse_update,
    sharp_price_drop,
)
from repro.displayers import (
    AD1,
    AD2,
    AD3,
    AD4,
    AD5,
    AD6,
    ADAlgorithm,
    PassThrough,
    make_ad,
    run_ad,
)
from repro.multicondition import DisjunctionCondition, PerConditionAD
from repro.props import (
    PropertyReport,
    PropertyTally,
    check_completeness,
    check_consistency_multi,
    check_consistency_single,
    check_orderedness,
    evaluate_run,
    is_alert_sequence_ordered,
)
from repro.simulation import (
    CrashSchedule,
    FixedDelay,
    Kernel,
    LossyFifoLink,
    RandomStreams,
    ReliableLink,
    UniformDelay,
)

__version__ = "1.0.0"

__all__ = [
    "AD1",
    "AD2",
    "AD3",
    "AD4",
    "AD5",
    "AD6",
    "ADAlgorithm",
    "ADNode",
    "Alert",
    "CENode",
    "Condition",
    "ConditionEvaluator",
    "CrashSchedule",
    "DataMonitor",
    "DisjunctionCondition",
    "ExpressionCondition",
    "FixedDelay",
    "H",
    "HistorySet",
    "HistorySnapshot",
    "Kernel",
    "LossyFifoLink",
    "MonitoringSystem",
    "PassThrough",
    "PerConditionAD",
    "PredicateCondition",
    "PropertyReport",
    "PropertyTally",
    "RandomStreams",
    "ReliableLink",
    "RunResult",
    "SystemConfig",
    "UniformDelay",
    "Update",
    "always_true",
    "apply_T",
    "c1",
    "c2",
    "c3",
    "check_completeness",
    "check_consistency_multi",
    "check_consistency_single",
    "check_orderedness",
    "cm",
    "evaluate_run",
    "is_alert_sequence_ordered",
    "make_ad",
    "make_alert",
    "merge_single_variable",
    "ordered_union",
    "parse_trace",
    "parse_update",
    "run_ad",
    "run_system",
    "sharp_price_drop",
    "__version__",
]
