"""The introduction's missile-warning scenario, end to end.

"if an alert is to be sent whenever a missile is fired, having two CEs
will likely result in two alerts being sent to the user for every missile
fired.  Without a mechanism to identify duplicates, the user will get
confused about the exact number of missiles fired."
"""

import random

from repro.components.system import SystemConfig, run_system
from repro.core.condition import ExpressionCondition
from repro.core.expressions import H
from repro.displayers.registry import PassThrough
from repro.workloads.generators import event_impulses


def missile_condition():
    return ExpressionCondition("missile_fired", H.sat[0].value == 1)


def missile_workload(seed: int, n: int = 40):
    return {"sat": event_impulses(random.Random(seed), n, event_prob=0.2)}


class TestMissileScenario:
    def test_without_dedup_user_sees_double(self):
        workload = missile_workload(3)
        fired = sum(1 for _, v in workload["sat"] if v == 1.0)
        config = SystemConfig(replication=2, front_loss=0.0, ad_algorithm="pass")
        run = run_system(missile_condition(), workload, config, seed=3)
        # Two CEs, lossless: every missile produces exactly two alerts.
        assert len(run.displayed) == 2 * fired

    def test_ad1_restores_the_true_count(self):
        workload = missile_workload(3)
        fired = sum(1 for _, v in workload["sat"] if v == 1.0)
        config = SystemConfig(replication=2, front_loss=0.0, ad_algorithm="AD-1")
        run = run_system(missile_condition(), workload, config, seed=3)
        assert len(run.displayed) == fired

    def test_replication_catches_missiles_single_ce_misses(self):
        # At heavy loss, one CE alone misses events; two CEs together
        # deliver strictly more of them over many seeds.
        total_single = 0
        total_double = 0
        for seed in range(20):
            workload = missile_workload(100 + seed)
            for replication, bucket in ((1, "single"), (2, "double")):
                config = SystemConfig(
                    replication=replication, front_loss=0.4,
                    ad_algorithm="AD-1",
                )
                run = run_system(
                    missile_condition(), workload, config, seed=seed
                )
                count = len({a.seqno("sat") for a in run.displayed})
                if bucket == "single":
                    total_single += count
                else:
                    total_double += count
        assert total_double > total_single

    def test_event_count_never_inflated_under_ad1(self):
        # AD-1 may still miss events (loss) but never duplicates one:
        # the displayed count is a lower bound on the truth, never above.
        for seed in range(15):
            workload = missile_workload(200 + seed)
            fired = sum(1 for _, v in workload["sat"] if v == 1.0)
            config = SystemConfig(
                replication=3, front_loss=0.3, ad_algorithm="AD-1"
            )
            run = run_system(missile_condition(), workload, config, seed=seed)
            assert len(run.displayed) <= fired
