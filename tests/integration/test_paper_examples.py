"""Integration tests: every worked example in the paper, asserted exactly.

Each test transcribes the paper's stated inputs and checks the stated
outcome — these are the ground-truth anchors of the reproduction.
"""

from repro.core.alert import alert_identity_set
from repro.core.reference import apply_T, combine_received, merge_single_variable
from repro.displayers import AD1, AD2, AD3, AD5
from repro.props.completeness import (
    check_completeness_multi,
    check_completeness_single,
)
from repro.props.consistency import (
    check_consistency_multi,
    check_consistency_single,
)
from repro.props.orderedness import is_alert_sequence_ordered
from repro.workloads.traces import (
    example_1,
    example_2,
    example_3_alerts,
    lemma_6_example,
    theorem_10_example,
    theorem_3_example,
    theorem_4_example,
)


class TestExample1:
    """§3 Example 1: c1 with 2x lost at CE2, Algorithm AD-1."""

    def test_ce_outputs(self):
        ex = example_1()
        assert [a.shorthand() for a in ex.alert_streams[0]] == ["a(2x)", "a(3x)"]
        assert [a.shorthand() for a in ex.alert_streams[1]] == ["a(3x)"]

    def test_arrival_order_a1_a3_a2(self):
        # "if the order of arrival is a1, a3, and then a2, we will get
        #  A = <a1, a3>" — two alerts delivered to the user.
        ex = example_1()
        displayed = ex.display(AD1(), [0, 1, 0])
        assert [a.shorthand() for a in displayed] == ["a(2x)", "a(3x)"]

    def test_duplicate_is_the_filtered_one(self):
        ex = example_1()
        ad = AD1()
        ad.offer_all(ex.arrivals([0, 1, 0]))
        assert len(ad.discarded) == 1
        assert ad.discarded[0].seqno("x") == 3


class TestExample2:
    """§4.2 Example 2: AD-2 sacrifices completeness."""

    def test_ad2_filters_late_alert(self):
        ex = example_2()
        displayed = ex.display(AD2("x"), [1, 0])  # a2 arrives first
        assert [a.seqno("x") for a in displayed] == [2]

    def test_resulting_system_incomplete(self):
        ex = example_2()
        displayed = ex.display(AD2("x"), [1, 0])
        merged = merge_single_variable(ex.traces[0], ex.traces[1])
        result = check_completeness_single(displayed, ex.condition, merged)
        assert not result
        assert len(result.missing) == 1  # T(U1 ⊔ U2) has two alerts

    def test_ad1_would_have_been_complete(self):
        ex = example_2()
        displayed = ex.display(AD1(), [1, 0])
        merged = merge_single_variable(ex.traces[0], ex.traces[1])
        assert check_completeness_single(displayed, ex.condition, merged)


class TestExample3:
    """§4.3 Example 3: AD-3's Received/Missed conflict filtering."""

    def test_walkthrough(self):
        _, a1, a2 = example_3_alerts()
        ad = AD3("x")
        assert ad.offer(a1) is True
        assert ad.received_set == frozenset({1, 3})
        assert ad.missed_set == frozenset({2})
        assert ad.offer(a2) is False

    def test_output_consistent(self):
        _, a1, a2 = example_3_alerts()
        ad = AD3("x")
        ad.offer_all([a1, a2])
        assert check_consistency_single(list(ad.output), "x")

    def test_both_alerts_would_be_inconsistent(self):
        _, a1, a2 = example_3_alerts()
        assert not check_consistency_single([a1, a2], "x")


class TestTheorem3Example:
    """Appendix B, proof of Theorem 3: conservative = consistent but
    neither complete nor ordered."""

    def test_ce_outputs(self):
        ex = theorem_3_example()
        assert [a.seqno("x") for a in ex.alert_streams[0]] == [2]
        assert [a.seqno("x") for a in ex.alert_streams[1]] == [4]

    def test_reference_produces_three_alerts(self):
        ex = theorem_3_example()
        merged = merge_single_variable(ex.traces[0], ex.traces[1])
        alerts = apply_T(ex.condition, merged)
        assert [a.seqno("x") for a in alerts] == [2, 3, 4]

    def test_incomplete_under_ad1(self):
        ex = theorem_3_example()
        displayed = ex.display(AD1(), [0, 1])
        merged = merge_single_variable(ex.traces[0], ex.traces[1])
        assert not check_completeness_single(displayed, ex.condition, merged)

    def test_unordered_interleaving_exists(self):
        ex = theorem_3_example()
        displayed = ex.display(AD1(), [1, 0])  # a(4) before a(2)
        assert not is_alert_sequence_ordered(displayed, ["x"])

    def test_consistent_regardless_of_interleaving(self):
        ex = theorem_3_example()
        for order in ([0, 1], [1, 0]):
            displayed = ex.display(AD1(), order)
            assert check_consistency_single(displayed, "x")


class TestTheorem4Example:
    """Appendix B, proof of Theorem 4: aggressive = inconsistent."""

    def test_ce_outputs(self):
        ex = theorem_4_example()
        assert [a.shorthand() for a in ex.alert_streams[0]] == ["a(2x,1x)"]
        assert [a.shorthand() for a in ex.alert_streams[1]] == ["a(3x,1x)"]

    def test_inconsistent_in_both_orders(self):
        ex = theorem_4_example()
        for order in ([0, 1], [1, 0]):
            displayed = ex.display(AD1(), order)
            assert not check_consistency_single(displayed, "x")

    def test_ad3_restores_consistency(self):
        ex = theorem_4_example()
        for order in ([0, 1], [1, 0]):
            displayed = ex.display(AD3("x"), order)
            assert check_consistency_single(displayed, "x")
            assert len(displayed) == 1  # one of the two is filtered


class TestTheorem10Example:
    """§5 / Appendix B: multi-variable AD-1 is neither ordered nor
    consistent, even with lossless links."""

    def test_ce_outputs(self):
        ex = theorem_10_example()
        assert [a.shorthand() for a in ex.alert_streams[0]] == ["a(2x; 1y)"]
        assert [a.shorthand() for a in ex.alert_streams[1]] == ["a(1x; 2y)"]

    def test_unordered(self):
        ex = theorem_10_example()
        displayed = ex.display(AD1(), [0, 1])
        assert not is_alert_sequence_ordered(displayed, ["x", "y"])

    def test_inconsistent(self):
        ex = theorem_10_example()
        for order in ([0, 1], [1, 0]):
            displayed = ex.display(AD1(), order)
            assert not check_consistency_multi(displayed, ["x", "y"])

    def test_ad5_restores_order_and_consistency(self):
        ex = theorem_10_example()
        for order in ([0, 1], [1, 0]):
            displayed = ex.display(AD5(("x", "y")), order)
            assert is_alert_sequence_ordered(displayed, ["x", "y"])
            assert check_consistency_multi(displayed, ["x", "y"])
            assert len(displayed) == 1


class TestLemma6Example:
    """Appendix B, Lemma 6: AD-5 is incomplete."""

    def test_ce_outputs(self):
        ex = lemma_6_example()
        assert [a.shorthand() for a in ex.alert_streams[0]] == ["a(8x; 2y)"]
        assert [a.shorthand() for a in ex.alert_streams[1]] == ["a(8x; 4y)"]

    def test_ad5_passes_both(self):
        ex = lemma_6_example()
        displayed = ex.display(AD5(("x", "y")), [0, 1])
        assert len(displayed) == 2

    def test_no_interleaving_realises_the_pair(self):
        ex = lemma_6_example()
        displayed = ex.display(AD5(("x", "y")), [0, 1])
        per_var = combine_received(ex.traces, ("x", "y"))
        result = check_completeness_multi(displayed, ex.condition, per_var)
        assert not result
        # Every interleaving disagrees with the displayed pair somewhere.
        assert result.missing or result.extraneous
        # And specifically, any interleaving producing BOTH displayed
        # alerts also produces the forced intermediate (8x, 3y):
        from repro.core.alert import alert_identity_set
        from repro.core.reference import apply_T, interleavings

        displayed_ids = alert_identity_set(displayed)
        for candidate in interleavings(per_var):
            produced = alert_identity_set(apply_T(ex.condition, candidate))
            if displayed_ids <= produced:
                seqno_pairs = {
                    tuple(s for _, s in identity[1]) for identity in produced
                }
                assert ((8,), (3,)) in seqno_pairs

    def test_pair_is_consistent_though(self):
        # Incompleteness here is NOT a consistency violation.
        ex = lemma_6_example()
        displayed = ex.display(AD5(("x", "y")), [0, 1])
        assert check_consistency_multi(displayed, ["x", "y"])
