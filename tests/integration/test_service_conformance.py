"""Differential conformance: the service runtime vs the simulator.

The heart of this subsystem's test archetype.  A recorded update feed
replayed through every runtime — both simulator kernels, the
scheduler-free direct core, and the asyncio service over real sockets —
must produce **byte-identical** displayed-alert frame sequences and
identical property verdicts.  The pinned corpus covers:

* the 8 minimized ✗-cell witnesses of Tables 1–3 (the smallest known
  runs violating orderedness/completeness/consistency) — each must
  still violate its target property *identically* on every runtime;
* healthy runs across rows, algorithms and replication degrees;
* a faulty run (burst loss + outages via the chaos profile) and a
  dynamic-membership run (CE crash → detect → rejoin → catch-up),
  whose feeds the service must reproduce despite never simulating the
  faults itself — the feed records their delivery-stream consequences.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # `python -m pytest` from elsewhere
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.min_witnesses import RESULT_PATH  # noqa: E402

from repro.engine.spec import TrialSpec  # noqa: E402
from repro.faults import DEFAULT_CHAOS_PROFILE  # noqa: E402
from repro.membership import MembershipConfig  # noqa: E402
from repro.service import (  # noqa: E402
    check_conformance,
    default_runtimes,
    record_feed,
)

WITNESS_ENTRIES = json.loads(RESULT_PATH.read_text())


def assert_conforms(spec: TrialSpec):
    feed = record_feed(spec)
    report = check_conformance(feed, default_runtimes())
    digests = {r.runtime: r.digest() for r in report.results}
    assert report.identical, (
        f"runtimes diverged on {spec}: digests={digests}, "
        f"verdicts={ {r.runtime: r.verdicts for r in report.results} }"
    )
    assert {"kernel:object", "kernel:array", "direct", "asyncio"} == set(digests)
    return report


class TestMinimizedWitnessFeeds:
    """The 8 pinned ✗-cells: violations must survive the runtime swap."""

    @pytest.mark.parametrize(
        "entry", WITNESS_ENTRIES, ids=[e["cell"] for e in WITNESS_ENTRIES]
    )
    def test_witness_conforms_and_still_violates(self, entry):
        witness = entry["witness"]
        spec = TrialSpec(
            witness["matrix"], witness["row"], witness["algorithm"],
            witness["seed"], witness["n_updates"],
            replication=witness["replication"],
            front_loss=witness["front_loss"],
        )
        report = assert_conforms(spec)
        assert report.verdicts[entry["target"]] is False, (
            f"{entry['cell']}: every runtime must reproduce the "
            f"{entry['target']} violation"
        )


class TestHealthyFeeds:
    @pytest.mark.parametrize(
        "row,algorithm,replication",
        [
            ("lossless", "AD-1", 2),
            ("non-historical", "AD-2", 2),
            ("conservative", "AD-3", 3),
            ("aggressive", "AD-4", 2),
            ("aggressive", "AD-6", 3),
        ],
    )
    def test_single_variable_rows(self, row, algorithm, replication):
        assert_conforms(
            TrialSpec("single", row, algorithm, seed=13, n_updates=30,
                      replication=replication)
        )

    def test_multi_variable_row(self):
        assert_conforms(
            TrialSpec("multi", "aggressive", "AD-5", seed=3, n_updates=30,
                      replication=3)
        )

    def test_lossless_verdicts_all_hold(self):
        report = assert_conforms(
            TrialSpec("single", "lossless", "AD-1", seed=1, n_updates=30)
        )
        assert report.verdicts == {
            "ordered": True, "complete": True, "consistent": True,
        }


class TestDegradedFeeds:
    def test_chaos_feed_conforms(self):
        faults = DEFAULT_CHAOS_PROFILE.scaled(1.5)
        assert_conforms(
            TrialSpec("single", "aggressive", "AD-4", seed=11, n_updates=30,
                      faults=faults)
        )

    def test_membership_feed_conforms(self):
        # Crash → detect → rejoin → catch-up changes the delivery streams;
        # A_i = T(U_i) still holds, so the feed replays conformantly.
        from repro.faults.plan import FaultProfile

        assert_conforms(
            TrialSpec(
                "single", "aggressive", "AD-3", seed=5, n_updates=40,
                faults=FaultProfile(ce_crash_rate=0.01, ce_mean_repair=40.0),
                membership=MembershipConfig(),
            )
        )
