"""Integration: counterexample extraction/shrinking on multi-variable runs."""

import pytest

from repro.analysis.witness import (
    counterexample_from_run,
    find_violation,
    replay,
    shrink_counterexample,
)
from repro.displayers.ad1 import AD1
from repro.workloads.scenarios import MULTI_VARIABLE_SCENARIOS, run_scenario


def find_multivar_violation(property_name: str, max_seeds: int = 200):
    scenario = MULTI_VARIABLE_SCENARIOS["non-historical"]
    for seed in range(max_seeds):
        run = run_scenario(scenario, "AD-1", seed, n_updates=8)
        counterexample = counterexample_from_run(run)
        if counterexample is not None and counterexample.violation == property_name:
            return counterexample
    pytest.fail(f"no multi-variable {property_name} violation found")


class TestMultiVariableWitness:
    def test_consistency_violation_found_and_replayable(self):
        counterexample = find_multivar_violation("consistent")
        _, report = replay(
            counterexample.condition,
            counterexample.traces,
            counterexample.arrival_pattern,
            AD1,
        )
        assert find_violation(report) == "consistent"

    def test_shrinks_toward_theorem_10_size(self):
        counterexample = find_multivar_violation("consistent")
        shrunk = shrink_counterexample(counterexample, AD1)
        assert shrunk.total_updates <= counterexample.total_updates
        # Theorem 10's hand-built example uses 4 updates per CE (2x + 2y);
        # the shrinker should land in that ballpark.
        assert shrunk.total_updates <= 10
        _, report = replay(
            shrunk.condition, shrunk.traces, shrunk.arrival_pattern, AD1
        )
        assert find_violation(report) == "consistent"

    def test_describe_shows_both_variables(self):
        counterexample = find_multivar_violation("consistent")
        shrunk = shrink_counterexample(counterexample, AD1)
        text = shrunk.describe()
        assert "x" in text and "y" in text


class TestCLIMultiVariablePaths:
    def test_cli_shrink_multi(self, capsys):
        from repro.cli import main

        code = main(
            ["shrink", "non-historical", "--multi", "--algorithm", "AD-1",
             "--property", "consistent", "--updates", "8",
             "--max-seeds", "150"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent violated under AD-1" in out

    def test_cli_scenario_multi_timeline(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "lossless", "--multi", "--algorithm", "AD-5",
             "--updates", "6", "--timeline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DM-y" in out
