"""Differential oracle: fuzzer findings vs. the exhaustive checker.

The fuzzer decides a violation from *one* simulated arrival order; the
exhaustive checker (:func:`repro.props.exhaustive.classify_trace_pair`)
replays **every** merge interleaving of the CE alert streams.  The two
must agree in one direction: if the simulator's own interleaving
violated a property, then the exhaustive sweep over all interleavings —
which includes that one — must report ``violated_count >= 1`` for it.
A finding the sweep calls "always holds" would mean the fuzzer's
verdicts and the replay model have diverged.

The oracle only applies to fault-free findings: the exhaustive checker
re-runs the CE stage deterministically from the received traces, which a
crashed or suppressed CE in the original run would desynchronize.  The
mutation limits keep reading counts small so alert streams stay inside
the interleaving budget.
"""

from repro.displayers.registry import make_ad
from repro.fuzz import FuzzConfig, FuzzEngine, MutationLimits
from repro.props.exhaustive import classify_trace_pair, count_merge_orders
from repro.workloads.scenarios import run_scenario

#: Interleaving ceiling per finding — keeps the sweep to well under a
#: second even for the widest tractable alert streams.
ORDER_LIMIT = 20_000
#: Cross-check at most this many findings (they are already distinct
#: behaviours, so the first few exercise the oracle plenty).
MAX_CHECKED = 8


def _campaign() -> FuzzConfig:
    return FuzzConfig(
        matrix="single",
        row="aggressive",
        algorithm="AD-2",
        target=None,  # any violated property is a finding
        budget=150,
        fuzz_seed=1,
        n_updates=8,
        limits=MutationLimits(min_updates=4, max_updates=10,
                              max_replication=2),
    )


def test_every_tractable_finding_is_confirmed_by_the_exhaustive_sweep():
    result = FuzzEngine(_campaign()).run()
    assert result.findings, "the aggressive/AD-2 cell must yield findings"

    checked = 0
    for finding in result.findings:
        if checked >= MAX_CHECKED:
            break
        spec = finding.witness_spec
        if spec.faults is not None:
            continue  # CE crashes desynchronize the replay-model oracle
        scenario = spec.resolve_scenario()
        run = run_scenario(
            scenario, spec.algorithm, spec.seed,
            n_updates=spec.n_updates, replication=spec.replication,
        )
        lengths = [len(alerts) for alerts in run.ce_alerts]
        if count_merge_orders(lengths) > ORDER_LIMIT:
            continue
        condition = scenario.make_condition()
        report = classify_trace_pair(
            condition, run.received,
            lambda: make_ad(spec.algorithm, condition),
            limit=ORDER_LIMIT,
        )
        classification = getattr(report, finding.violation)
        assert classification is not None, (
            f"{finding.violation} undecidable in the sweep but decided "
            f"False by the fuzzer (seed {spec.seed})"
        )
        assert classification.violated_count >= 1, (
            f"fuzzer saw a {finding.violation} violation at seed "
            f"{spec.seed} but all {report.interleavings} interleavings "
            "hold — verdict divergence"
        )
        checked += 1

    assert checked >= 1, "no finding was tractable for the oracle"


def test_oracle_agrees_the_simulated_order_is_one_of_the_interleavings():
    """Sanity direction: on a fault-free violating run, the *simulated*
    displayed sequence comes from some interleaving, so the sweep's
    violating witness exists and reproduces a violation when replayed."""
    result = FuzzEngine(_campaign()).run()
    for finding in result.findings:
        spec = finding.witness_spec
        if spec.faults is not None:
            continue
        scenario = spec.resolve_scenario()
        run = run_scenario(
            scenario, spec.algorithm, spec.seed,
            n_updates=spec.n_updates, replication=spec.replication,
        )
        lengths = [len(alerts) for alerts in run.ce_alerts]
        if count_merge_orders(lengths) > ORDER_LIMIT:
            continue
        condition = scenario.make_condition()
        report = classify_trace_pair(
            condition, run.received,
            lambda: make_ad(spec.algorithm, condition),
            limit=ORDER_LIMIT,
        )
        classification = getattr(report, finding.violation)
        assert classification.violating_witness is not None
        assert classification.verdict in ("sometimes", "never")
        return
    raise AssertionError("no tractable fault-free finding to check")
