"""Differential testing of the quality metrics: independent brute-force
recomputation from raw :class:`RunResult` internals.

The quality layer (:mod:`repro.quality.metrics`) classifies displayed
alerts via greedy subsequence time-matching and an incremental
detected-key set.  This suite recomputes precision/recall/duplicates
from first principles — a second evaluator pass over the broadcast log
and a plain scan over the displayed sequence, sharing no code with the
metrics module beyond the event key — and pins both implementations to
each other on the 8 minimized ✗-cell witnesses (the adversarial corpus:
every one violates a paper property, so histories genuinely disagree)
plus a small quality sweep.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from benchmarks.min_witnesses import RESULT_PATH  # noqa: E402

from repro.core.alert import alert_event_key  # noqa: E402
from repro.core.evaluator import ConditionEvaluator  # noqa: E402
from repro.engine.spec import TrialSpec  # noqa: E402
from repro.quality.metrics import alert_quality  # noqa: E402
from repro.quality.sweep import quality_specs  # noqa: E402
from repro.workloads.scenarios import run_scenario  # noqa: E402

WITNESS_ENTRIES = json.loads(RESULT_PATH.read_text())


def run_of(spec: TrialSpec):
    return run_scenario(
        spec.resolve_scenario(),
        spec.algorithm,
        spec.seed,
        n_updates=spec.n_updates,
        replication=spec.replication,
        faults=spec.faults,
        kernel=spec.kernel,
    )


def brute_force_quality(run) -> dict:
    """Recompute the headline counts with no shared machinery.

    Ground truth: replay the broadcast log through a fresh evaluator.
    Classification: for each expected key, scan the *whole* displayed
    sequence for carriers — the first is the detection, the rest are
    duplicates; displayed alerts carrying no expected key are false.
    """
    variables = run.condition.variables
    ideal = ConditionEvaluator(run.condition, source="ideal")
    expected_keys = []
    for _, update in run.sent_log:
        alert = ideal.ingest(update)
        if alert is not None:
            key = alert_event_key(alert, variables)
            if key not in expected_keys:
                expected_keys.append(key)
    displayed_keys = [
        alert_event_key(alert, variables) for alert in run.displayed
    ]
    detected = sum(1 for key in expected_keys if key in displayed_keys)
    duplicates = sum(
        displayed_keys.count(key) - 1
        for key in expected_keys
        if key in displayed_keys
    )
    false_alerts = sum(
        1 for key in displayed_keys if key not in expected_keys
    )
    expected = len(expected_keys)
    displayed = len(displayed_keys)
    return {
        "expected": expected,
        "detected": detected,
        "duplicates": duplicates,
        "false_alerts": false_alerts,
        "displayed": displayed,
        "precision": detected / displayed if displayed else 1.0,
        "recall": detected / expected if expected else 1.0,
    }


def assert_matches_brute_force(spec: TrialSpec):
    run = run_of(spec)
    quality = alert_quality(run)
    brute = brute_force_quality(run)
    assert quality.expected == brute["expected"]
    assert quality.detected == brute["detected"]
    assert quality.duplicates == brute["duplicates"]
    assert quality.false_alerts == brute["false_alerts"]
    assert quality.displayed == brute["displayed"]
    assert quality.precision == pytest.approx(brute["precision"])
    assert quality.recall == pytest.approx(brute["recall"])


class TestWitnessCorpus:
    """The pinned ✗-cells: maximally adversarial displayed sequences."""

    @pytest.mark.parametrize(
        "entry", WITNESS_ENTRIES, ids=[e["cell"] for e in WITNESS_ENTRIES]
    )
    def test_quality_matches_brute_force(self, entry):
        witness = entry["witness"]
        assert_matches_brute_force(
            TrialSpec(
                witness["matrix"],
                witness["row"],
                witness["algorithm"],
                witness["seed"],
                witness["n_updates"],
                replication=witness["replication"],
                front_loss=witness["front_loss"],
            )
        )

    @pytest.mark.parametrize(
        "entry", WITNESS_ENTRIES, ids=[e["cell"] for e in WITNESS_ENTRIES]
    )
    def test_adaptive_on_witness_schedules(self, entry):
        """The same adversarial schedules, filtered adaptively."""
        witness = entry["witness"]
        assert_matches_brute_force(
            TrialSpec(
                witness["matrix"],
                witness["row"],
                "adaptive",
                witness["seed"],
                witness["n_updates"],
                replication=witness["replication"],
                front_loss=witness["front_loss"],
            )
        )


class TestSweepCells:
    def test_lossy_chaotic_cell_matches_brute_force(self):
        for spec in quality_specs(
            "AD-1", 0.3, 1.0, 4, row="aggressive", n_updates=16
        ):
            assert_matches_brute_force(spec)

    def test_report_quality_equals_direct_metrics(self):
        # The collect_quality path through TrialSpec.execute() must carry
        # exactly the dict alert_quality computes on the same run.
        for spec in quality_specs(
            "adaptive", 0.15, 0.5, 3, row="aggressive", n_updates=14
        ):
            report = spec.execute()
            assert report.quality == alert_quality(run_of(spec)).as_dict()
