"""Mutant algorithms: the property harness must catch every broken AD.

Mutation-style validation of the *checkers*: each class below breaks one
load-bearing line of an algorithm (the kind of bug a reimplementation
could plausibly introduce), and the test asserts our property machinery
detects the breakage — randomized sweeps for realistic streams, the
bounded-exhaustive verifier for proof-grade detection.  If a mutant ever
survives, the harness (not the algorithm) has a hole.
"""

import pytest

from repro.analysis.experiments import (
    consistency_property,
    strict_orderedness_property,
)
from repro.core.alert import Alert
from repro.core.sequences import spanning_set
from repro.displayers.ad2 import AD2
from repro.displayers.ad3 import AD3
from repro.displayers.ad5 import AD5
from repro.props.statespace import (
    degree2_alphabet,
    two_variable_alphabet,
    verify_invariant_exhaustively,
)
from repro.props.orderedness import is_alert_sequence_ordered


class AD2NonStrict(AD2):
    """Mutant: uses `<` instead of `<=` — lets duplicate seqnos through."""

    name = "AD-2-mutant-nonstrict"

    def _accept(self, alert: Alert) -> bool:
        return alert.seqno(self.varname) >= self._last  # BUG: >= not >


class AD2ForgetsState(AD2):
    """Mutant: never advances `last` — everything passes."""

    name = "AD-2-mutant-stateless"

    def _record(self, alert: Alert) -> None:
        pass  # BUG: last never updated


class AD3NoGapTracking(AD3):
    """Mutant: records Received but forgets to record Missed."""

    name = "AD-3-mutant-nogaps"

    def _record(self, alert: Alert) -> None:
        self._seen.add(alert.identity())
        history = set(alert.histories.seqnos(self.varname))
        self._tracker.received |= history  # BUG: missed set never grows


class AD3NoReceivedCheck(AD3):
    """Mutant: skips the gaps-vs-Received half of Conflicts()."""

    name = "AD-3-mutant-halfcheck"

    def _accept(self, alert: Alert) -> bool:
        if alert.identity() in self._seen:
            return False
        history = set(alert.histories.seqnos(self.varname))
        # BUG: only checks history∩Missed, not gaps∩Received.
        return not (history & self._tracker.missed)


class AD5OneVariableOnly(AD5):
    """Mutant: enforces monotonicity in the first variable only."""

    name = "AD-5-mutant-onevar"

    def _accept(self, alert: Alert) -> bool:
        first = self.varnames[0]
        return alert.seqno(first) >= self._last[first]  # BUG: ignores y


class TestMutantsCaughtExhaustively:
    """The bounded-exhaustive verifier must find a violating stream for
    every mutant (and, per test_statespace_verification, none for the
    real algorithms)."""

    ALPHABET = degree2_alphabet(max_seqno=4)

    def test_ad2_nonstrict_caught(self):
        result = verify_invariant_exhaustively(
            lambda: AD2NonStrict("x"),
            self.ALPHABET,
            max_length=2,
            invariant=strict_orderedness_property("x"),
        )
        assert not result.holds

    def test_ad2_stateless_caught(self):
        result = verify_invariant_exhaustively(
            lambda: AD2ForgetsState("x"),
            self.ALPHABET,
            max_length=2,
            invariant=strict_orderedness_property("x"),
        )
        assert not result.holds

    def test_ad3_nogaps_caught(self):
        result = verify_invariant_exhaustively(
            lambda: AD3NoGapTracking("x"),
            self.ALPHABET,
            max_length=2,
            invariant=consistency_property("x"),
        )
        assert not result.holds
        # And the witness is a genuine Theorem-4-style conflict:
        a, b = result.violation
        gaps = spanning_set(a.histories.seqnos("x")) - set(
            a.histories.seqnos("x")
        )
        overlap = gaps & set(b.histories.seqnos("x"))
        reverse = (
            spanning_set(b.histories.seqnos("x"))
            - set(b.histories.seqnos("x"))
        ) & set(a.histories.seqnos("x"))
        assert overlap or reverse

    def test_ad3_halfcheck_caught(self):
        result = verify_invariant_exhaustively(
            lambda: AD3NoReceivedCheck("x"),
            self.ALPHABET,
            max_length=2,
            invariant=consistency_property("x"),
        )
        assert not result.holds

    def test_ad5_onevar_caught(self):
        result = verify_invariant_exhaustively(
            lambda: AD5OneVariableOnly(("x", "y")),
            two_variable_alphabet(max_seqno=3),
            max_length=2,
            invariant=lambda d: is_alert_sequence_ordered(list(d), ["x", "y"]),
        )
        assert not result.holds


class TestMutantsCaughtByRandomizedTables:
    """The randomized table sweep must also flag mutants — the same
    machinery that produced the ✓ cells must not produce them for broken
    implementations."""

    def test_ad3_mutant_fails_consistency_sweep(self):
        from repro.props.report import PropertyTally
        from repro.workloads.scenarios import (
            SINGLE_VARIABLE_SCENARIOS,
            run_scenario,
        )
        from repro.components.system import run_system, SystemConfig
        from repro.simulation.rng import RandomStreams
        from repro.workloads.generators import rising_runs
        from repro.core.condition import c2

        tally = PropertyTally()
        for seed in range(40):
            streams = RandomStreams(seed)
            workload = {"x": rising_runs(streams.stream("w"), 30)}
            config = SystemConfig(replication=2, front_loss=0.3)
            run = run_system(
                c2(), workload, config, seed=seed,
                algorithm=AD3NoGapTracking("x"),
            )
            tally.add(run.evaluate_properties(), seed=seed)
        assert tally.consistency_violations > 0  # mutant exposed
