"""Bounded-exhaustive verification of the algorithm guarantees.

Within the enumerated bounds these are *proofs by exhaustion* of the
paper's per-algorithm theorems — every stream over the alphabet, every
prefix, no sampling.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.analysis.experiments import (
    consistency_property,
    strict_orderedness_property,
)
from repro.displayers import AD1, AD2, AD3, AD4, AD5, AD6
from repro.props.consistency import check_consistency_multi
from repro.props.orderedness import is_alert_sequence_ordered
from repro.props.statespace import (
    degree2_alphabet,
    two_variable_alphabet,
    verify_invariant_exhaustively,
)


class TestSingleVariableGuarantees:
    ALPHABET = degree2_alphabet(max_seqno=4)  # 6 alerts, incl. gap shapes

    def test_alphabet_shape(self):
        assert len(self.ALPHABET) == 6

    def test_ad2_ordered_on_every_stream(self):
        result = verify_invariant_exhaustively(
            lambda: AD2("x"),
            self.ALPHABET,
            max_length=4,
            invariant=strict_orderedness_property("x"),
        )
        assert result.holds, result.violation
        assert result.streams_checked == 6**4

    def test_ad3_consistent_on_every_stream(self):
        result = verify_invariant_exhaustively(
            lambda: AD3("x"),
            self.ALPHABET,
            max_length=4,
            invariant=consistency_property("x"),
        )
        assert result.holds, result.violation

    def test_ad4_both_on_every_stream(self):
        ordered = strict_orderedness_property("x")
        consistent = consistency_property("x")
        result = verify_invariant_exhaustively(
            lambda: AD4("x"),
            self.ALPHABET,
            max_length=4,
            invariant=lambda displayed: ordered(displayed) and consistent(displayed),
        )
        assert result.holds, result.violation

    def test_ad1_violates_orderedness_and_the_sweep_finds_it(self):
        # Sanity: the verifier is not vacuous — AD-1 has no orderedness
        # guarantee and the exhaustive sweep must find a witness quickly.
        result = verify_invariant_exhaustively(
            AD1,
            self.ALPHABET,
            max_length=2,
            invariant=strict_orderedness_property("x"),
        )
        assert not result.holds
        assert result.violation is not None
        assert len(result.violation) == 2  # shortest possible witness

    def test_ad1_violates_consistency_exhaustively_found(self):
        result = verify_invariant_exhaustively(
            AD1,
            self.ALPHABET,
            max_length=2,
            invariant=consistency_property("x"),
        )
        assert not result.holds


class TestMultiVariableGuarantees:
    ALPHABET = two_variable_alphabet(max_seqno=3)  # 9 alerts

    def test_ad5_ordered_on_every_stream(self):
        result = verify_invariant_exhaustively(
            lambda: AD5(("x", "y")),
            self.ALPHABET,
            max_length=4,
            invariant=lambda d: is_alert_sequence_ordered(list(d), ["x", "y"]),
        )
        assert result.holds, result.violation
        assert result.streams_checked == 9**4

    def test_ad6_ordered_and_consistent_on_every_stream(self):
        result = verify_invariant_exhaustively(
            lambda: AD6(("x", "y")),
            self.ALPHABET,
            max_length=4,
            invariant=lambda d: (
                is_alert_sequence_ordered(list(d), ["x", "y"])
                and bool(check_consistency_multi(list(d), ["x", "y"]))
            ),
        )
        assert result.holds, result.violation

    def test_ad1_multi_violation_found(self):
        # Theorem 10 in miniature: two alerts suffice.
        result = verify_invariant_exhaustively(
            AD1,
            self.ALPHABET,
            max_length=2,
            invariant=lambda d: bool(
                check_consistency_multi(list(d), ["x", "y"])
            ),
        )
        assert not result.holds
        assert len(result.violation) == 2


class TestVerifierMechanics:
    def test_state_budget_enforced(self):
        with pytest.raises(RuntimeError):
            verify_invariant_exhaustively(
                AD1,
                degree2_alphabet(5),
                max_length=6,
                invariant=lambda d: True,
                max_states=100,
            )

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            verify_invariant_exhaustively(
                AD1, degree2_alphabet(3), -1, lambda d: True
            )

    def test_zero_length_trivially_holds(self):
        result = verify_invariant_exhaustively(
            AD1, degree2_alphabet(3), 0, lambda d: False
        )
        assert result.holds
        assert result.streams_checked == 1
