"""Integration tests: the paper's theorems verified over randomized runs.

✓-cells are universal claims — a modest randomized sweep must show zero
violations.  ✗-cells are existential — the sweep must find at least one
witness (the workloads/delays are tuned so witnesses are common).
Trial counts here are kept small for test-suite latency; the benchmarks
run the same experiments at full scale.
"""

import pytest

from repro.props.report import PropertyTally
from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

TRIALS = 40
N_UPDATES = 30


def tally_for(scenarios, row: str, algorithm: str, trials=TRIALS, n=N_UPDATES,
              base_seed=55000) -> PropertyTally:
    tally = PropertyTally()
    scenario = scenarios[row]
    for trial in range(trials):
        run = run_scenario(scenario, algorithm, base_seed + trial, n_updates=n)
        tally.add(run.evaluate_properties(), seed=base_seed + trial)
    return tally


class TestTheorem1Lossless:
    """Lossless front links: ordered and complete (hence consistent)."""

    def test_ad1_lossless_all_properties(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "lossless", "AD-1")
        assert tally.always_ordered
        assert tally.always_complete
        assert tally.always_consistent


class TestTheorem2NonHistorical:
    """Lossy + non-historical: complete but not ordered (under AD-1)."""

    def test_complete(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "non-historical", "AD-1")
        assert tally.always_complete
        assert tally.always_consistent  # implied by completeness

    def test_not_ordered_witnessed(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "non-historical", "AD-1")
        assert tally.ordered_violations > 0
        assert tally.first_unordered_seed is not None


class TestTheorem3Conservative:
    """Lossy + conservative: consistent, not ordered, not complete."""

    def test_consistent(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "conservative", "AD-1")
        assert tally.always_consistent

    def test_violations_witnessed(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "conservative", "AD-1")
        assert tally.ordered_violations > 0
        assert tally.completeness_violations > 0


class TestTheorem4Aggressive:
    """Lossy + aggressive: not even consistent."""

    def test_inconsistency_witnessed(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "aggressive", "AD-1")
        assert tally.consistency_violations > 0


class TestAD2Guarantees:
    """AD-2 is ordered in ALL scenarios (Table 2), at a completeness cost."""

    @pytest.mark.parametrize(
        "row", ["lossless", "non-historical", "conservative", "aggressive"]
    )
    def test_always_ordered(self, row):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, row, "AD-2")
        assert tally.always_ordered

    def test_lossless_still_complete(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "lossless", "AD-2")
        assert tally.always_complete

    def test_non_historical_completeness_lost(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "non-historical", "AD-2")
        assert tally.completeness_violations > 0


class TestAD3Guarantees:
    """AD-3 is consistent in ALL scenarios (§4.3)."""

    @pytest.mark.parametrize(
        "row", ["lossless", "non-historical", "conservative", "aggressive"]
    )
    def test_always_consistent(self, row):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, row, "AD-3")
        assert tally.always_consistent

    def test_aggressive_still_unordered(self):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, "aggressive", "AD-3")
        assert tally.ordered_violations > 0


class TestAD4Guarantees:
    """AD-4 is ordered AND consistent in all scenarios (§4.4)."""

    @pytest.mark.parametrize(
        "row", ["lossless", "non-historical", "conservative", "aggressive"]
    )
    def test_ordered_and_consistent(self, row):
        tally = tally_for(SINGLE_VARIABLE_SCENARIOS, row, "AD-4")
        assert tally.always_ordered
        assert tally.always_consistent


class TestTheorem10AD1Multi:
    """Multi-variable AD-1 guarantees nothing, even lossless."""

    def test_lossless_violations_witnessed(self):
        tally = tally_for(MULTI_VARIABLE_SCENARIOS, "lossless", "AD-1")
        assert tally.ordered_violations > 0
        assert tally.consistency_violations > 0


class TestAD5Guarantees:
    """Lemmas 4-6: AD-5 is ordered; consistent unless aggressive; never
    complete."""

    @pytest.mark.parametrize(
        "row", ["lossless", "non-historical", "conservative", "aggressive"]
    )
    def test_always_ordered(self, row):
        tally = tally_for(MULTI_VARIABLE_SCENARIOS, row, "AD-5")
        assert tally.always_ordered

    @pytest.mark.parametrize("row", ["lossless", "non-historical", "conservative"])
    def test_consistent_except_aggressive(self, row):
        tally = tally_for(MULTI_VARIABLE_SCENARIOS, row, "AD-5")
        assert tally.always_consistent

    def test_aggressive_inconsistency_witnessed(self):
        tally = tally_for(
            MULTI_VARIABLE_SCENARIOS, "aggressive", "AD-5", trials=80
        )
        assert tally.consistency_violations > 0

    def test_incompleteness_witnessed(self):
        # Short traces so the exhaustive completeness oracle applies.
        tally = tally_for(
            MULTI_VARIABLE_SCENARIOS, "lossless", "AD-5", trials=120, n=6
        )
        assert tally.completeness_checked > 0
        assert tally.completeness_violations > 0


class TestAD6Guarantees:
    """§5.2: AD-6 is ordered and consistent in all multi-variable rows."""

    @pytest.mark.parametrize(
        "row", ["lossless", "non-historical", "conservative", "aggressive"]
    )
    def test_ordered_and_consistent(self, row):
        tally = tally_for(MULTI_VARIABLE_SCENARIOS, row, "AD-6", trials=60)
        assert tally.always_ordered
        assert tally.always_consistent
