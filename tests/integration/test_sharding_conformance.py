"""Cross-shard conformance: sharded deployments vs the direct core.

Sharding's contract is *output invisibility*: any shard count, any ring
dicing, any resize mid-feed must display **byte-identical** alert
frames and identical property verdicts to the single-set reference
runtime.  The matrix here replays shards ∈ {1, 2, 3, 8} against
:class:`~repro.service.runtime.DirectRuntime` over:

* the 8 pinned minimal ✗-cell witnesses of Tables 1–3 — each property
  violation must *survive* the shard split (a sharded deployment that
  accidentally "fixes" a violation is corrupting the semantics);
* healthy single- and multi-variable feeds (the multi-variable rows
  exercise condition-reference routing, which pulls the non-primary
  variable's updates to the condition's home shard);
* a chaos feed and a dynamic-membership feed, whose degraded delivery
  streams the shard split must carry through untouched;
* the sharded asyncio service (tenant front + per-shard queues over
  real sockets); and
* a ring resize mid-feed, whose handoff must be invisible too.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # `python -m pytest` from elsewhere
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.min_witnesses import RESULT_PATH  # noqa: E402

from repro.engine.spec import TrialSpec  # noqa: E402
from repro.faults import DEFAULT_CHAOS_PROFILE  # noqa: E402
from repro.membership import MembershipConfig  # noqa: E402
from repro.service import check_conformance, record_feed  # noqa: E402
from repro.service.runtime import DirectRuntime  # noqa: E402
from repro.sharding import (  # noqa: E402
    ShardConfig,
    execute_rebalanced,
    sharded_runtimes,
)

WITNESS_ENTRIES = json.loads(RESULT_PATH.read_text())

#: The conformance matrix's shard counts (1 = the degenerate ring).
SHARD_COUNTS = (1, 2, 3, 8)

#: Feeds are pure functions of their spec; cache across the matrix.
_FEEDS: dict[TrialSpec, object] = {}


def feed_for(spec: TrialSpec):
    if spec not in _FEEDS:
        _FEEDS[spec] = record_feed(spec)
    return _FEEDS[spec]


def assert_shard_conformance(spec: TrialSpec):
    """Replay the spec's feed at every shard count; byte-identity."""
    feed = feed_for(spec)
    report = check_conformance(
        feed, [DirectRuntime(), *sharded_runtimes(SHARD_COUNTS)]
    )
    assert len(report.results) == 1 + len(SHARD_COUNTS)
    assert report.identical, report.explain()
    # Nothing lost in the split: every recorded delivery was either
    # routed to a shard or dropped as unreferenced.
    for result in report.results[1:]:
        routed = sum(
            count
            for key, count in result.counters.items()
            if key.startswith("shard/route/")
        )
        dropped = result.counters.get("shard/drop/router", 0)
        assert routed + dropped == len(feed.deliveries)
    return report


class TestMinimizedWitnessShards:
    """The 8 pinned ✗-cells: violations must survive the shard split."""

    @pytest.mark.parametrize(
        "entry", WITNESS_ENTRIES, ids=[e["cell"] for e in WITNESS_ENTRIES]
    )
    def test_witness_conforms_and_still_violates(self, entry):
        witness = entry["witness"]
        spec = TrialSpec(
            witness["matrix"], witness["row"], witness["algorithm"],
            witness["seed"], witness["n_updates"],
            replication=witness["replication"],
            front_loss=witness["front_loss"],
        )
        report = assert_shard_conformance(spec)
        for result in report.results:
            assert result.verdicts[entry["target"]] is False, (
                f"{entry['cell']}: {result.runtime} must reproduce the "
                f"{entry['target']} violation"
            )


class TestHealthyFeeds:
    @pytest.mark.parametrize(
        "row,algorithm,replication",
        [
            ("lossless", "AD-1", 2),
            ("non-historical", "AD-2", 2),
            ("aggressive", "AD-4", 3),
        ],
    )
    def test_single_variable_rows(self, row, algorithm, replication):
        assert_shard_conformance(
            TrialSpec("single", row, algorithm, seed=13, n_updates=30,
                      replication=replication)
        )

    def test_multi_variable_routing_pulls_both_variables_home(self):
        # cm references x and y; condition-reference routing must land
        # every delivery on the condition's single home shard.
        spec = TrialSpec("multi", "aggressive", "AD-5", seed=3, n_updates=24,
                         replication=3)
        report = assert_shard_conformance(spec)
        for result in report.results[1:]:
            routes = [
                key for key in result.counters if key.startswith("shard/route/")
            ]
            assert len(routes) == 1, (
                f"{result.runtime}: one condition must occupy exactly one "
                f"shard, got routes {routes}"
            )

    def test_spec_with_sharding_field_records_identical_feed(self):
        # The TrialSpec knob is semantics-neutral: recording with it set
        # changes the spec header, never the deliveries or stamps.
        plain = record_feed(
            TrialSpec("single", "aggressive", "AD-2", 7, 18)
        )
        sharded = record_feed(
            TrialSpec("single", "aggressive", "AD-2", 7, 18,
                      sharding=ShardConfig(shards=8))
        )
        assert sharded.deliveries == plain.deliveries
        assert sharded.stamps == plain.stamps
        assert sharded.spec["sharding"] == {
            "shards": 8, "virtual_nodes": 64, "ring_seed": 0,
        }


class TestDegradedFeeds:
    def test_chaos_feed_conforms(self):
        assert_shard_conformance(
            TrialSpec("single", "aggressive", "AD-4", seed=11, n_updates=30,
                      faults=DEFAULT_CHAOS_PROFILE.scaled(1.5))
        )

    def test_membership_feed_conforms(self):
        from repro.faults.plan import FaultProfile

        faults = FaultProfile(ce_crash_rate=0.01, ce_mean_repair=40.0)
        assert_shard_conformance(
            TrialSpec("single", "aggressive", "AD-4", seed=5, n_updates=30,
                      replication=3, faults=faults,
                      membership=MembershipConfig())
        )


class TestShardedService:
    def test_asyncio_service_with_shard_front_conforms(self):
        from repro.service.server import AsyncioServiceRuntime, ServiceConfig

        spec = TrialSpec("single", "aggressive", "AD-2", seed=13, n_updates=30)
        feed = feed_for(spec)
        report = check_conformance(
            feed,
            [
                DirectRuntime(),
                AsyncioServiceRuntime(ServiceConfig(shards=3)),
                AsyncioServiceRuntime(ServiceConfig(shards=8, ring_seed=2)),
            ],
        )
        assert report.identical, report.explain()
        for result in report.results[1:]:
            forwarded = sum(
                count
                for key, count in result.counters.items()
                if key.startswith("shard/route/")
            )
            assert forwarded == len(feed.deliveries)


class TestZipfianTenantPopulation:
    """A Zipf-skewed 100-tenant population through shards ∈ {1, 4}.

    Per-tenant update volumes come from
    :func:`~repro.sharding.tenants.zipfian_update_counts` — a pure
    function of ``(count, total, seed, exponent)``, independent of any
    ring layout — so both shard counts must fold to the same XOR'd
    digest aggregate and identical global counters, hot head tenants
    and starved tail included.
    """

    TENANTS = 100
    TOTAL_UPDATES = 1200
    SEED = 42

    def _aggregate(self, shards: int):
        from repro.sharding.ring import ShardConfig as Ring
        from repro.sharding.tenants import (
            ShardBatchResult,
            partition_tenants,
            run_shard,
            zipfian_update_counts,
        )

        counts = zipfian_update_counts(
            self.TENANTS, self.TOTAL_UPDATES, self.SEED
        )
        per_tenant = {index: count for index, count in enumerate(counts)}
        batches = [
            run_shard(shard, indices, self.SEED, update_counts=per_tenant)
            for shard, indices in enumerate(
                partition_tenants(self.TENANTS, Ring(shards=shards))
            )
        ]
        return {
            "tenants": sum(b.tenants for b in batches),
            "updates": sum(b.updates for b in batches),
            "alerts": sum(b.alerts for b in batches),
            "displayed": sum(b.displayed for b in batches),
            "digest": ShardBatchResult.combine_digests(
                [b.digest for b in batches]
            ),
        }

    def test_one_and_four_shards_fold_identically(self):
        one = self._aggregate(1)
        four = self._aggregate(4)
        assert one == four
        assert one["tenants"] == self.TENANTS
        assert 0 < one["displayed"] <= one["alerts"]

    def test_population_is_actually_skewed(self):
        from repro.sharding.tenants import zipfian_update_counts

        counts = zipfian_update_counts(
            self.TENANTS, self.TOTAL_UPDATES, self.SEED
        )
        assert sum(counts) == self.TOTAL_UPDATES
        # Head-heavy: the hottest tenant out-updates the whole tail
        # half, and some tail tenants are fully starved.
        assert max(counts) == counts[0]
        assert counts[0] > sum(counts[50:])
        assert min(counts) == 0


class TestRebalanceMidFeed:
    @pytest.mark.parametrize("cut", [0, 1, 17, 10_000])
    def test_resize_mid_feed_is_invisible(self, cut):
        spec = TrialSpec("single", "conservative", "AD-3", seed=9,
                         n_updates=30, replication=3)
        feed = feed_for(spec)
        reference = DirectRuntime().execute(feed)
        result = execute_rebalanced(
            feed, ShardConfig(shards=2), cut, ShardConfig(shards=8)
        )
        assert result.displayed_bytes() == reference.displayed_bytes()
        assert result.verdicts == reference.verdicts
