"""End-to-end tests for deeper histories (degree ≥ 3) and wider variable
sets (3 variables) — shapes the paper's model covers but its examples
don't exercise."""

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import ExpressionCondition
from repro.core.evaluator import ConditionEvaluator
from repro.core.expressions import H
from repro.core.update import Update, parse_trace
from repro.displayers import AD3, AD5, AD6, make_ad
from repro.props.consistency import check_consistency_single
from repro.props.orderedness import is_alert_sequence_ordered
from tests.conftest import alert_deg1


def degree3_condition():
    """"Temperature rose monotonically over the last three readings
    received" — degree 3, aggressive."""
    expr = (H.x[0].value > H.x[-1].value) & (H.x[-1].value > H.x[-2].value)
    return ExpressionCondition("rising3", expr)


class TestDegree3Conditions:
    def test_degree_inferred(self):
        assert degree3_condition().degree("x") == 3

    def test_needs_three_updates(self):
        ce = ConditionEvaluator(degree3_condition())
        assert ce.ingest(Update("x", 1, 1.0)) is None
        assert ce.ingest(Update("x", 2, 2.0)) is None
        alert = ce.ingest(Update("x", 3, 3.0))
        assert alert is not None
        assert alert.histories.seqnos("x") == (3, 2, 1)

    def test_conservative_variant_deg3(self):
        cond = degree3_condition().as_conservative()
        ce = ConditionEvaluator(cond)
        ce.ingest(Update("x", 1, 1.0))
        ce.ingest(Update("x", 2, 2.0))
        # Gap between 2 and 4: conservative refuses.
        assert ce.ingest(Update("x", 4, 3.0)) is None
        assert ce.ingest(Update("x", 5, 4.0)) is None  # (5,4,2) has a gap
        assert ce.ingest(Update("x", 6, 5.0)) is not None  # (6,5,4) clean

    def test_ad3_spanning_sets_deg3(self):
        # Alert on (5,3,1) requires 2 and 4 missed; alert on (6,4,3)
        # requires 4 received -> conflict.
        cond = degree3_condition()
        ce1 = ConditionEvaluator(cond, "CE1")
        ce1.ingest_all(parse_trace("1x(1), 3x(2), 5x(3)"))
        (a1,) = ce1.alerts
        ce2 = ConditionEvaluator(cond, "CE2")
        ce2.ingest_all(parse_trace("3x(2), 4x(2.5), 6x(3.5)"))
        (a2,) = ce2.alerts
        ad = AD3("x")
        assert ad.offer(a1) is True
        assert ad.offer(a2) is False
        assert check_consistency_single(list(ad.output), "x")

    def test_inconsistency_checker_deg3(self):
        cond = degree3_condition()
        ce1 = ConditionEvaluator(cond, "CE1")
        ce1.ingest_all(parse_trace("1x(1), 3x(2), 5x(3)"))
        ce2 = ConditionEvaluator(cond, "CE2")
        ce2.ingest_all(parse_trace("3x(2), 4x(2.5), 6x(3.5)"))
        both = list(ce1.alerts) + list(ce2.alerts)
        assert not check_consistency_single(both, "x")

    def test_system_run_deg3_ad4_guarantees(self):
        cond = degree3_condition()
        workload = {
            "x": [(t * 10.0, 1000.0 + (t % 5) * 100.0 + t) for t in range(25)]
        }
        config = SystemConfig(replication=2, ad_algorithm="AD-4", front_loss=0.3)
        for seed in range(10):
            run = run_system(cond, workload, config, seed=seed)
            report = run.evaluate_properties()
            assert report.ordered
            assert report.consistent


def three_variable_condition():
    """Alert when any pairwise reactor gap exceeds 100 degrees."""
    expr = (
        (abs(H.x[0].value - H.y[0].value) > 100.0)
        | (abs(H.y[0].value - H.z[0].value) > 100.0)
        | (abs(H.x[0].value - H.z[0].value) > 100.0)
    )
    return ExpressionCondition("tri", expr)


class TestThreeVariableSystems:
    WORKLOAD = {
        var: [(t * 10.0, base + (t % 4) * 60.0) for t in range(12)]
        for var, base in (("x", 1000.0), ("y", 1050.0), ("z", 1180.0))
    }

    def test_condition_shape(self):
        cond = three_variable_condition()
        assert cond.variables == ("x", "y", "z")
        assert not cond.is_historical

    def test_ad5_three_variables_ordered(self):
        cond = three_variable_condition()
        config = SystemConfig(replication=2, ad_algorithm="AD-5", front_loss=0.2)
        for seed in range(8):
            run = run_system(cond, self.WORKLOAD, config, seed=seed)
            assert is_alert_sequence_ordered(
                list(run.displayed), ["x", "y", "z"]
            )

    def test_ad6_three_variables_consistent(self):
        from repro.props.consistency import check_consistency_multi

        cond = three_variable_condition()
        config = SystemConfig(replication=2, ad_algorithm="AD-6", front_loss=0.2)
        for seed in range(8):
            run = run_system(cond, self.WORKLOAD, config, seed=seed)
            assert check_consistency_multi(
                list(run.displayed), ["x", "y", "z"]
            )

    def test_registry_builds_three_var_algorithms(self):
        cond = three_variable_condition()
        ad5 = make_ad("AD-5", cond)
        assert ad5.varnames == ("x", "y", "z")
        ad6 = make_ad("AD-6", cond)
        assert ad6.varnames == ("x", "y", "z")

    def test_ad1_three_variables_breaks(self):
        # Theorem 10 generalizes: find a seed where AD-1 is inconsistent.
        from repro.props.consistency import check_consistency_multi

        cond = three_variable_condition()
        config = SystemConfig(replication=2, ad_algorithm="AD-1", front_loss=0.2)
        violations = 0
        for seed in range(30):
            run = run_system(cond, self.WORKLOAD, config, seed=seed)
            if not check_consistency_multi(list(run.displayed), ["x", "y", "z"]):
                violations += 1
        assert violations > 0


class TestArrivalStreamIndependence:
    """The AD algorithm choice cannot affect what ARRIVES at the AD —
    only what is displayed.  (The paper's M varies; its input does not.)"""

    def test_arrivals_identical_across_algorithms(self):
        workload = {"x": [(t * 10.0, 3100.0) for t in range(10)]}
        arrival_sets = []
        for algorithm in ("pass", "AD-1", "AD-2", "AD-3", "AD-4"):
            config = SystemConfig(
                replication=2, ad_algorithm=algorithm, front_loss=0.3
            )
            from repro.core.condition import c1

            run = run_system(c1(), workload, config, seed=12)
            arrival_sets.append(tuple(a.identity() for a in run.ad_arrivals))
        assert len(set(arrival_sets)) == 1
