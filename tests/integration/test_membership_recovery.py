"""Integration tests for the dynamic-membership lifecycle.

The PR's acceptance criterion, end to end: a property that *fails* under
a crash without recovery is *restored* once heartbeat detection and
state catch-up run — demonstrated on a pinned witness (both kernels),
aggregated by the churn sweep's ``recovery_restores_alerts`` gate, and
visible through the ``repro chaos --churn`` and ``repro trace`` CLIs.
"""

from dataclasses import replace

import pytest

from repro.engine.spec import TrialSpec
from repro.faults import (
    DEFAULT_CHURN_PROFILE,
    churn_specs,
    churn_sweep,
    recovery_restores_alerts,
    render_churn_table,
)
from repro.membership import MembershipConfig, churn_summary
from repro.observability import record_trial, replay_trace
from repro.simulation.failures import CrashSchedule
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario

#: Pinned witness: an aggressive (non-conservative historical) condition
#: with two replicas and one long CE1 outage.  The crash gap leaves CE1's
#: history incomplete, and the AD's merge of a gapped and a full replica
#: violates all three properties at this seed — until catch-up heals the
#: gap.  Found by sweeping seeds 0–39; pinned for regression.
SCENARIO = replace(SINGLE_VARIABLE_SCENARIOS["aggressive"], front_loss=0.0)
CRASHES = {0: CrashSchedule(((35.0, 62.0),))}
SEED = 5
N_UPDATES = 14


def _run(membership, kernel="array"):
    return run_scenario(
        SCENARIO, "pass", SEED,
        n_updates=N_UPDATES, replication=2,
        crash_schedules=CRASHES, membership=membership, kernel=kernel,
    )


class TestRecoveryRestoresProperties:
    """The acceptance criterion, on the pinned witness."""

    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_crash_without_recovery_violates(self, kernel):
        report = _run(membership=None, kernel=kernel).evaluate_properties()
        summary = report.summary
        assert summary["ordered"] is False
        assert summary["complete"] is False
        assert summary["consistent"] is False

    @pytest.mark.parametrize("kernel", ["array", "object"])
    def test_detection_and_catchup_restore_all_three(self, kernel):
        run = _run(membership=MembershipConfig(), kernel=kernel)
        summary = run.evaluate_properties().summary
        assert summary["ordered"] is True
        assert summary["complete"] is True
        assert summary["consistent"] is True
        # The restoration was real work: updates were replayed into CE1.
        assert sum(run.caught_up) > 0
        event, = run.membership.recoveries
        assert event.successful and event.source == "peer:CE2"

    def test_restart_without_catchup_does_not_restore(self):
        # source="none" rejoins with the history hole intact — the
        # lifecycle alone is not enough; the state transfer is what heals.
        run = _run(membership=MembershipConfig(catchup_source="none"))
        summary = run.evaluate_properties().summary
        assert summary["complete"] is False
        assert sum(run.caught_up) == 0

    def test_churn_digest_reflects_the_recovery(self):
        run = _run(membership=MembershipConfig())
        digest = churn_summary(run)
        assert digest["recoveries"] == 1
        assert digest["recovered"] == 1
        assert digest["below_quorum"] is True  # quorum of 2, one CE down
        assert digest["mean_time_to_recover"] > 27.0  # crash len + catchup


class TestChurnSweep:
    """`repro chaos --churn`'s engine: recovery measurably reduces
    missed alerts versus the crash-only baseline at every intensity."""

    @pytest.fixture(scope="class")
    def cells(self):
        return churn_sweep(
            intensities=(1.0, 2.0),
            detection_timeouts=(None, 4.0),
            catchup_latencies=(2.0,),
            trials=8,
        )

    def test_baseline_and_recovery_cells_share_seeds(self, cells):
        # The baseline (detection_timeout=None) and recovery cells at one
        # intensity must run identical seeds/crash schedules, so their
        # miss-rate difference is a pure recovery-policy effect.
        baselines = [c for c in cells if c.detection_timeout is None]
        recovered = [c for c in cells if c.detection_timeout is not None]
        assert {c.intensity for c in baselines} == {1.0, 2.0}
        assert all(c.trials == 8 for c in cells)
        assert recovered

    def test_recovery_restores_alerts_gate(self, cells):
        assert recovery_restores_alerts(cells)

    def test_recovery_cells_actually_caught_up(self, cells):
        assert any(
            c.caught_up > 0 for c in cells if c.detection_timeout is not None
        )

    def test_render_table_mentions_every_cell(self, cells):
        table = render_churn_table(cells)
        assert "off" in table  # the baseline row
        for cell in cells:
            assert f"{cell.intensity:g}" in table

    def test_specs_are_deterministic(self):
        a = churn_specs(1.0, 4.0, 2.0, trials=4, base_seed=7)
        b = churn_specs(1.0, 4.0, 2.0, trials=4, base_seed=7)
        assert a == b
        # Same cell, different recovery knob: identical seeds by design.
        c = churn_specs(1.0, 6.0, 2.0, trials=4, base_seed=7)
        assert [s.seed for s in a] == [s.seed for s in c]
        assert [s.faults for s in a] == [s.faults for s in c]


class TestMembershipTraceRoundTrip:
    def test_record_replay_bit_identical_on_pinned_witness(self):
        spec = TrialSpec(
            "single", "aggressive", "pass", SEED, N_UPDATES,
            replication=2, front_loss=0.0,
            faults=DEFAULT_CHURN_PROFILE.scaled(1.5),
            membership=MembershipConfig(),
        )
        for kernel in ("array", "object"):
            trace = record_trial(replace(spec, kernel=kernel))
            assert any(e.stage == "membership" for e in trace.events)
            result = replay_trace(trace)
            assert result.identical, result.describe()


class TestMembershipCLI:
    def test_chaos_churn_gate_passes(self, capsys):
        from repro.cli import main

        code = main([
            "chaos", "--churn",
            "--intensities", "1.0",
            "--detection-timeouts", "4.0",
            "--trials", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "detection + catch-up reduces missed alerts" in out
        assert "YES" in out

    def test_trace_record_with_membership_replays(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "membership.jsonl"
        code = main([
            "trace", "record", "aggressive", "--seed", str(SEED),
            "--updates", str(N_UPDATES), "--replication", "2",
            "--chaos", "1.5", "--membership",
            "--out", str(path),
        ])
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["trace", "replay", str(path)]) == 0
        assert "bit-identical" in capsys.readouterr().out
