"""Acceptance check: record → replay round-trips bit-identically on every
scenario of the paper's six reported tables.

For each table we take its (algorithm, matrix) from TABLE_CONFIG and run
one trial per row through the full trace pipeline — record to a JSONL
file on disk, reload, re-execute — asserting event-stream bit-identity
and metrics equality exactly as ``repro trace replay`` would.
"""

import pytest

from repro.analysis.tables import TABLE_CONFIG
from repro.engine.spec import TrialSpec
from repro.observability import load_trace, record_trial, replay_trace
from repro.workloads.scenarios import ROW_ORDER

TABLE_IDS = ("table1", "table2", "table3", "ad3", "ad4", "ad6")


@pytest.mark.parametrize("table_id", TABLE_IDS)
def test_every_table_scenario_round_trips(table_id, tmp_path):
    algorithm, multi = TABLE_CONFIG[table_id]
    matrix = "multi" if multi else "single"
    for index, row in enumerate(ROW_ORDER):
        spec = TrialSpec(
            matrix, row, algorithm, 20010800 + index, 10 if multi else 14
        )
        trace = record_trial(spec)
        path = trace.write(tmp_path / f"{table_id}_{row}.jsonl")
        result = replay_trace(load_trace(path))
        assert result.identical, (
            f"{table_id}/{row}: {result.describe()}"
        )
        assert result.replayed_events == len(trace.events)
