"""Exhaustive-interleaving analysis: the paper's timing-dependent claims
proved over ALL arrival orders of fixed trace pairs."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.condition import c1, c2, c3
from repro.core.update import parse_trace
from repro.displayers import AD1, AD2, AD3, AD4, AD5
from repro.props.exhaustive import (
    classify_trace_pair,
    count_merge_orders,
    iter_merge_orders,
)
from repro.workloads.traces import theorem_10_example, theorem_4_example


class TestMergeOrders:
    def test_count_matches_enumeration(self):
        orders = list(iter_merge_orders([2, 2]))
        assert len(orders) == count_merge_orders([2, 2]) == 6

    def test_orders_distinct_and_wellformed(self):
        orders = list(iter_merge_orders([2, 1]))
        assert len(set(orders)) == 3
        for order in orders:
            assert sorted(order) == [0, 0, 1]

    def test_empty_stream(self):
        assert list(iter_merge_orders([0, 2])) == [(1, 1)]

    def test_three_streams(self):
        assert count_merge_orders([1, 1, 1]) == 6
        assert len(list(iter_merge_orders([1, 1, 1]))) == 6


class TestExample1AllInterleavings:
    """Example 1's traces under AD-1, over all 3 interleavings."""

    TRACES = (
        tuple(parse_trace("1x(2900), 2x(3100), 3x(3200)")),
        tuple(parse_trace("1x(2900), 3x(3200)")),
    )

    def test_always_complete_and_consistent(self):
        report = classify_trace_pair(c1(), self.TRACES, AD1)
        assert report.complete.verdict == "always"
        assert report.consistent.verdict == "always"

    def test_orderedness_is_timing_dependent(self):
        # a3 (CE2's alert on 3x) can arrive before a1 (CE1's on 2x).
        report = classify_trace_pair(c1(), self.TRACES, AD1)
        assert report.ordered.verdict == "sometimes"
        assert report.ordered.violating_witness is not None
        assert report.ordered.holding_witness is not None

    def test_ad2_forces_orderedness_always(self):
        report = classify_trace_pair(c1(), self.TRACES, lambda: AD2("x"))
        assert report.ordered.verdict == "always"
        # ... and completeness becomes timing dependent (Example 2's trade).
        assert report.complete.verdict == "sometimes"


class TestTheorem4AllInterleavings:
    """The aggressive counterexample is inconsistent in EVERY order."""

    def test_never_consistent_under_ad1(self):
        ex = theorem_4_example()
        report = classify_trace_pair(c2(), ex.traces, AD1)
        assert report.consistent.verdict == "never"

    def test_ad3_always_consistent(self):
        ex = theorem_4_example()
        report = classify_trace_pair(c2(), ex.traces, lambda: AD3("x"))
        assert report.consistent.verdict == "always"

    def test_ad4_always_both(self):
        ex = theorem_4_example()
        report = classify_trace_pair(c2(), ex.traces, lambda: AD4("x"))
        assert report.consistent.verdict == "always"
        assert report.ordered.verdict == "always"


class TestTheorem3AllInterleavings:
    def test_conservative_always_consistent_never_complete(self):
        traces = (
            tuple(parse_trace("1x(1000), 2x(1500)")),
            tuple(parse_trace("3x(2000), 4x(2500)")),
        )
        report = classify_trace_pair(c3(), traces, AD1)
        assert report.consistent.verdict == "always"
        assert report.complete.verdict == "never"
        assert report.ordered.verdict == "sometimes"


class TestTheorem10AllInterleavings:
    def test_ad1_never_ordered_never_consistent(self):
        ex = theorem_10_example()
        report = classify_trace_pair(ex.condition, ex.traces, AD1)
        # Both CE streams have one alert each -> 2 interleavings, both bad.
        assert report.interleavings == 2
        assert report.ordered.verdict == "never"
        assert report.consistent.verdict == "never"

    def test_ad5_always_ordered_and_consistent(self):
        ex = theorem_10_example()
        report = classify_trace_pair(
            ex.condition, ex.traces, lambda: AD5(("x", "y"))
        )
        assert report.ordered.verdict == "always"
        assert report.consistent.verdict == "always"


class TestGuardrails:
    def test_limit_enforced(self):
        traces = (
            tuple(parse_trace(", ".join(f"{i}x(3100)" for i in range(1, 15)))),
            tuple(parse_trace(", ".join(f"{i}x(3100)" for i in range(1, 15)))),
        )
        with pytest.raises(RuntimeError):
            classify_trace_pair(c1(), traces, AD1, limit=10)

    def test_lossless_identical_traces_always_everything(self):
        # Theorem 1 on a concrete instance, across all interleavings.
        trace = tuple(parse_trace("1x(3100), 2x(3200), 3x(3300)"))
        report = classify_trace_pair(c1(), (trace, trace), AD1)
        assert report.ordered.verdict == "always"
        assert report.complete.verdict == "always"
        assert report.consistent.verdict == "always"
        assert report.interleavings == 20
