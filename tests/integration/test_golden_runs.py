"""Golden-run regression tests.

``tests/golden/runs.json`` pins the exact displayed alert sequences (and
per-CE received traces, and property verdicts) of 56 deterministic runs
across every scenario row and AD algorithm.  Any behavioural drift —
in the RNG stream derivation, link models, evaluator, AD algorithms or
property checkers — shows up here as a precise diff, not a flaky
statistic.

If a change is *intentional* (e.g. a new randomness consumer), regenerate
with ``python tests/golden/regenerate.py`` and review the diff.
"""

import json
import pathlib

import pytest

from repro.workloads.scenarios import (
    MULTI_VARIABLE_SCENARIOS,
    SINGLE_VARIABLE_SCENARIOS,
    run_scenario,
)

GOLDEN_PATH = pathlib.Path(__file__).resolve().parents[1] / "golden" / "runs.json"


def load_golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


GOLDEN = load_golden()


def replay(key: str):
    matrix_name, row, algorithm, seed_text = key.split("/")
    matrix = (
        SINGLE_VARIABLE_SCENARIOS if matrix_name == "single" else MULTI_VARIABLE_SCENARIOS
    )
    seed = int(seed_text.removeprefix("seed"))
    return run_scenario(matrix[row], algorithm, seed, n_updates=15)


class TestGoldenRuns:
    def test_fixture_coverage(self):
        assert len(GOLDEN) == 56
        rows = {key.split("/")[1] for key in GOLDEN}
        assert rows == {"lossless", "non-historical", "conservative", "aggressive"}

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_run_matches_golden(self, key):
        expected = GOLDEN[key]
        run = replay(key)
        assert [
            [u.shorthand() for u in trace] for trace in run.received
        ] == expected["received"], f"{key}: received traces drifted"
        assert [a.shorthand() for a in run.displayed] == expected["displayed"], (
            f"{key}: displayed sequence drifted"
        )
        assert run.evaluate_properties().summary == expected["properties"], (
            f"{key}: property verdicts drifted"
        )
