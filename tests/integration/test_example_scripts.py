"""Smoke tests: every example script runs to completion and prints the
headline facts it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "alerts displayed to the user" in out
    assert "'complete': True" in out
    assert "'consistent': True" in out


def test_reactor_monitoring():
    out = run_example("reactor_monitoring.py")
    assert "aggressive triggering (c2)" in out
    assert "consistent=False" in out       # Theorem 4 witnessed
    assert "conservative triggering (c3)" in out
    assert "Algorithm AD-3" in out
    # The AD-3 section must report consistent=True:
    ad3_section = out.split("AD-3")[1]
    assert "consistent=True" in ad3_section


def test_stock_alerts():
    out = run_example("stock_alerts.py")
    assert "TWO sharp drops" in out
    assert "0/150 inconsistent runs remain under AD-4" in out


def test_multi_reactor():
    out = run_example("multi_reactor.py")
    assert "Theorem 10" in out
    assert "ordered?    False" in out
    assert "AD-5" in out


def test_multi_condition():
    out = run_example("multi_condition.py")
    assert "condition A ('x hotter than y') alerted" in out
    assert "ordered=True" in out
    assert "union" in out


def test_debugging_violations():
    out = run_example("debugging_violations.py")
    assert "minimized counterexample" in out
    assert "consistent violated under AD-1" in out
    assert "broadcast" in out  # timeline rendered


def test_config_driven():
    out = run_example("config_driven.py")
    assert "sensor log:" in out
    assert "condition 'spike': degree 2, aggressive" in out
    assert "minimized inconsistency witness saved" in out
