"""Integration test: the one-shot reproduction report."""

import pytest

from repro.analysis.repro_report import generate_report
from repro.cli import main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        # Small budget: this is the full suite, scaled down.
        return generate_report(budget=0.08)

    def test_all_sections_present(self, report):
        names = [s.name for s in report.sections]
        for expected in (
            "Property grid: table1",
            "Property grid: table3",
            "Property grid: ad1-multi",
            "Domination (Thm 6, Thm 8)",
            "Maximality (Thm 5, Thm 7, Thm 9)",
            "Availability (Figure-1 motivation)",
        ):
            assert expected in names

    def test_everything_passes(self, report):
        failing = [s.name for s in report.sections if not s.passed]
        assert report.passed, f"failing sections: {failing}"

    def test_markdown_rendering(self, report):
        text = report.to_markdown()
        assert text.startswith("# Reproduction report")
        assert "**PASS**" in text
        assert text.count("## ") == len(report.sections)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            generate_report(budget=0.0)


class TestReportCLI:
    def test_cli_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(["report", "--budget", "0.05", "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "Reproduction report" in output.read_text()
        assert "overall: PASS" in capsys.readouterr().out
