"""Chaos tests: every failure mode at once, invariants intact.

Runs systems under simultaneous CE crashes, AD downtime, link outages,
heterogeneous loss and wide delay spreads, and checks the invariants no
amount of failure is allowed to break:

* per-CE traces are ordered subsequences of the DM output;
* back links lose nothing: generated alerts = arrivals (eventually);
* displayed + filtered = arrivals; displayed ⊑ arrivals;
* the guarantee algorithms (AD-4) keep their properties;
* runs stay deterministic in the seed.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1, c2
from repro.core.sequences import is_subsequence
from repro.props.consistency import check_consistency_single
from repro.props.orderedness import is_alert_sequence_ordered
from repro.simulation.failures import CrashSchedule, random_crash_schedule
from repro.simulation.network import UniformDelay
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import rising_runs


def chaos_config(seed: int, replication: int = 3, ad_algorithm: str = "AD-1") -> SystemConfig:
    streams = RandomStreams(seed)
    horizon = 400.0
    return SystemConfig(
        replication=replication,
        ad_algorithm=ad_algorithm,
        front_loss=0.25,
        front_loss_per_ce={1: 0.5},
        front_outages={
            0: random_crash_schedule(streams.stream("outage0"), horizon, 0.01, 40.0)
        },
        crash_schedules={
            index: random_crash_schedule(
                streams.stream(f"crash{index}"), horizon, 0.008, 50.0
            )
            for index in range(replication)
        },
        ad_crash_schedule=random_crash_schedule(
            streams.stream("ad"), horizon, 0.01, 60.0
        ),
        front_delay=UniformDelay(0.05, 3.0),
        back_delay=UniformDelay(0.05, 40.0),
    )


def chaos_workload(seed: int, n: int = 35):
    streams = RandomStreams(seed + 999)
    return {"x": rising_runs(streams.stream("w"), n)}


SEEDS = list(range(12))


class TestChaosInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_traces_remain_ordered_subsequences(self, seed):
        run = run_system(
            c2(), chaos_workload(seed), chaos_config(seed), seed=seed
        )
        sent = list(run.sent["x"])
        for trace in run.received:
            assert is_subsequence(list(trace), sent)
            seqnos = [u.seqno for u in trace]
            assert seqnos == sorted(seqnos)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_back_links_lose_nothing(self, seed):
        run = run_system(
            c2(), chaos_workload(seed), chaos_config(seed), seed=seed
        )
        generated = sorted(a.identity() for a in run.all_generated)
        arrived = sorted(a.identity() for a in run.ad_arrivals)
        assert generated == arrived

    @pytest.mark.parametrize("seed", SEEDS)
    def test_arrival_accounting(self, seed):
        run = run_system(
            c2(), chaos_workload(seed), chaos_config(seed), seed=seed
        )
        assert len(run.displayed) + len(run.filtered) == len(run.ad_arrivals)
        assert is_subsequence(
            [a.identity() for a in run.displayed],
            [a.identity() for a in run.ad_arrivals],
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ad4_guarantees_survive_chaos(self, seed):
        run = run_system(
            c2(),
            chaos_workload(seed),
            chaos_config(seed, ad_algorithm="AD-4"),
            seed=seed,
        )
        assert is_alert_sequence_ordered(list(run.displayed), ["x"])
        assert check_consistency_single(list(run.displayed), "x")

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_determinism_under_chaos(self, seed):
        first = run_system(
            c2(), chaos_workload(seed), chaos_config(seed), seed=seed
        )
        second = run_system(
            c2(), chaos_workload(seed), chaos_config(seed), seed=seed
        )
        assert first.displayed == second.displayed
        assert first.ad_arrival_times == second.ad_arrival_times

    def test_total_blackout_is_silent_not_broken(self):
        config = SystemConfig(
            replication=2,
            front_loss=1.0,
            ad_crash_schedule=CrashSchedule(((0.0, 10_000.0),)),
        )
        run = run_system(c1(), chaos_workload(1), config, seed=1)
        assert run.displayed == ()
        report = run.evaluate_properties()
        # The empty sequence is ordered and consistent (and complete,
        # since no CE received anything).
        assert report.ordered
        assert report.consistent
        assert report.complete
