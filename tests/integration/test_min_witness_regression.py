"""Regression pins for the tables' minimal witnesses.

``benchmarks/results/min_witnesses.json`` commits, for every ✗-cell of
Tables 1–3, the first-scanned violating seed and the size its shrunk
witness had when the file was generated.  The derivation
(:func:`benchmarks.min_witnesses.derive_witness`) is deterministic, so
this test re-derives each witness exactly and asserts:

* the committed seed still violates the committed target — the ✗-cell
  itself regressed otherwise;
* the shrunk witness is no **larger** than the committed size on any
  recorded axis — the shrinker regressed otherwise.

Smaller is allowed (that is shrinker progress); the fix is to re-run
``benchmarks/min_witnesses.py`` and commit the new sizes.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # `python -m pytest` from elsewhere
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.min_witnesses import CELLS, RESULT_PATH, derive_witness  # noqa: E402

from repro.analysis.witness import violates  # noqa: E402
from repro.engine.spec import TrialSpec  # noqa: E402


def _committed() -> dict[str, dict]:
    entries = json.loads(RESULT_PATH.read_text())
    return {entry["cell"]: entry for entry in entries}


def test_every_pinned_cell_is_committed():
    committed = _committed()
    assert set(committed) == {cell_id for cell_id, *_ in CELLS}


@pytest.mark.parametrize(
    "cell_id,matrix,row,algorithm,target",
    CELLS,
    ids=[cell_id for cell_id, *_ in CELLS],
)
def test_minimal_witness_has_not_grown(cell_id, matrix, row, algorithm, target):
    entry = _committed()[cell_id]
    witness = entry["witness"]

    # The committed witness spec must still violate its target.
    committed_spec = TrialSpec(
        witness["matrix"], witness["row"], witness["algorithm"],
        witness["seed"], witness["n_updates"],
        replication=witness["replication"],
        front_loss=witness["front_loss"],
    )
    assert violates(committed_spec.execute(), target), (
        f"{cell_id}: the committed minimal witness no longer violates "
        f"{target} — simulator or checker drift"
    )

    # Re-deriving must not produce a bigger witness than we committed.
    result = derive_witness(matrix, row, algorithm, target)
    size = entry["size"]
    assert result.spec.n_updates <= size["n_updates"], (
        f"{cell_id}: shrinker now stops at n_updates="
        f"{result.spec.n_updates}, committed {size['n_updates']}"
    )
    assert result.counterexample.total_updates <= size["total_updates"]
    assert len(result.counterexample.displayed) <= size["displayed"]
    assert result.counterexample.violation == target
