"""Unit tests for link models: delay models, loss, FIFO enforcement."""

import random

import pytest

from repro.simulation.kernel import Kernel
from repro.simulation.network import (
    FixedDelay,
    LossyFifoLink,
    PerLinkSkewDelay,
    ReliableLink,
    UniformDelay,
)


def collector():
    received = []
    return received, received.append


class TestDelayModels:
    def test_uniform_range(self):
        model = UniformDelay(1.0, 2.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 2.0)
        with pytest.raises(ValueError):
            UniformDelay(3.0, 2.0)

    def test_fixed(self):
        assert FixedDelay(1.5).sample(random.Random(0)) == 1.5

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedDelay(-0.1)

    def test_skew_base_stable_per_rng(self):
        model = PerLinkSkewDelay(base_range=(0.0, 100.0), jitter_range=(0.0, 0.0))
        rng1, rng2 = random.Random(1), random.Random(2)
        base1 = model.sample(rng1)
        assert model.sample(rng1) == base1  # same link -> same base
        assert model.sample(rng2) != base1  # different link -> own base

    def test_skew_jitter_added(self):
        model = PerLinkSkewDelay(base_range=(5.0, 5.0), jitter_range=(1.0, 2.0))
        rng = random.Random(3)
        for _ in range(20):
            assert 6.0 <= model.sample(rng) <= 7.0

    def test_skew_validation(self):
        with pytest.raises(ValueError):
            PerLinkSkewDelay(base_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            PerLinkSkewDelay(jitter_range=(-1.0, 1.0))


class TestReliableLink:
    def test_delivers_everything(self):
        kernel = Kernel()
        received, deliver = collector()
        link = ReliableLink(kernel, deliver, FixedDelay(1.0), random.Random(0))
        for i in range(5):
            link.send(i)
        kernel.run()
        assert received == [0, 1, 2, 3, 4]
        assert link.delivered == 5

    def test_monotone_delivery_despite_random_delays(self):
        kernel = Kernel()
        received, deliver = collector()
        link = ReliableLink(
            kernel, deliver, UniformDelay(0.0, 100.0), random.Random(7)
        )

        def send_batch():
            for i in range(50):
                link.send(i)

        kernel.schedule(0.0, send_batch)
        kernel.run()
        assert received == list(range(50))

    def test_interleaved_sends(self):
        kernel = Kernel()
        received, deliver = collector()
        link = ReliableLink(
            kernel, deliver, UniformDelay(0.0, 50.0), random.Random(3)
        )
        for t, msg in enumerate(range(10)):
            kernel.schedule_at(float(t), lambda m=msg: link.send(m))
        kernel.run()
        assert received == list(range(10))


class TestLossyFifoLink:
    def test_lossless_in_order(self):
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel, deliver, FixedDelay(1.0), random.Random(0), loss_prob=0.0
        )
        for t in range(5):
            kernel.schedule_at(float(t) * 10, lambda m=t: link.send(m))
        kernel.run()
        assert received == [0, 1, 2, 3, 4]

    def test_loss_probability_one_drops_everything(self):
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel, deliver, FixedDelay(1.0), random.Random(0), loss_prob=1.0
        )
        for i in range(10):
            link.send(i)
        kernel.run()
        assert received == []
        assert link.lost == 10

    def test_loss_rate_roughly_matches(self):
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel, deliver, FixedDelay(1.0), random.Random(42), loss_prob=0.3
        )
        for t in range(1000):
            kernel.schedule_at(float(t), lambda m=t: link.send(m))
        kernel.run()
        assert 600 <= len(received) <= 800  # ~700 expected

    def test_reordered_arrivals_discarded(self):
        # Two messages sent close together with wildly different delays:
        # the receiver must never observe them out of order.
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel,
            deliver,
            UniformDelay(0.0, 100.0),
            random.Random(5),
            loss_prob=0.0,
        )

        def send_burst():
            for i in range(100):
                link.send(i)

        kernel.schedule(0.0, send_burst)
        kernel.run()
        assert received == sorted(received)
        assert len(received) + link.reorder_drops == 100

    def test_delivered_subsequence_of_sent(self):
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel,
            deliver,
            UniformDelay(0.0, 30.0),
            random.Random(11),
            loss_prob=0.2,
        )
        for t in range(200):
            kernel.schedule_at(float(t), lambda m=t: link.send(m))
        kernel.run()
        assert received == sorted(set(received))

    def test_loss_prob_validation(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            LossyFifoLink(
                kernel, lambda m: None, FixedDelay(1.0), random.Random(0),
                loss_prob=1.5,
            )

    def test_counters(self):
        kernel = Kernel()
        received, deliver = collector()
        link = LossyFifoLink(
            kernel, deliver, FixedDelay(1.0), random.Random(0), loss_prob=0.0
        )
        link.send("m")
        kernel.run()
        assert link.sent == 1
        assert link.delivered == 1
        assert link.lost == 0
