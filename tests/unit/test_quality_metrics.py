"""Unit tests for the alert-quality metrics layer: ground truth,
display-time recovery, and the event-keyed classification."""

from dataclasses import replace

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1, c2
from repro.quality.metrics import (
    AlertQuality,
    alert_quality,
    displayed_with_times,
    ground_truth_events,
)

WORKLOAD = {"x": [(float(t) * 10, 3100.0 if t % 2 else 2900.0) for t in range(10)]}


def run(condition=None, **config_kwargs):
    defaults = dict(replication=2, front_loss=0.0)
    defaults.update(config_kwargs)
    return run_system(
        condition or c1(), WORKLOAD, SystemConfig(**defaults), seed=1
    )


class TestGroundTruth:
    def test_perfect_run_expected_events(self):
        events = ground_truth_events(run())
        assert len(events) == 5  # alternating above-threshold readings
        # Injective keys: one per triggering seqno, stamped in order.
        heads = sorted(key[1][0] for key in events)
        assert heads == [2, 4, 6, 8, 10]
        times = [events[key] for key in sorted(events, key=events.get)]
        assert times == sorted(times)

    def test_ground_truth_ignores_front_loss(self):
        # The ideal system reads the broadcast log, not the lossy links.
        assert len(ground_truth_events(run(front_loss=0.7))) == 5


class TestDisplayedWithTimes:
    def test_times_align_with_arrivals(self):
        result = run()
        pairs = displayed_with_times(result)
        assert [alert for alert, _ in pairs] == list(result.displayed)
        # Each displayed alert is matched to one of its own arrival
        # stamps, and the matching preserves arrival order.
        arrivals = list(zip(result.ad_arrivals, result.ad_arrival_times))
        assert all(pair in arrivals for pair in pairs)
        times = [time for _, time in pairs]
        assert times == sorted(times)

    def test_non_subsequence_is_rejected(self):
        result = run()
        # Reversing a multi-element displayed sequence breaks the
        # subsequence property against the arrival order.
        assert len(result.displayed) > 1
        broken = replace(result, displayed=tuple(reversed(result.displayed)))
        with pytest.raises(ValueError, match="not a subsequence"):
            displayed_with_times(broken)


class TestAlertQuality:
    def test_perfect_run_is_perfect(self):
        quality = alert_quality(run())
        assert quality.expected == 5
        assert quality.detected == 5
        assert quality.duplicates == 0
        assert quality.false_alerts == 0
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.missed == 0
        assert all(sample >= 0.0 for sample in quality.latency_samples)
        assert quality.latency_p50 is not None
        assert quality.latency_p99 >= quality.latency_p50

    def test_pass_through_counts_replica_echoes_as_duplicates(self):
        quality = alert_quality(run(ad_algorithm="pass"))
        # Lossless: CE2 re-reports every event; pass displays both copies.
        assert quality.detected == 5
        assert quality.duplicates == 5
        assert quality.displayed == 10
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == 1.0

    def test_total_loss_detects_nothing(self):
        quality = alert_quality(run(replication=1, front_loss=1.0))
        assert quality.expected == 5
        assert quality.detected == 0
        assert quality.displayed == 0
        assert quality.recall == 0.0
        assert quality.missed_rate == 1.0
        assert quality.precision == 1.0  # vacuous: nothing displayed
        assert quality.latency_p50 is None

    def test_classification_is_exhaustive(self):
        # Lossy historical condition: near-duplicates and hallucinated
        # histories are possible; every displayed alert must land in
        # exactly one class and conservation must hold.
        quality = alert_quality(run(condition=c2(), front_loss=0.4))
        assert (
            quality.detected + quality.duplicates + quality.false_alerts
            == quality.displayed
        )
        assert quality.displayed + quality.filtered == quality.arrivals
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert len(quality.latency_samples) == quality.detected

    def test_as_dict_round_trips_the_counts(self):
        quality = alert_quality(run())
        digest = quality.as_dict()
        assert digest["expected"] == quality.expected
        assert digest["detected"] == quality.detected
        assert digest["missed"] == quality.missed
        assert digest["precision"] == quality.precision
        assert digest["recall"] == quality.recall
        assert digest["latency_samples"] == list(quality.latency_samples)

    def test_vacuous_rates(self):
        empty = AlertQuality(
            expected=0, detected=0, duplicates=0, false_alerts=0,
            displayed=0, filtered=0, arrivals=0, latency_samples=(),
        )
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.missed_rate == 0.0
        assert empty.duplicate_rate == 0.0
        assert empty.false_rate == 0.0
        assert empty.latency_p50 is None and empty.latency_p99 is None
