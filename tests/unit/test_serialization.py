"""Unit tests for JSON serialization of traces, alerts, conditions and
counterexamples."""

import json

import pytest

from repro.core.condition import PredicateCondition, c1, c2, c3, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.serialization import (
    alert_from_json,
    alert_to_json,
    condition_from_json,
    condition_to_json,
    counterexample_from_json,
    counterexample_to_json,
    dump_counterexample,
    expression_to_text,
    load_counterexample,
    trace_from_json,
    trace_to_json,
    update_from_json,
    update_to_json,
)
from repro.core.update import Update, parse_trace


class TestUpdateRoundTrip:
    def test_roundtrip(self):
        update = Update("x", 7, 3000.5)
        restored = update_from_json(update_to_json(update))
        assert restored == update
        assert restored.value == update.value

    def test_trace_roundtrip(self):
        trace = parse_trace("1x(2900), 2x(3100), 3x(3200)")
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_json_serializable(self):
        text = json.dumps(trace_to_json(parse_trace("1x(1), 2x(2)")))
        assert "seqno" in text

    def test_validation_via_constructor(self):
        with pytest.raises(ValueError):
            update_from_json({"var": "x", "seqno": -1, "value": 0.0})


class TestAlertRoundTrip:
    def _alert(self):
        ce = ConditionEvaluator(c2(), source="CE1")
        ce.ingest_all(parse_trace("1x(100), 3x(400)"))
        (alert,) = ce.alerts
        return alert

    def test_roundtrip_preserves_identity(self):
        alert = self._alert()
        restored = alert_from_json(alert_to_json(alert))
        assert restored.identity() == alert.identity()
        assert restored.source == "CE1"
        assert restored.histories.seqnos("x") == (3, 1)

    def test_corrupted_history_rejected(self):
        data = alert_to_json(self._alert())
        data["histories"]["x"].reverse()  # breaks most-recent-first order
        with pytest.raises(ValueError):
            alert_from_json(data)


class TestConditionRoundTrip:
    @pytest.mark.parametrize("factory", [c1, c2, c3, cm])
    def test_canonical_conditions(self, factory):
        condition = factory()
        restored = condition_from_json(condition_to_json(condition))
        assert restored.name == condition.name
        assert restored.degrees == condition.degrees
        assert restored.is_conservative == condition.is_conservative

    def test_behavioural_equivalence(self):
        condition = c3()
        restored = condition_from_json(condition_to_json(condition))
        trace = parse_trace("1x(100), 2x(350), 4x(800), 5x(1100)")
        original_alerts = ConditionEvaluator(condition).ingest_all(trace)
        restored_alerts = ConditionEvaluator(restored).ingest_all(trace)
        assert [a.seqno("x") for a in original_alerts] == [
            a.seqno("x") for a in restored_alerts
        ]

    def test_expression_text_parses(self):
        from repro.core.parser import parse_expression

        text = expression_to_text(cm().expression)
        parse_expression(text)  # must not raise

    def test_predicate_condition_rejected(self):
        condition = PredicateCondition("p", {"x": 1}, lambda h: True)
        with pytest.raises(TypeError):
            condition_to_json(condition)


class TestCounterexampleRoundTrip:
    def _counterexample(self):
        from repro.analysis.witness import counterexample_from_run
        from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario

        scenario = SINGLE_VARIABLE_SCENARIOS["aggressive"]
        for seed in range(200):
            run = run_scenario(scenario, "AD-1", seed, n_updates=20)
            counterexample = counterexample_from_run(run)
            if counterexample is not None and counterexample.violation == "consistent":
                return counterexample
        pytest.fail("no counterexample found")

    def test_roundtrip(self):
        original = self._counterexample()
        restored = counterexample_from_json(counterexample_to_json(original))
        assert restored.violation == original.violation
        assert restored.traces == original.traces
        assert restored.arrival_pattern == original.arrival_pattern
        assert [a.identity() for a in restored.displayed] == [
            a.identity() for a in original.displayed
        ]

    def test_restored_counterexample_still_violates(self):
        from repro.analysis.witness import find_violation, replay
        from repro.displayers.ad1 import AD1

        original = self._counterexample()
        restored = counterexample_from_json(counterexample_to_json(original))
        _, report = replay(
            restored.condition,
            restored.traces,
            restored.arrival_pattern,
            AD1,
        )
        assert find_violation(report) == "consistent"

    def test_file_roundtrip(self, tmp_path):
        original = self._counterexample()
        path = tmp_path / "counterexample.json"
        dump_counterexample(original, str(path))
        restored = load_counterexample(str(path))
        assert restored.traces == original.traces
