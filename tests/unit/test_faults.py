"""Unit tests for the repro.faults package: fault primitives, profile
scaling/materialization, plan composition, and the chaos sweep fold."""

import json
import random
from dataclasses import asdict

import pytest

from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1
from repro.engine.spec import TrialSpec
from repro.faults import (
    DEFAULT_CHAOS_PROFILE,
    DelaySpikeSchedule,
    DuplicationAdversary,
    FaultPlan,
    FaultProfile,
    GilbertElliottParams,
    chaos_specs,
    chaos_sweep,
    replication_reduces_misses,
)
from repro.faults.chaos import ChaosCell
from repro.observability.replay import record_trial
from repro.simulation.failures import CrashSchedule
from repro.simulation.rng import RandomStreams
from repro.workloads.generators import threshold_crossers


class TestGilbertElliott:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            GilbertElliottParams(good_to_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottParams(loss_bad=-0.1)

    def test_enabled(self):
        assert not GilbertElliottParams().enabled
        assert GilbertElliottParams(good_to_bad=0.1).enabled
        assert GilbertElliottParams(loss_good=0.1).enabled

    def test_deterministic_in_the_rng_seed(self):
        params = GilbertElliottParams(0.3, 0.4, 0.05, 0.9)
        a = params.make_model()
        b = params.make_model()
        ra, rb = random.Random(7), random.Random(7)
        assert [a.dropped(ra) for _ in range(200)] == [
            b.dropped(rb) for _ in range(200)
        ]

    def test_consumes_exactly_two_draws(self):
        model = GilbertElliottParams(0.3, 0.4, 0.05, 0.9).make_model()
        consumed = random.Random(11)
        model.dropped(consumed)
        reference = random.Random(11)
        reference.random()
        reference.random()
        assert consumed.random() == reference.random()

    def test_per_rng_chains_are_independent(self):
        # One shared model, two links: driving one link's chain must not
        # move the other's state.
        params = GilbertElliottParams(1.0, 0.0, 0.0, 1.0)  # jams Bad forever
        model = params.make_model()
        busy, idle = random.Random(1), random.Random(2)
        for _ in range(10):
            model.dropped(busy)
        assert model._bad[id(busy)]
        assert id(idle) not in model._bad

    def test_bursts_correlate_losses(self):
        # Bad state is sticky and lossy: long-run loss rate must exceed
        # the good-state rate by far once the chain can enter Bad.
        params = GilbertElliottParams(0.1, 0.1, 0.0, 1.0)
        model = params.make_model()
        rng = random.Random(3)
        losses = sum(model.dropped(rng) for _ in range(5000))
        assert 0.2 < losses / 5000 < 0.8


class TestDuplicationAdversary:
    def test_validated(self):
        with pytest.raises(ValueError):
            DuplicationAdversary(duplicate_prob=2.0)
        with pytest.raises(ValueError):
            DuplicationAdversary(duplicate_prob=0.5, max_copies=0)

    def test_copies_bounded(self):
        adversary = DuplicationAdversary(duplicate_prob=1.0, max_copies=3)
        rng = random.Random(0)
        draws = [adversary.draw_copies(rng) for _ in range(200)]
        assert all(1 <= extra <= 3 for extra in draws)
        assert set(draws) == {1, 2, 3}

    def test_disabled_draws_nothing(self):
        adversary = DuplicationAdversary(duplicate_prob=0.0)
        rng = random.Random(0)
        assert all(adversary.draw_copies(rng) == 0 for _ in range(50))

    def test_draw_count_independent_of_outcome(self):
        # Never-duplicating and always-duplicating adversaries leave the
        # stream in the same state: toggling duplication shifts nothing.
        never = DuplicationAdversary(duplicate_prob=0.0, max_copies=3)
        always = DuplicationAdversary(duplicate_prob=1.0, max_copies=3)
        ra, rb = random.Random(9), random.Random(9)
        never.draw_copies(ra)
        always.draw_copies(rb)
        assert ra.random() == rb.random()


class TestDelaySpikeSchedule:
    def test_factor_at(self):
        spikes = DelaySpikeSchedule(((10.0, 20.0), (50.0, 60.0)), factor=5.0)
        assert spikes.factor_at(5.0) == 1.0
        assert spikes.factor_at(10.0) == 5.0
        assert spikes.factor_at(20.0) == 5.0
        assert spikes.factor_at(30.0) == 1.0
        assert spikes.factor_at(55.0) == 5.0

    def test_validated(self):
        with pytest.raises(ValueError):
            DelaySpikeSchedule(((10.0, 20.0),), factor=0.5)
        with pytest.raises(ValueError):
            DelaySpikeSchedule(((10.0, 5.0),), factor=2.0)


class TestFaultProfileScaling:
    def test_intensity_zero_is_clean(self):
        assert DEFAULT_CHAOS_PROFILE.scaled(0.0).is_clean

    def test_intensity_one_is_identity(self):
        assert DEFAULT_CHAOS_PROFILE.scaled(1.0) == DEFAULT_CHAOS_PROFILE

    def test_probabilities_clamp(self):
        wild = DEFAULT_CHAOS_PROFILE.scaled(1000.0)
        assert wild.burst_good_to_bad <= 1.0
        assert wild.duplicate_prob <= 1.0
        assert wild.ce_crash_rate == DEFAULT_CHAOS_PROFILE.ce_crash_rate * 1000

    def test_durations_do_not_scale(self):
        doubled = DEFAULT_CHAOS_PROFILE.scaled(2.0)
        assert doubled.ce_mean_repair == DEFAULT_CHAOS_PROFILE.ce_mean_repair
        assert doubled.burst_bad_to_good == DEFAULT_CHAOS_PROFILE.burst_bad_to_good

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CHAOS_PROFILE.scaled(-0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultProfile(ce_crash_rate=-1.0)

    def test_profile_survives_dict_round_trip(self):
        # The TrialSpec trace-header path: asdict -> JSON -> kwargs.
        reloaded = FaultProfile(
            **json.loads(json.dumps(asdict(DEFAULT_CHAOS_PROFILE)))
        )
        assert reloaded == DEFAULT_CHAOS_PROFILE


class TestFaultProfileMaterialize:
    def _materialize(self, profile, seed=4, replication=3):
        return profile.materialize(
            RandomStreams(seed), horizon=400.0, replication=replication,
            variables=("x", "y"),
        )

    def test_clean_profile_materializes_clean_plan(self):
        assert self._materialize(FaultProfile()).is_clean

    def test_deterministic_in_the_seed(self):
        a = self._materialize(DEFAULT_CHAOS_PROFILE)
        b = self._materialize(DEFAULT_CHAOS_PROFILE)
        assert a == b
        assert a != self._materialize(DEFAULT_CHAOS_PROFILE, seed=5)

    def test_covers_every_node_and_link(self):
        plan = self._materialize(DEFAULT_CHAOS_PROFILE.scaled(10.0))
        assert set(plan.ce_crashes) == {0, 1, 2}
        assert set(plan.dm_crashes) == {"x", "y"}
        assert plan.ad_crash is not None
        assert plan.burst_loss is not None
        assert plan.duplication is not None
        assert plan.front_delay_spikes is not None

    def test_materializing_does_not_touch_workload_streams(self):
        # Fault draws come from dedicated streams: the workload stream
        # yields the same values whether or not a plan was drawn first.
        streams = RandomStreams(8)
        DEFAULT_CHAOS_PROFILE.materialize(
            streams, horizon=300.0, replication=2, variables=("x",)
        )
        after = streams.stream("workload/x").random()
        assert after == RandomStreams(8).stream("workload/x").random()


class TestFaultPlan:
    def test_clean_apply_is_identity(self):
        config = SystemConfig(replication=2, ad_algorithm="AD-1")
        assert FaultPlan.clean().apply_to(config) is config

    def test_apply_merges_existing_windows(self):
        config = SystemConfig(
            replication=2,
            ad_algorithm="AD-1",
            crash_schedules={0: CrashSchedule(((1.0, 2.0),))},
        )
        plan = FaultPlan(ce_crashes={0: CrashSchedule(((1.5, 3.0),))})
        merged = plan.apply_to(config)
        assert merged.crash_schedules[0].windows == ((1.0, 3.0),)

    def test_merge_unions_windows_per_key(self):
        a = FaultPlan(ce_crashes={0: CrashSchedule(((1.0, 2.0),))})
        b = FaultPlan(
            ce_crashes={0: CrashSchedule(((2.0, 4.0),))},
            dm_crashes={"x": CrashSchedule(((5.0, 6.0),))},
        )
        merged = a.merge(b)
        assert merged.ce_crashes[0].windows == ((1.0, 4.0),)
        assert merged.dm_crashes["x"].windows == ((5.0, 6.0),)

    def test_merge_last_writer_wins_adversaries(self):
        a = FaultPlan(duplication=DuplicationAdversary(0.1))
        b = FaultPlan(duplication=DuplicationAdversary(0.9))
        assert a.merge(b).duplication.duplicate_prob == 0.9
        assert b.merge(FaultPlan()).duplication.duplicate_prob == 0.9

    def test_json_round_trip(self):
        plan = DEFAULT_CHAOS_PROFILE.scaled(3.0).materialize(
            RandomStreams(2), horizon=300.0, replication=2, variables=("x",)
        )
        reloaded = FaultPlan.from_json_obj(
            json.loads(json.dumps(plan.to_json_obj()))
        )
        assert reloaded == plan


def _run(config, seed=0, n_updates=12):
    streams = RandomStreams(seed)
    workload = {"x": threshold_crossers(streams.stream("workload/x"), n_updates)}
    return run_system(c1(), workload, config, seed=seed)


class TestFaultInjectionEffects:
    def test_dm_crash_suppresses_readings(self):
        down_forever = CrashSchedule(((0.0, 1e9),))
        run = _run(
            SystemConfig(
                replication=1,
                ad_algorithm="AD-1",
                dm_crash_schedules={"x": down_forever},
            )
        )
        assert run.dm_suppressed == (12,)
        assert run.sent["x"] == ()
        assert run.displayed == ()

    def test_back_outage_delays_but_never_drops(self):
        baseline = _run(SystemConfig(replication=1, ad_algorithm="pass"))
        stalled = _run(
            SystemConfig(
                replication=1,
                ad_algorithm="pass",
                back_outages={0: CrashSchedule(((0.0, 500.0),))},
            )
        )
        # TCP semantics: every alert still arrives, just later.
        assert sorted(a.identity() for a in stalled.ad_arrivals) == sorted(
            a.identity() for a in baseline.ad_arrivals
        )

    def test_duplication_never_reaches_the_ce_twice(self):
        noisy = _run(
            SystemConfig(
                replication=2,
                ad_algorithm="pass",
                front_loss=0.0,
                front_duplication=DuplicationAdversary(
                    duplicate_prob=1.0, max_copies=2
                ),
            )
        )
        for trace in noisy.received:
            seqnos = [u.seqno for u in trace]
            assert seqnos == sorted(set(seqnos))

    def test_clean_profile_run_is_bit_identical_to_no_profile(self):
        spec_none = TrialSpec("single", "non-historical", "AD-2", 77, 10)
        spec_clean = TrialSpec(
            "single", "non-historical", "AD-2", 77, 10, faults=FaultProfile()
        )
        assert (
            record_trial(spec_none).event_lines()
            == record_trial(spec_clean).event_lines()
        )

    def test_fault_surface_is_traced(self):
        spec = TrialSpec(
            "single", "non-historical", "AD-2", 77, 10,
            faults=DEFAULT_CHAOS_PROFILE,
        )
        stages = {event.stage for event in record_trial(spec).events}
        assert "fault" in stages


class TestChaosSweep:
    def test_specs_are_seed_ordered_and_disjoint_across_cells(self):
        a = chaos_specs(1.0, 1, 5)
        b = chaos_specs(1.0, 2, 5)
        assert [s.seed for s in a] == sorted(s.seed for s in a)
        assert not {s.seed for s in a} & {s.seed for s in b}

    def test_intensity_zero_cell_is_fault_free(self):
        assert all(spec.faults is None for spec in chaos_specs(0.0, 2, 3))

    def test_sweep_smoke(self):
        cells = chaos_sweep(
            intensities=(0.0, 1.0), replications=(1, 2), trials=4,
            n_updates=12,
        )
        assert len(cells) == 4
        for cell in cells:
            assert cell.trials == 4
            assert set(cell.survival) == {"ordered", "complete", "consistent"}
            assert 0.0 <= cell.mean_miss_fraction <= 1.0

    def test_shape_check_flags_inversions(self):
        def cell(intensity, replication, miss):
            return ChaosCell(
                intensity, replication, 10, dict.fromkeys(
                    ("ordered", "complete", "consistent"), 1.0
                ), {}, miss, 1.0,
            )

        good = [cell(1.0, 1, 0.4), cell(1.0, 2, 0.2)]
        assert replication_reduces_misses(good)
        inverted = [cell(1.0, 1, 0.2), cell(1.0, 2, 0.4)]
        assert not replication_reduces_misses(inverted)
        flat_but_needy = [cell(1.0, 1, 0.4), cell(1.0, 2, 0.4)]
        assert not replication_reduces_misses(flat_but_needy)
