"""Unit tests for the ConditionEvaluator (the CE core)."""

import pytest

from repro.core.condition import c1, c2, c3, cm
from repro.core.evaluator import ConditionEvaluator
from repro.core.update import parse_trace, Update


class TestBasicOperation:
    def test_alert_emitted_when_condition_true(self):
        ce = ConditionEvaluator(c1())
        alert = ce.ingest(Update("x", 1, 3100.0))
        assert alert is not None
        assert alert.seqno("x") == 1

    def test_no_alert_when_condition_false(self):
        ce = ConditionEvaluator(c1())
        assert ce.ingest(Update("x", 1, 2900.0)) is None

    def test_alert_carries_condname(self):
        ce = ConditionEvaluator(c1())
        alert = ce.ingest(Update("x", 1, 3100.0))
        assert alert.condname == "c1"

    def test_alert_carries_source(self):
        ce = ConditionEvaluator(c1(), source="CE1")
        alert = ce.ingest(Update("x", 1, 3100.0))
        assert alert.source == "CE1"

    def test_alert_history_snapshot(self):
        ce = ConditionEvaluator(c2())
        ce.ingest(Update("x", 1, 1000.0))
        alert = ce.ingest(Update("x", 2, 1300.0))
        assert alert.histories.seqnos("x") == (2, 1)

    def test_no_evaluation_until_history_defined(self):
        # c2 is degree 2: the first update alone cannot trigger.
        ce = ConditionEvaluator(c2())
        assert ce.ingest(Update("x", 1, 10_000.0)) is None
        assert not ce.is_warmed_up

    def test_warmed_up_flag(self):
        ce = ConditionEvaluator(c2())
        ce.ingest(Update("x", 1, 0.0))
        assert not ce.is_warmed_up
        ce.ingest(Update("x", 2, 0.0))
        assert ce.is_warmed_up

    def test_ignores_irrelevant_variables(self):
        ce = ConditionEvaluator(c1())
        assert ce.ingest(Update("y", 1, 9999.0)) is None
        assert ce.received == ()

    def test_received_records_relevant_updates(self):
        ce = ConditionEvaluator(c1())
        ce.ingest(Update("x", 1, 0.0))
        ce.ingest(Update("x", 2, 0.0))
        assert [u.seqno for u in ce.received] == [1, 2]

    def test_in_order_assumption_enforced(self):
        ce = ConditionEvaluator(c1())
        ce.ingest(Update("x", 2, 0.0))
        with pytest.raises(ValueError):
            ce.ingest(Update("x", 1, 0.0))


class TestIngestAll:
    def test_example_1_ce1(self):
        # U1 = <1x(2900), 2x(3100), 3x(3200)> -> alerts at 2x and 3x.
        ce = ConditionEvaluator(c1())
        alerts = ce.ingest_all(parse_trace("1x(2900), 2x(3100), 3x(3200)"))
        assert [a.seqno("x") for a in alerts] == [2, 3]

    def test_example_1_ce2(self):
        # U2 = <1x, 3x> -> single alert at 3x.
        ce = ConditionEvaluator(c1())
        alerts = ce.ingest_all(parse_trace("1x(2900), 3x(3200)"))
        assert [a.seqno("x") for a in alerts] == [3]

    def test_alerts_property_accumulates(self):
        ce = ConditionEvaluator(c1())
        ce.ingest_all(parse_trace("1x(3100), 2x(3200)"))
        assert len(ce.alerts) == 2


class TestMultiVariable:
    def test_cm_triggers_on_either_variable(self):
        ce = ConditionEvaluator(cm())
        assert ce.ingest(Update("x", 1, 1000.0)) is None  # Hy undefined
        alert = ce.ingest(Update("y", 1, 1200.0))
        assert alert is not None
        assert alert.seqno("x") == 1
        assert alert.seqno("y") == 1

    def test_cm_alert_per_arrival(self):
        ce = ConditionEvaluator(cm())
        ce.ingest(Update("x", 1, 1000.0))
        ce.ingest(Update("y", 1, 1200.0))
        alert = ce.ingest(Update("x", 2, 1350.0))
        assert alert is not None
        assert alert.seqno("x") == 2
        assert alert.seqno("y") == 1


class TestConservativeBehaviour:
    def test_c3_does_not_trigger_across_gap(self):
        ce = ConditionEvaluator(c3())
        alerts = ce.ingest_all(parse_trace("1x(400), 3x(720)"))
        assert alerts == []

    def test_c2_triggers_across_gap(self):
        ce = ConditionEvaluator(c2())
        alerts = ce.ingest_all(parse_trace("1x(400), 3x(720)"))
        assert [a.seqno("x") for a in alerts] == [3]


class TestReset:
    def test_reset_clears_everything(self):
        ce = ConditionEvaluator(c1())
        ce.ingest(Update("x", 1, 3100.0))
        ce.reset()
        assert ce.received == ()
        assert ce.alerts == ()
        # After reset, seqno 1 is acceptable again.
        assert ce.ingest(Update("x", 1, 3100.0)) is not None
