"""Unit tests for counterexample extraction and shrinking."""

import pytest

from repro.analysis.witness import (
    Counterexample,
    counterexample_from_run,
    find_violation,
    replay,
    shrink_counterexample,
)
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1, c2
from repro.core.update import parse_trace
from repro.displayers.ad1 import AD1
from repro.props.report import evaluate_run
from repro.workloads.scenarios import SINGLE_VARIABLE_SCENARIOS, run_scenario


def find_violating_run(property_name: str, algorithm="AD-1", row="aggressive"):
    scenario = SINGLE_VARIABLE_SCENARIOS[row]
    for seed in range(300):
        run = run_scenario(scenario, algorithm, seed, n_updates=25)
        counterexample = counterexample_from_run(run)
        if counterexample is not None and counterexample.violation == property_name:
            return run, counterexample
    pytest.fail(f"no {property_name} violation found in 300 seeds")


class TestFindViolation:
    def test_clean_run_has_no_violation(self):
        condition = c1()
        workload = {"x": [(t * 10.0, 3100.0) for t in range(5)]}
        run = run_system(condition, workload, SystemConfig(front_loss=0.0), seed=1)
        assert counterexample_from_run(run) is None

    def test_severity_order(self):
        # Consistency is reported before completeness before orderedness.
        condition = c2()
        u1 = parse_trace("1x(400), 2x(700), 3x(720)")
        u2 = parse_trace("1x(400), 3x(720)")
        from repro.core.evaluator import ConditionEvaluator

        alerts = (
            ConditionEvaluator(condition).ingest_all(u1)
            + ConditionEvaluator(condition).ingest_all(u2)
        )
        report = evaluate_run(condition, [u1, u2], alerts)
        assert find_violation(report) == "consistent"


class TestReplay:
    def test_replay_reproduces_simple_pipeline(self):
        condition = c1()
        traces = [parse_trace("1x(3100), 2x(3200)"), parse_trace("2x(3200)")]
        displayed, report = replay(condition, traces, [0, 1, 0], AD1)
        # CE1 alerts on 1,2; CE2 alerts on 2. AD-1 dedups CE2's copy.
        assert [a.seqno("x") for a in displayed] == [1, 2]
        assert report.complete

    def test_replay_pattern_leniency(self):
        condition = c1()
        traces = [parse_trace("1x(3100)"), parse_trace("1x(3100)")]
        # Pattern names CE2 more often than it has alerts: extras skipped,
        # leftovers appended.
        displayed, _ = replay(condition, traces, [1, 1, 1, 0], AD1)
        assert len(displayed) == 1  # duplicate removed


class TestCounterexampleFromRun:
    def test_extracts_pattern_and_traces(self):
        run, counterexample = find_violating_run("consistent")
        assert counterexample.ad_algorithm == "AD-1"
        assert len(counterexample.traces) == 2
        assert len(counterexample.arrival_pattern) == len(run.ad_arrivals)

    def test_describe_renders(self):
        _, counterexample = find_violating_run("consistent")
        text = counterexample.describe()
        assert "consistent violated" in text
        assert "U1 =" in text


class TestShrink:
    def test_shrinks_and_preserves_violation(self):
        _, counterexample = find_violating_run("consistent")
        condition = counterexample.condition
        shrunk = shrink_counterexample(counterexample, AD1)
        assert shrunk.total_updates <= counterexample.total_updates
        # The shrunk instance must still violate consistency on replay.
        displayed, report = replay(
            condition, shrunk.traces, shrunk.arrival_pattern, AD1
        )
        assert find_violation(report) == "consistent"

    def test_shrunk_is_one_minimal(self):
        _, counterexample = find_violating_run("consistent")
        condition = counterexample.condition
        shrunk = shrink_counterexample(counterexample, AD1)
        # Removing any single remaining update kills the violation.
        for ce_index in range(len(shrunk.traces)):
            for update_index in range(len(shrunk.traces[ce_index])):
                candidate = [list(t) for t in shrunk.traces]
                del candidate[ce_index][update_index]
                _, report = replay(
                    condition, candidate, shrunk.arrival_pattern, AD1
                )
                assert find_violation(report) != "consistent"

    def test_theorem4_scale(self):
        # The paper's Theorem-4 counterexample needs 3+2 updates; our
        # shrinker should land in the same ballpark (2 per CE is the
        # true minimum when values can differ).
        _, counterexample = find_violating_run("consistent")
        shrunk = shrink_counterexample(counterexample, AD1)
        assert shrunk.total_updates <= 6

    def test_rejects_unknown_violation(self):
        _, counterexample = find_violating_run("consistent")
        bad = Counterexample(
            condition=counterexample.condition,
            violation="bogus",
            traces=counterexample.traces,
            arrival_pattern=counterexample.arrival_pattern,
            ad_algorithm="AD-1",
            displayed=counterexample.displayed,
        )
        with pytest.raises(ValueError):
            shrink_counterexample(bad, AD1)
