"""Unit tests for the domination and maximality analyses."""

from repro.displayers import AD1, AD2, AD3, PassThrough
from repro.props.domination import dominates_on
from repro.props.domination import test_domination as run_domination
from repro.props.maximality import greedy_maximality_probe, probe_streams
from repro.analysis.experiments import (
    consistency_property,
    strict_orderedness_property,
)
from tests.conftest import alert_deg1, alert_deg2


class TestDominatesOn:
    def test_ad1_dominates_ad2_on_reordered_stream(self):
        stream = [alert_deg1(2), alert_deg1(1)]
        holds, strict = dominates_on(AD1(), AD2("x"), stream)
        assert holds
        assert strict  # AD-2 drops the late alert, AD-1 keeps it

    def test_equal_outputs_not_strict(self):
        stream = [alert_deg1(1), alert_deg1(2)]
        holds, strict = dominates_on(AD1(), AD2("x"), stream)
        assert holds
        assert not strict

    def test_ad2_does_not_dominate_ad1(self):
        stream = [alert_deg1(2), alert_deg1(1)]
        holds, _ = dominates_on(AD2("x"), AD1(), stream)
        assert not holds

    def test_passthrough_dominates_ad1(self):
        stream = [alert_deg1(1), alert_deg1(1)]
        holds, strict = dominates_on(PassThrough(), AD1(), stream)
        assert holds
        assert strict

    def test_instances_not_mutated(self):
        g1, g2 = AD1(), AD2("x")
        dominates_on(g1, g2, [alert_deg1(1)])
        assert g1.output == ()
        assert g2.output == ()


class TestTestDomination:
    def test_tallies(self):
        streams = [
            [alert_deg1(1), alert_deg1(2)],          # equal outputs
            [alert_deg1(2), alert_deg1(1)],          # strict witness
        ]
        result = run_domination(AD1(), AD2("x"), streams)
        assert result.streams == 2
        assert result.violations == 0
        assert result.strict_witnesses == 1
        assert result.dominates
        assert result.strictly_dominates
        assert result.first_strict_witness is not None

    def test_violation_recorded(self):
        streams = [[alert_deg1(2), alert_deg1(1)]]
        result = run_domination(AD2("x"), AD1(), streams)
        assert result.violations == 1
        assert not result.dominates
        assert result.first_violation == tuple(streams[0])


class TestMaximalityProbe:
    def test_ad2_discards_all_justified(self):
        ordered = strict_orderedness_property("x")
        stream = [alert_deg1(3), alert_deg1(1), alert_deg1(3), alert_deg1(4)]
        result = greedy_maximality_probe(AD2("x"), stream, ordered)
        assert result.discards == 2
        assert result.unjustified == 0
        assert result.maximal

    def test_ad3_discards_all_justified(self):
        consistent = consistency_property("x")
        stream = [alert_deg2(3, 1), alert_deg2(3, 2), alert_deg2(3, 1)]
        result = greedy_maximality_probe(AD3("x"), stream, consistent)
        assert result.discards == 2  # conflict + duplicate
        assert result.unjustified == 0

    def test_overly_eager_filter_flagged(self):
        # A filter that drops everything is NOT maximal: its discards are
        # unjustified whenever the property would have held.
        class DropAll(AD2):
            name = "drop-all"

            def _accept(self, alert):
                return False

        ordered = strict_orderedness_property("x")
        stream = [alert_deg1(1), alert_deg1(2)]
        result = greedy_maximality_probe(DropAll("x"), stream, ordered)
        assert result.unjustified == 2
        assert not result.maximal
        assert result.first_counterexample is not None

    def test_probe_streams_accumulates(self):
        ordered = strict_orderedness_property("x")
        streams = [
            [alert_deg1(2), alert_deg1(1)],
            [alert_deg1(3), alert_deg1(2)],
        ]
        result = probe_streams(AD2("x"), streams, ordered)
        assert result.streams == 2
        assert result.discards == 2
        assert result.maximal
