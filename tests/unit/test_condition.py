"""Unit tests for conditions: classification, canonical instances, guards."""

import pytest

from repro.core.condition import (
    ExpressionCondition,
    PredicateCondition,
    always_true,
    c1,
    c2,
    c3,
    cm,
    conservative_guard,
    sharp_price_drop,
)
from repro.core.expressions import H
from repro.core.history import HistorySet
from repro.core.update import Update


def feed(condition, pairs, var="x"):
    """Evaluate a condition after pushing (seqno, value) updates."""
    histories = HistorySet(condition.degrees)
    for seqno, value in pairs:
        histories.push(Update(var, seqno, value))
    return condition.evaluate(histories)


class TestClassification:
    def test_c1_non_historical(self):
        cond = c1()
        assert cond.degree("x") == 1
        assert not cond.is_historical
        assert cond.is_conservative  # trivially
        assert not cond.is_aggressive

    def test_c2_historical_aggressive(self):
        cond = c2()
        assert cond.degree("x") == 2
        assert cond.is_historical
        assert cond.is_aggressive

    def test_c3_historical_conservative(self):
        cond = c3()
        assert cond.is_historical
        assert cond.is_conservative

    def test_cm_two_variables_degree_one(self):
        cond = cm()
        assert cond.variables == ("x", "y")
        assert cond.degree("x") == 1
        assert cond.degree("y") == 1
        assert not cond.is_historical

    def test_variables_sorted(self):
        cond = ExpressionCondition("c", (H.b[0].value > 0) & (H.a[0].value > 0))
        assert cond.variables == ("a", "b")


class TestEvaluation:
    def test_c1_threshold(self):
        cond = c1(threshold=3000)
        assert feed(cond, [(1, 3100.0)])
        assert not feed(cond, [(1, 3000.0)])  # strict inequality

    def test_c2_triggers_across_gap(self):
        # Aggressive: 720 - 400 > 200 triggers even though update 2 missing.
        cond = c2()
        assert feed(cond, [(1, 400.0), (3, 720.0)])

    def test_c3_refuses_across_gap(self):
        cond = c3()
        assert not feed(cond, [(1, 400.0), (3, 720.0)])

    def test_c3_triggers_when_consecutive(self):
        cond = c3()
        assert feed(cond, [(1, 400.0), (2, 700.0)])

    def test_cm_absolute_difference(self):
        cond = cm(gap=100)
        histories = HistorySet(cond.degrees)
        histories.push(Update("x", 1, 1000.0))
        histories.push(Update("y", 1, 1150.0))
        assert cond.evaluate(histories)
        histories.push(Update("y", 2, 1050.0))
        assert not cond.evaluate(histories)

    def test_sharp_price_drop_aggressive(self):
        cond = sharp_price_drop(0.2)
        # 100 -> 52 across a lost quote: aggressive variant still triggers.
        assert feed(cond, [(1, 100.0), (3, 52.0)], var="price")

    def test_sharp_price_drop_conservative(self):
        cond = sharp_price_drop(0.2, conservative=True)
        assert not feed(cond, [(1, 100.0), (3, 52.0)], var="price")
        assert feed(cond, [(1, 100.0), (2, 50.0)], var="price")

    def test_sharp_price_drop_validates_fraction(self):
        with pytest.raises(ValueError):
            sharp_price_drop(0.0)
        with pytest.raises(ValueError):
            sharp_price_drop(1.0)

    def test_always_true(self):
        assert feed(always_true(), [(1, 0.0)])


class TestConservativeWrapping:
    def test_as_conservative_adds_gap_guard(self):
        aggressive = c2()
        conservative = aggressive.as_conservative()
        assert conservative.is_conservative
        assert not feed(conservative, [(1, 400.0), (3, 720.0)])
        assert feed(conservative, [(1, 400.0), (2, 700.0)])

    def test_as_conservative_names(self):
        assert c2().as_conservative().name == "c2_conservative"
        assert c2().as_conservative("mine").name == "mine"

    def test_conservative_flag_on_expression_condition(self):
        cond = ExpressionCondition(
            "g", H.x[0].value - H.x[-1].value > 0, conservative=True
        )
        assert not feed(cond, [(1, 0.0), (3, 10.0)])
        assert feed(cond, [(1, 0.0), (2, 10.0)])

    def test_conservative_guard_expression(self):
        guard = conservative_guard("x")
        cond = ExpressionCondition("g", (H.x[0].value > 0) & guard)
        assert feed(cond, [(1, 1.0), (2, 2.0)])
        assert not feed(cond, [(1, 1.0), (3, 2.0)])

    def test_conservative_guard_requires_variables(self):
        with pytest.raises(ValueError):
            conservative_guard()


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ExpressionCondition("", H.x[0].value > 0)

    def test_non_boolean_expression_rejected(self):
        with pytest.raises(TypeError):
            ExpressionCondition("c", H.x[0].value + 1)  # type: ignore[arg-type]

    def test_predicate_condition_requires_degrees(self):
        with pytest.raises(ValueError):
            PredicateCondition("c", {}, lambda h: True)

    def test_predicate_condition_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            PredicateCondition("c", {"x": 0}, lambda h: True)

    def test_infinite_degree_excluded(self):
        # The paper excludes conditions of infinite degree; our proxy is a
        # hard cap that no legitimate condition approaches.
        with pytest.raises(ValueError):
            PredicateCondition("c", {"x": 10**9}, lambda h: True)


class TestPredicateCondition:
    def test_predicate_evaluation(self):
        cond = PredicateCondition(
            "even", {"x": 1}, lambda h: h["x"][0].seqno % 2 == 0
        )
        assert feed(cond, [(2, 0.0)])
        assert not feed(cond, [(1, 0.0)])

    def test_predicate_with_conservative_guard(self):
        cond = PredicateCondition(
            "p", {"x": 2}, lambda h: True, conservative=True
        )
        assert not feed(cond, [(1, 0.0), (3, 0.0)])
        assert feed(cond, [(1, 0.0), (2, 0.0)])
