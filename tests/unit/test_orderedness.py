"""Unit tests for the orderedness property checker."""

from repro.props.orderedness import check_orderedness, is_alert_sequence_ordered
from tests.conftest import alert_deg1, alert_xy


class TestSingleVariable:
    def test_ordered(self):
        alerts = [alert_deg1(1), alert_deg1(2), alert_deg1(5)]
        assert check_orderedness(alerts, ["x"])
        assert is_alert_sequence_ordered(alerts, ["x"])

    def test_empty_is_ordered(self):
        assert check_orderedness([], ["x"])

    def test_equal_seqnos_allowed(self):
        # Orderedness is non-decreasing in the paper's definition.
        alerts = [alert_deg1(2), alert_deg1(2)]
        assert check_orderedness(alerts, ["x"])

    def test_inversion_detected(self):
        alerts = [alert_deg1(2), alert_deg1(1)]
        result = check_orderedness(alerts, ["x"])
        assert not result
        assert result.violating_variable == "x"
        assert result.violation_index == 1

    def test_first_inversion_reported(self):
        alerts = [alert_deg1(1), alert_deg1(3), alert_deg1(2), alert_deg1(1)]
        assert check_orderedness(alerts, ["x"]).violation_index == 2


class TestMultiVariable:
    def test_ordered_in_both(self):
        alerts = [alert_xy(1, 1), alert_xy(2, 1), alert_xy(2, 2)]
        assert check_orderedness(alerts, ["x", "y"])

    def test_inversion_in_second_variable(self):
        alerts = [alert_xy(1, 2), alert_xy(2, 1)]
        result = check_orderedness(alerts, ["x", "y"])
        assert not result
        assert result.violating_variable == "y"

    def test_theorem_10_output_unordered(self):
        # A = <a(2x,1y), a(1x,2y)>: Πx A = <2,1> is unordered.
        alerts = [alert_xy(2, 1), alert_xy(1, 2)]
        assert not check_orderedness(alerts, ["x", "y"])

    def test_bool_result_coercion(self):
        assert bool(check_orderedness([], ["x", "y"]))
