"""Unit tests for the simulated multi-condition systems (Fig D-7/D-8)."""

import pytest

from repro.components.system import SystemConfig
from repro.core.condition import c1
from repro.core.expressions import H
from repro.core.condition import ExpressionCondition
from repro.displayers.ad2 import AD2
from repro.multicondition.system import (
    DemuxAD,
    MultiConditionSystem,
    colocated_system,
)
from tests.conftest import alert_deg1


def two_conditions():
    return [
        ExpressionCondition("hot", H.x[0].value > 3000),
        ExpressionCondition("cold", H.x[0].value < 2600),
    ]


WORKLOAD = {"x": [(t * 10.0, 2500.0 + (t % 7) * 120.0) for t in range(20)]}


class TestDemuxAD:
    def test_routes_and_records(self):
        demux = DemuxAD({"c": AD2("x")})
        a1 = alert_deg1(1, cond="c")
        a2 = alert_deg1(2, cond="c")
        late = alert_deg1(1, cond="c")
        assert demux.offer(a1) is True
        assert demux.offer(a2) is True
        assert demux.offer(late) is False
        assert demux.stream_output("c") == (a1, a2)

    def test_streams_independent(self):
        demux = DemuxAD({"a": AD2("x"), "b": AD2("x")})
        assert demux.offer(alert_deg1(5, cond="a")) is True
        # b's own stream starts fresh: seqno 1 passes there.
        assert demux.offer(alert_deg1(1, cond="b")) is True

    def test_unknown_condition_raises(self):
        demux = DemuxAD({"a": AD2("x")})
        with pytest.raises(KeyError):
            demux.offer(alert_deg1(1, cond="zzz"))

    def test_fresh_resets_substreams(self):
        demux = DemuxAD({"a": AD2("x")})
        demux.offer(alert_deg1(5, cond="a"))
        fresh = demux.fresh()
        assert fresh.offer(alert_deg1(1, cond="a")) is True

    def test_requires_algorithms(self):
        with pytest.raises(ValueError):
            DemuxAD({})


class TestMultiConditionSystem:
    def test_runs_and_separates_streams(self):
        system = MultiConditionSystem(
            two_conditions(),
            WORKLOAD,
            SystemConfig(replication=2, front_loss=0.0, ad_algorithm="AD-2"),
            seed=5,
        )
        result = system.run()
        assert set(result.streams) == {"hot", "cold"}
        for name, stream in result.streams.items():
            assert all(a.condname == name for a in stream)

    def test_merged_display_is_union_of_streams(self):
        system = MultiConditionSystem(
            two_conditions(),
            WORKLOAD,
            SystemConfig(replication=2, front_loss=0.2, ad_algorithm="AD-2"),
            seed=6,
        )
        result = system.run()
        merged = sorted(a.identity() for a in result.displayed)
        union = sorted(
            a.identity() for stream in result.streams.values() for a in stream
        )
        assert merged == union

    def test_per_stream_single_condition_guarantees(self):
        # Appendix D: each stream behaves like a single-condition system,
        # so AD-2 per stream gives per-stream orderedness.
        from repro.props.orderedness import is_alert_sequence_ordered

        for seed in range(10):
            system = MultiConditionSystem(
                two_conditions(),
                WORKLOAD,
                SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-2"),
                seed=seed,
            )
            result = system.run()
            for stream in result.streams.values():
                assert is_alert_sequence_ordered(list(stream), ["x"])

    def test_evaluate_stream(self):
        system = MultiConditionSystem(
            two_conditions(),
            WORKLOAD,
            SystemConfig(replication=2, front_loss=0.3, ad_algorithm="AD-4"),
            seed=9,
        )
        result = system.run()
        report = result.evaluate_stream("hot")
        assert report.ordered
        assert report.consistent

    def test_duplicate_condition_names_rejected(self):
        with pytest.raises(ValueError):
            MultiConditionSystem(
                [c1(name="same"), c1(name="same")],
                WORKLOAD,
                SystemConfig(),
            )

    def test_workload_coverage_validated(self):
        with pytest.raises(ValueError):
            MultiConditionSystem(two_conditions(), {"y": []}, SystemConfig())

    def test_deterministic(self):
        def run_once():
            return MultiConditionSystem(
                two_conditions(),
                WORKLOAD,
                SystemConfig(replication=2, front_loss=0.3),
                seed=77,
            ).run()

        assert run_once().displayed == run_once().displayed


class TestColocatedSystem:
    def test_reduces_to_single_condition(self):
        system = colocated_system(
            two_conditions(),
            WORKLOAD,
            SystemConfig(replication=1, ad_algorithm="pass"),
            seed=3,
        )
        result = system.run()
        assert result.condition.name == "C"
        # C fires exactly when hot or cold does (degree-1 conditions,
        # same interleaving): compare against separate single runs.
        from repro.components.system import run_system

        hot, cold = two_conditions()
        config = SystemConfig(replication=1, ad_algorithm="pass")
        hot_seqnos = {
            a.seqno("x")
            for a in run_system(hot, WORKLOAD, config, seed=3).displayed
        }
        cold_seqnos = {
            a.seqno("x")
            for a in run_system(cold, WORKLOAD, config, seed=3).displayed
        }
        combined = {a.seqno("x") for a in result.displayed}
        assert combined == hot_seqnos | cold_seqnos
