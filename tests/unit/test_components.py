"""Unit tests for DataMonitor, CENode, ADNode and MonitoringSystem."""

import random

import pytest

from repro.components.ad_node import ADNode
from repro.components.ce_node import CENode
from repro.components.data_monitor import DataMonitor
from repro.components.system import MonitoringSystem, SystemConfig, run_system
from repro.core.condition import c1, c2, cm
from repro.core.update import Update
from repro.displayers.ad1 import AD1
from repro.simulation.failures import CrashSchedule
from repro.simulation.kernel import Kernel
from repro.simulation.network import FixedDelay, ReliableLink


class TestDataMonitor:
    def test_consecutive_seqnos_from_one(self):
        kernel = Kernel()
        dm = DataMonitor(kernel, "x", [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        dm.start()
        kernel.run()
        assert [u.seqno for u in dm.sent] == [1, 2, 3]

    def test_values_snapshot(self):
        kernel = Kernel()
        dm = DataMonitor(kernel, "x", [(0.0, 2900.0), (1.0, 3100.0)])
        dm.start()
        kernel.run()
        assert [u.value for u in dm.sent] == [2900.0, 3100.0]

    def test_broadcast_to_all_links(self):
        kernel = Kernel()
        received1, received2 = [], []
        dm = DataMonitor(kernel, "x", [(0.0, 1.0)])
        dm.attach(ReliableLink(kernel, received1.append, FixedDelay(1.0), random.Random(0)))
        dm.attach(ReliableLink(kernel, received2.append, FixedDelay(2.0), random.Random(1)))
        dm.start()
        kernel.run()
        assert len(received1) == len(received2) == 1
        assert received1[0] == received2[0]

    def test_sent_log_records_times(self):
        kernel = Kernel()
        dm = DataMonitor(kernel, "x", [(5.0, 1.0), (7.0, 2.0)])
        dm.start()
        kernel.run()
        assert [t for t, _ in dm.sent_log] == [5.0, 7.0]

    def test_unsorted_readings_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            DataMonitor(kernel, "x", [(2.0, 1.0), (1.0, 2.0)])

    def test_dm_does_not_receive(self):
        kernel = Kernel()
        dm = DataMonitor(kernel, "x", [])
        with pytest.raises(RuntimeError):
            dm.receive("anything")


class TestCENode:
    def test_generates_and_sends_alerts(self):
        kernel = Kernel()
        received = []
        ce = CENode(kernel, "CE1", c1())
        ce.connect_ad(ReliableLink(kernel, received.append, FixedDelay(1.0), random.Random(0)))
        ce.receive(Update("x", 1, 3100.0))
        kernel.run()
        assert len(received) == 1
        assert received[0].source == "CE1"

    def test_no_alert_no_send(self):
        kernel = Kernel()
        received = []
        ce = CENode(kernel, "CE1", c1())
        ce.connect_ad(ReliableLink(kernel, received.append, FixedDelay(1.0), random.Random(0)))
        ce.receive(Update("x", 1, 2000.0))
        kernel.run()
        assert received == []

    def test_crash_window_misses_updates(self):
        kernel = Kernel()
        ce = CENode(kernel, "CE1", c1(), CrashSchedule(((5.0, 15.0),)))
        kernel.schedule_at(10.0, lambda: ce.receive(Update("x", 1, 3100.0)))
        kernel.run()
        assert ce.received == ()
        assert ce.missed_while_down == 1

    def test_recovers_after_window(self):
        kernel = Kernel()
        ce = CENode(kernel, "CE1", c1(), CrashSchedule(((5.0, 15.0),)))
        kernel.schedule_at(20.0, lambda: ce.receive(Update("x", 1, 3100.0)))
        kernel.run()
        assert len(ce.received) == 1

    def test_rejects_non_update_messages(self):
        kernel = Kernel()
        ce = CENode(kernel, "CE1", c1())
        with pytest.raises(TypeError):
            ce.receive("not an update")


class TestADNode:
    def test_records_arrivals_and_displays(self):
        kernel = Kernel()
        ad = ADNode(kernel, "AD", AD1())
        ce = CENode(kernel, "CE1", c1())
        ce.connect_ad(ReliableLink(kernel, ad.receive, FixedDelay(1.0), random.Random(0)))
        ce.receive(Update("x", 1, 3100.0))
        ce.receive(Update("x", 2, 3200.0))
        kernel.run()
        assert len(ad.arrivals) == 2
        assert len(ad.displayed) == 2
        assert ad.filtered == ()

    def test_rejects_non_alert_messages(self):
        kernel = Kernel()
        ad = ADNode(kernel, "AD", AD1())
        with pytest.raises(TypeError):
            ad.receive(Update("x", 1))


class TestSystemConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(replication=0)
        with pytest.raises(ValueError):
            SystemConfig(front_loss=1.5)

    def test_defaults(self):
        config = SystemConfig()
        assert config.replication == 2
        assert config.ad_algorithm == "AD-1"


class TestMonitoringSystem:
    WORKLOAD = {"x": [(float(t) * 10, 2900.0 + 150 * t) for t in range(5)]}

    def test_workload_must_cover_variables(self):
        with pytest.raises(ValueError):
            MonitoringSystem(cm(), {"x": []}, SystemConfig())

    def test_lossless_run_everything_delivered(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        result = run_system(c1(), self.WORKLOAD, config, seed=1)
        assert len(result.sent["x"]) == 5
        assert all(len(t) == 5 for t in result.received)

    def test_replication_count(self):
        config = SystemConfig(replication=3)
        result = run_system(c1(), self.WORKLOAD, config, seed=1)
        assert len(result.received) == 3
        assert len(result.ce_alerts) == 3

    def test_deterministic_given_seed(self):
        config = SystemConfig(replication=2, front_loss=0.3)
        r1 = run_system(c1(), self.WORKLOAD, config, seed=99)
        r2 = run_system(c1(), self.WORKLOAD, config, seed=99)
        assert r1.received == r2.received
        assert r1.displayed == r2.displayed
        assert r1.ad_arrivals == r2.ad_arrivals

    def test_different_seeds_differ_under_loss(self):
        config = SystemConfig(replication=2, front_loss=0.5)
        workload = {"x": [(float(t) * 10, 3100.0) for t in range(30)]}
        r1 = run_system(c1(), workload, config, seed=1)
        r2 = run_system(c1(), workload, config, seed=2)
        assert r1.received != r2.received  # overwhelmingly likely

    def test_received_are_subsequences_of_sent(self):
        from repro.core.sequences import is_subsequence

        config = SystemConfig(replication=2, front_loss=0.4)
        workload = {"x": [(float(t) * 10, 3100.0) for t in range(20)]}
        result = run_system(c1(), workload, config, seed=5)
        sent = list(result.sent["x"])
        for trace in result.received:
            assert is_subsequence(list(trace), sent)

    def test_arrivals_union_of_ce_alerts(self):
        config = SystemConfig(replication=2, front_loss=0.2)
        workload = {"x": [(float(t) * 10, 3100.0) for t in range(10)]}
        result = run_system(c1(), workload, config, seed=3)
        generated = sorted(a.identity() for a in result.all_generated)
        arrived = sorted(a.identity() for a in result.ad_arrivals)
        assert generated == arrived  # back links are lossless

    def test_displayed_plus_filtered_equals_arrivals(self):
        config = SystemConfig(replication=2, front_loss=0.2)
        workload = {"x": [(float(t) * 10, 3100.0) for t in range(10)]}
        result = run_system(c1(), workload, config, seed=3)
        assert len(result.displayed) + len(result.filtered) == len(result.ad_arrivals)

    def test_custom_algorithm_instance(self):
        config = SystemConfig(replication=2)
        result = run_system(c1(), self.WORKLOAD, config, seed=1, algorithm=AD1())
        assert result is not None

    def test_crash_schedule_reduces_reception(self):
        horizon_crash = {0: CrashSchedule(((0.0, 1000.0),))}
        config = SystemConfig(replication=2, crash_schedules=horizon_crash)
        result = run_system(c1(), self.WORKLOAD, config, seed=1)
        assert len(result.received[0]) == 0
        assert result.missed_while_down[0] == 5
        assert len(result.received[1]) == 5

    def test_evaluate_properties_integration(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        result = run_system(c1(), self.WORKLOAD, config, seed=1)
        report = result.evaluate_properties()
        assert report.complete
        assert report.consistent

    def test_multi_variable_system(self):
        workload = {
            "x": [(float(t) * 10, 1000.0 + 50 * t) for t in range(5)],
            "y": [(float(t) * 10, 1200.0) for t in range(5)],
        }
        config = SystemConfig(replication=2, ad_algorithm="AD-5")
        result = run_system(cm(), workload, config, seed=2)
        assert set(result.sent) == {"x", "y"}
