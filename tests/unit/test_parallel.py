"""Unit tests for the parallel trial runner."""

import pytest

from repro.analysis.parallel import build_table_parallel, run_trial, run_trials
from repro.analysis.tables import build_table


class TestRunTrial:
    def test_single_trial(self):
        seed, report = run_trial(("single", "lossless", "AD-1", 42, 10, 2))
        assert seed == 42
        assert report.complete  # lossless under AD-1: Theorem 1

    def test_multi_matrix(self):
        _, report = run_trial(("multi", "non-historical", "AD-5", 7, 6, 2))
        assert report.ordered


class TestRunTrials:
    SPECS = [("single", "aggressive", "AD-1", seed, 12, 2) for seed in range(6)]

    def test_sequential(self):
        outcomes = run_trials(self.SPECS, processes=1)
        assert [seed for seed, _ in outcomes] == list(range(6))

    def test_parallel_matches_sequential(self):
        sequential = run_trials(self.SPECS, processes=1)
        parallel = run_trials(self.SPECS, processes=2)
        assert [s for s, _ in sequential] == [s for s, _ in parallel]
        for (_, r1), (_, r2) in zip(sequential, parallel):
            assert r1.summary == r2.summary

    def test_invalid_processes(self):
        with pytest.raises(ValueError):
            run_trials(self.SPECS, processes=0)


class TestBuildTableParallel:
    def test_matches_sequential_build_table(self):
        kwargs = dict(trials=8, n_updates=12, base_seed=777)
        sequential = build_table("table2", **kwargs)
        parallel = build_table_parallel("table2", processes=2, **kwargs)
        for row in sequential.tallies:
            s, p = sequential.tallies[row], parallel.tallies[row]
            assert s.runs == p.runs
            assert s.ordered_violations == p.ordered_violations
            assert s.completeness_violations == p.completeness_violations
            assert s.consistency_violations == p.consistency_violations

    def test_parallel_multi_table(self):
        result = build_table_parallel(
            "table3",
            trials=4,
            n_updates=10,
            completeness_trials=6,
            completeness_n_updates=5,
            processes=2,
        )
        for row, tally in result.tallies.items():
            assert tally.runs == 10
            assert tally.always_ordered  # AD-5 Lemma 4, any process count


class TestRunTrialsRegressions:
    SPECS = [("single", "aggressive", "AD-1", seed, 12, 2) for seed in range(6)]

    def test_single_spec_respects_result_despite_processes(self, caplog):
        # The old code silently fell back to sequential for len(specs) < 2;
        # now the inline shortcut is logged and still returns the result.
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.engine.core"):
            outcomes = run_trials(self.SPECS[:1], processes=4)
        assert len(outcomes) == 1
        assert outcomes[0][0] == self.SPECS[0][3]
        assert any("inline" in record.message for record in caplog.records)

    def test_chunksize_parameterized(self):
        # Explicit chunk sizing (the old 4*processes divisor was fixed).
        default = run_trials(self.SPECS, processes=2)
        chunked = run_trials(self.SPECS, processes=2, chunksize=2)
        assert [s for s, _ in default] == [s for s, _ in chunked]
        for (_, r1), (_, r2) in zip(default, chunked):
            assert r1.summary == r2.summary

    def test_auto_processes_accepted(self):
        outcomes = run_trials(self.SPECS[:2], processes="auto")
        assert [seed for seed, _ in outcomes] == [0, 1]
