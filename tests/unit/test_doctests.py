"""Run the doctest examples embedded in module docstrings.

Only modules whose docstrings actually carry ``>>>`` examples are
checked; the test also asserts that list stays in sync (a module gaining
doctests should be added here so its examples are executed).
"""

import doctest

import pytest

import repro.core.condition
import repro.core.expressions
import repro.core.history
import repro.core.sequences
import repro.core.update

MODULES_WITH_DOCTESTS = [
    repro.core.condition,
]

MODULES_WITHOUT = [
    repro.core.sequences,
    repro.core.update,
    repro.core.history,
    repro.core.expressions,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0


@pytest.mark.parametrize("module", MODULES_WITHOUT, ids=lambda m: m.__name__)
def test_registry_in_sync(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted == 0, (
        f"{module.__name__} gained doctests; add it to MODULES_WITH_DOCTESTS"
    )
