"""Unit tests for the §2.2 sequence notation."""

import pytest

from repro.core.sequences import (
    first_inversion,
    is_ordered,
    is_strict_supersequence,
    is_strictly_ordered,
    is_subsequence,
    is_supersequence,
    merge_ordered,
    ordered_union,
    phi,
    project_seqnos,
    sequences_equal,
    spanning_set,
)
from repro.core.update import Update


class TestIsOrdered:
    def test_paper_examples(self):
        assert is_ordered([3, 8, 100])
        assert is_ordered([2, 2])
        assert not is_ordered([2, 1, 6])

    def test_empty_is_ordered(self):
        assert is_ordered([])

    def test_singleton_is_ordered(self):
        assert is_ordered([5])

    def test_descending(self):
        assert not is_ordered([3, 2, 1])

    def test_accepts_generators(self):
        assert is_ordered(iter([1, 2, 3]))
        assert not is_ordered(iter([2, 1]))

    def test_plateau_then_drop(self):
        assert not is_ordered([1, 5, 5, 4])


class TestIsStrictlyOrdered:
    def test_strict(self):
        assert is_strictly_ordered([1, 2, 3])

    def test_equal_elements_rejected(self):
        assert not is_strictly_ordered([2, 2])

    def test_empty_and_singleton(self):
        assert is_strictly_ordered([])
        assert is_strictly_ordered([7])


class TestFirstInversion:
    def test_none_when_ordered(self):
        assert first_inversion([1, 2, 3]) is None

    def test_index_of_first_violation(self):
        assert first_inversion([1, 3, 2, 5]) == 2

    def test_equal_is_not_inversion(self):
        assert first_inversion([1, 1]) is None

    def test_empty(self):
        assert first_inversion([]) is None


class TestPhi:
    def test_paper_example(self):
        assert phi([2, 1, 2, 6]) == frozenset({1, 2, 6})

    def test_empty(self):
        assert phi([]) == frozenset()

    def test_returns_frozenset(self):
        assert isinstance(phi([1]), frozenset)


class TestSubsequence:
    def test_empty_is_subsequence_of_anything(self):
        assert is_subsequence([], [1, 2, 3])
        assert is_subsequence([], [])

    def test_identity(self):
        assert is_subsequence([1, 2], [1, 2])

    def test_skipping_elements(self):
        assert is_subsequence([1, 3], [1, 2, 3])
        assert is_subsequence([2], [1, 2, 3])

    def test_order_matters(self):
        assert not is_subsequence([3, 1], [1, 2, 3])

    def test_multiplicity_matters(self):
        assert not is_subsequence([2, 2], [1, 2, 3])
        assert is_subsequence([2, 2], [2, 1, 2])

    def test_longer_than_super(self):
        assert not is_subsequence([1, 2, 3], [1, 2])

    def test_supersequence_flips_arguments(self):
        assert is_supersequence([1, 2, 3], [1, 3])
        assert not is_supersequence([1, 3], [1, 2, 3])


class TestSequencesEqual:
    def test_equal(self):
        assert sequences_equal([1, 2], [1, 2])

    def test_unequal_order(self):
        assert not sequences_equal([1, 2], [2, 1])

    def test_tuple_vs_list(self):
        assert sequences_equal((1, 2), [1, 2])


class TestStrictSupersequence:
    def test_strict(self):
        assert is_strict_supersequence([1, 2, 3], [1, 3])

    def test_equal_is_not_strict(self):
        assert not is_strict_supersequence([1, 2], [1, 2])

    def test_unrelated(self):
        assert not is_strict_supersequence([1, 2], [3])


class TestOrderedUnion:
    def test_paper_example(self):
        assert ordered_union([1, 4, 8], [2, 4, 5]) == [1, 2, 4, 5, 8]

    def test_duplicates_removed(self):
        assert ordered_union([1, 2], [1, 2]) == [1, 2]

    def test_empty_inputs(self):
        assert ordered_union([], []) == []
        assert ordered_union([1], []) == [1]

    def test_self_union_is_identity(self):
        # Lemma 2: U ⊔ U = U.
        seq = [1, 3, 7]
        assert ordered_union(seq, seq) == seq

    def test_rejects_unordered_input(self):
        with pytest.raises(ValueError):
            ordered_union([2, 1], [1])
        with pytest.raises(ValueError):
            ordered_union([1], [3, 2])

    def test_internal_duplicates_collapsed(self):
        assert ordered_union([1, 1, 2], [2, 2]) == [1, 2]

    def test_merge_ordered_interleaving(self):
        assert merge_ordered([1, 5, 9], [2, 5, 8]) == [1, 2, 5, 8, 9]


class TestProjections:
    def test_paper_example(self):
        updates = [
            Update("x", 2),
            Update("y", 6),
            Update("y", 1),
            Update("x", 3),
        ]
        assert project_seqnos(updates, "x") == [2, 3]
        assert project_seqnos(updates, "y") == [6, 1]

    def test_missing_variable(self):
        assert project_seqnos([Update("x", 1)], "z") == []

    def test_empty(self):
        assert project_seqnos([], "x") == []


class TestSpanningSet:
    def test_paper_example(self):
        assert spanning_set({1, 2, 5}) == frozenset({1, 2, 3, 4, 5})

    def test_single_element(self):
        assert spanning_set({4}) == frozenset({4})

    def test_empty(self):
        assert spanning_set([]) == frozenset()

    def test_contiguous(self):
        assert spanning_set([2, 3, 4]) == frozenset({2, 3, 4})
