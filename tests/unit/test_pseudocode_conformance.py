"""Differential tests: production AD classes vs the paper's pseudo-code.

Every decision the production classes make is compared against literal
transcriptions of Figures A-1, A-2, A-3 and A-5 on hypothesis-generated
alert streams.  The single documented divergence (AD-3 duplicate
suppression, required by Theorem 8) is asserted explicitly.
"""

from hypothesis import given, strategies as st

from repro.core.sequences import is_subsequence
from repro.displayers import AD1, AD2, AD3, AD5
from repro.displayers.pseudocode import (
    AD1State,
    AD2State,
    AD3State,
    AD5State,
    ad1_step,
    ad2_step,
    ad3_step,
    ad5_step,
    spanning_set,
)
from tests.conftest import alert_deg1, alert_deg2, alert_xy


@st.composite
def deg2_streams(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(2, 14), st.integers(1, 13)).filter(
                lambda p: p[0] > p[1]
            ),
            max_size=18,
        )
    )
    return [alert_deg2(a, b) for a, b in pairs]


@st.composite
def unique_deg2_streams(draw):
    stream = draw(deg2_streams())
    seen, unique = set(), []
    for alert in stream:
        if alert.identity() not in seen:
            seen.add(alert.identity())
            unique.append(alert)
    return unique


@st.composite
def xy_streams(draw):
    pairs = draw(
        st.lists(st.tuples(st.integers(1, 9), st.integers(1, 9)), max_size=18)
    )
    return [alert_xy(x, y) for x, y in pairs]


class TestSpanningSet:
    def test_paper_example(self):
        assert spanning_set({1, 2, 5}) == {1, 2, 3, 4, 5}

    def test_empty(self):
        assert spanning_set(set()) == set()


class TestAD1Conformance:
    @given(deg2_streams())
    def test_identical_decisions(self, stream):
        production = AD1()
        state = AD1State()
        for alert in stream:
            assert production.offer(alert) == ad1_step(state, alert)

    def test_membership_is_history_equality(self):
        # "a is in P" uses alert identity = equal history sets.
        state = AD1State()
        assert ad1_step(state, alert_deg2(3, 1)) is True
        assert ad1_step(state, alert_deg2(3, 1)) is False
        assert ad1_step(state, alert_deg2(3, 2)) is True


class TestAD2Conformance:
    @given(deg2_streams())
    def test_identical_decisions(self, stream):
        production = AD2("x")
        state = AD2State()
        for alert in stream:
            assert production.offer(alert) == ad2_step(state, alert)

    @given(st.lists(st.integers(1, 30), max_size=25))
    def test_identical_decisions_deg1(self, seqnos):
        production = AD2("x")
        state = AD2State()
        for seqno in seqnos:
            alert = alert_deg1(seqno)
            assert production.offer(alert) == ad2_step(state, alert)


class TestAD3Conformance:
    @given(unique_deg2_streams())
    def test_identical_on_duplicate_free_streams(self, stream):
        production = AD3("x")
        state = AD3State()
        for alert in stream:
            assert production.offer(alert) == ad3_step(state, alert)

    def test_divergence_on_duplicates(self):
        # The literal Figure A-3 passes an exact duplicate; the production
        # class suppresses it (Theorem 8 requires AD-1 >= AD-3).
        duplicate = alert_deg2(3, 1)
        state = AD3State()
        assert ad3_step(state, duplicate) is True
        assert ad3_step(state, duplicate) is True  # pseudo-code: passes!
        production = AD3("x")
        assert production.offer(duplicate) is True
        assert production.offer(duplicate) is False  # production: filtered

    @given(deg2_streams())
    def test_literal_pseudocode_breaks_theorem8_only_via_duplicates(self, stream):
        # On any stream, the literal AD-3's extra output relative to AD-1
        # consists exclusively of exact duplicates.
        ad1 = AD1()
        ad1_out = [a for a in stream if ad1.offer(a)]
        state = AD3State()
        literal_out = [a for a in stream if ad3_step(state, a)]
        extras = []
        remaining = list(ad1_out)
        for alert in literal_out:
            if remaining and remaining[0] is alert:
                remaining.pop(0)
            elif alert in ad1_out:
                extras.append(alert)  # a duplicate AD-1 removed
            else:
                # Not a duplicate: would be a real Theorem 8 violation.
                raise AssertionError(f"non-duplicate extra alert {alert}")
        # And the production AD-3 never has extras at all:
        production = AD3("x")
        production_out = [a for a in stream if production.offer(a)]
        fresh_ad1 = AD1()
        fresh_out = [a for a in stream if fresh_ad1.offer(a)]
        assert is_subsequence(production_out, fresh_out)

    @given(unique_deg2_streams())
    def test_state_sets_match(self, stream):
        production = AD3("x")
        state = AD3State()
        for alert in stream:
            production.offer(alert)
            ad3_step(state, alert)
        assert production.received_set == frozenset(state.Received)
        assert production.missed_set == frozenset(state.Missed)


class TestAD5Conformance:
    @given(xy_streams())
    def test_identical_decisions(self, stream):
        production = AD5(("x", "y"))
        state = AD5State()
        for alert in stream:
            assert production.offer(alert) == ad5_step(state, alert)
