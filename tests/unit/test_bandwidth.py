"""Unit tests for back-link bandwidth accounting."""

import pytest

from repro.analysis.metrics import back_link_bytes
from repro.components.system import SystemConfig, run_system
from repro.core.condition import c1, c2
from repro.core.wire import AlertEncoding

WORKLOAD = {"x": [(t * 10.0, 3100.0) for t in range(10)]}


class TestBackLinkBytes:
    def test_defaults_to_algorithm_minimum(self):
        config = SystemConfig(replication=2, front_loss=0.0, ad_algorithm="AD-1")
        run = run_system(c1(), WORKLOAD, config, seed=1)
        # AD-1's minimum is CHECKSUM: 16 bytes header + 8 digest per alert.
        assert back_link_bytes(run) == back_link_bytes(
            run, AlertEncoding.CHECKSUM
        )

    def test_full_costs_more_than_checksum(self):
        config = SystemConfig(replication=2, front_loss=0.0)
        run = run_system(c2(), WORKLOAD, config, seed=1)
        full = back_link_bytes(run, AlertEncoding.FULL)
        checksum = back_link_bytes(run, AlertEncoding.CHECKSUM)
        if run.all_generated:
            assert full > checksum

    def test_scales_with_alert_count(self):
        config = SystemConfig(replication=3, front_loss=0.0)
        run = run_system(c1(), WORKLOAD, config, seed=1)
        per_alert = back_link_bytes(run, AlertEncoding.CHECKSUM) / len(
            run.all_generated
        )
        assert per_alert == pytest.approx(16.0)  # 8 condname + 8 digest

    def test_zero_alerts_zero_bytes(self):
        cold = {"x": [(0.0, 2000.0)]}
        config = SystemConfig(replication=2, front_loss=0.0)
        run = run_system(c1(), cold, config, seed=1)
        assert back_link_bytes(run) == 0
