"""Unit coverage for the exhaustive-interleaving classifier internals."""

import pytest

from repro.core.condition import c1
from repro.core.update import parse_trace
from repro.displayers import AD1
from repro.props.exhaustive import (
    PropertyClassification,
    classify_trace_pair,
    count_merge_orders,
    iter_merge_orders,
)


class TestPropertyClassification:
    def test_always(self):
        c = PropertyClassification(holds_count=5, violated_count=0)
        assert c.verdict == "always"
        assert c.total == 5

    def test_never(self):
        assert PropertyClassification(0, 4).verdict == "never"

    def test_sometimes(self):
        assert PropertyClassification(3, 2).verdict == "sometimes"


class TestMergeOrderEdges:
    def test_all_empty(self):
        assert list(iter_merge_orders([0, 0])) == [()]
        assert count_merge_orders([0, 0]) == 1

    def test_single_stream(self):
        assert list(iter_merge_orders([3])) == [(0, 0, 0)]

    def test_count_three_streams(self):
        # multinomial(2,1,1) = 4!/2! = 12
        assert count_merge_orders([2, 1, 1]) == 12
        assert len(list(iter_merge_orders([2, 1, 1]))) == 12


class TestClassifierEdges:
    def test_no_alerts_all_trivially_hold(self):
        traces = (
            tuple(parse_trace("1x(100)")),  # never triggers c1
            tuple(parse_trace("1x(100)")),
        )
        report = classify_trace_pair(c1(), traces, AD1)
        assert report.interleavings == 1
        assert report.ordered.verdict == "always"
        assert report.complete.verdict == "always"
        assert report.consistent.verdict == "always"

    def test_witnesses_populated_both_ways(self):
        traces = (
            tuple(parse_trace("1x(3100), 2x(3200)")),
            tuple(parse_trace("2x(3200)")),
        )
        report = classify_trace_pair(c1(), traces, AD1)
        assert report.ordered.verdict == "sometimes"
        assert report.ordered.holding_witness is not None
        assert report.ordered.violating_witness is not None
        assert (
            report.ordered.holds_count + report.ordered.violated_count
            == report.interleavings
        )

    def test_three_ce_traces(self):
        traces = (
            tuple(parse_trace("1x(3100)")),
            tuple(parse_trace("1x(3100)")),
            tuple(parse_trace("1x(3100)")),
        )
        report = classify_trace_pair(c1(), traces, AD1)
        assert report.interleavings == 6
        assert report.complete.verdict == "always"
