"""Unit tests for AD-1 … AD-6 and the algorithm registry."""

import pytest

from repro.core.condition import c1, c2, cm
from repro.core.update import Update
from repro.displayers import (
    AD1,
    AD2,
    AD3,
    AD4,
    AD5,
    AD6,
    PassThrough,
    algorithm_info,
    algorithm_names,
    make_ad,
    run_ad,
)
from tests.conftest import alert_deg1, alert_deg2, alert_xy


class TestBaseProtocol:
    def test_offer_returns_decision(self):
        ad = AD1()
        assert ad.offer(alert_deg1(1)) is True
        assert ad.offer(alert_deg1(1)) is False

    def test_output_and_discarded_partition_arrivals(self):
        ad = AD1()
        arrivals = [alert_deg1(1), alert_deg1(1), alert_deg1(2)]
        ad.offer_all(arrivals)
        assert len(ad.output) + len(ad.discarded) == 3

    def test_fresh_does_not_share_state(self):
        ad = AD2("x")
        ad.offer(alert_deg1(5))
        fresh = ad.fresh()
        assert fresh.offer(alert_deg1(1)) is True  # old `last` not inherited

    def test_run_ad_leaves_instance_untouched(self):
        ad = AD1()
        run_ad(ad, [alert_deg1(1)])
        assert ad.output == ()


class TestAD1:
    def test_removes_exact_duplicates(self):
        ad = AD1()
        displayed = ad.offer_all([alert_deg1(1), alert_deg1(1)])
        assert len(displayed) == 1

    def test_different_histories_not_duplicates(self):
        # §3: a1 on (2x,3x) and a2 on (1x,3x) both reported to the user.
        ad = AD1()
        displayed = ad.offer_all([alert_deg2(3, 2), alert_deg2(3, 1)])
        assert len(displayed) == 2

    def test_passes_out_of_order(self):
        ad = AD1()
        displayed = ad.offer_all([alert_deg1(2), alert_deg1(1)])
        assert len(displayed) == 2

    def test_duplicate_detection_across_gap(self):
        ad = AD1()
        displayed = ad.offer_all([alert_deg1(1), alert_deg1(2), alert_deg1(1)])
        assert [a.seqno("x") for a in displayed] == [1, 2]


class TestAD2:
    def test_discards_out_of_order(self):
        ad = AD2("x")
        displayed = ad.offer_all([alert_deg1(2), alert_deg1(1)])
        assert [a.seqno("x") for a in displayed] == [2]

    def test_discards_duplicates(self):
        # a.seqno.x <= last covers equality.
        ad = AD2("x")
        displayed = ad.offer_all([alert_deg1(1), alert_deg1(1)])
        assert len(displayed) == 1

    def test_passes_increasing(self):
        ad = AD2("x")
        displayed = ad.offer_all([alert_deg1(1), alert_deg1(3), alert_deg1(7)])
        assert [a.seqno("x") for a in displayed] == [1, 3, 7]

    def test_example_2(self):
        # a2 (seqno 2) arrives before a1 (seqno 1): a1 filtered, A = <a2>.
        ad = AD2("x")
        displayed = ad.offer_all([alert_deg1(2), alert_deg1(1)])
        assert [a.seqno("x") for a in displayed] == [2]

    def test_output_always_ordered(self):
        ad = AD2("x")
        ad.offer_all([alert_deg1(s) for s in (3, 1, 4, 2, 5, 5, 6)])
        seqnos = [a.seqno("x") for a in ad.output]
        assert seqnos == sorted(seqnos)


class TestAD3:
    def test_example_3(self):
        # a1 with H=(3x,1x) passes; a2 with H=(3x,2x) conflicts (2 in Missed).
        ad = AD3("x")
        assert ad.offer(alert_deg2(3, 1)) is True
        assert ad.offer(alert_deg2(3, 2)) is False
        assert ad.received_set == frozenset({1, 3})
        assert ad.missed_set == frozenset({2})

    def test_reverse_conflict(self):
        # First alert records 2 as Received; second requires 2 missed.
        ad = AD3("x")
        assert ad.offer(alert_deg2(2, 1)) is True
        assert ad.offer(alert_deg2(3, 1)) is False  # span {1,2,3}, gap 2 received

    def test_compatible_alerts_pass(self):
        ad = AD3("x")
        assert ad.offer(alert_deg2(2, 1)) is True
        assert ad.offer(alert_deg2(3, 2)) is True

    def test_duplicates_suppressed(self):
        # Deviation from the literal pseudo-code, required by Theorem 8.
        ad = AD3("x")
        assert ad.offer(alert_deg2(2, 1)) is True
        assert ad.offer(alert_deg2(2, 1)) is False

    def test_non_historical_never_conflicts(self):
        ad = AD3("x")
        assert ad.offer(alert_deg1(2)) is True
        assert ad.offer(alert_deg1(1)) is True  # out of order but consistent

    def test_wider_gap(self):
        ad = AD3("x")
        assert ad.offer(alert_deg2(5, 1)) is True  # missed: 2, 3, 4
        assert ad.offer(alert_deg2(3, 2)) is False
        assert ad.offer(alert_deg2(6, 5)) is True


class TestAD4:
    def test_discards_if_either_would(self):
        ad = AD4("x")
        assert ad.offer(alert_deg2(3, 1)) is True
        # Conflicts with Missed={2} (AD-3 reason):
        assert ad.offer(alert_deg2(4, 2)) is False
        # Out of order (AD-2 reason):
        assert ad.offer(alert_deg2(2, 1)) is False

    def test_passes_clean_sequences(self):
        ad = AD4("x")
        assert ad.offer(alert_deg2(2, 1)) is True
        assert ad.offer(alert_deg2(3, 2)) is True

    def test_state_only_advances_on_display(self):
        ad = AD4("x")
        ad.offer(alert_deg2(3, 1))
        ad.offer(alert_deg2(2, 1))  # discarded by AD-2 part
        # 2 must NOT have been recorded as received by the AD-3 part:
        assert 2 not in ad.received_set

    def test_exposes_witness_sets(self):
        ad = AD4("x")
        ad.offer(alert_deg2(3, 1))
        assert ad.received_set == frozenset({1, 3})
        assert ad.missed_set == frozenset({2})


class TestAD5:
    def test_discards_inversion_in_any_variable(self):
        ad = AD5(("x", "y"))
        assert ad.offer(alert_xy(2, 1)) is True
        assert ad.offer(alert_xy(1, 2)) is False  # x regresses

    def test_discards_duplicate_of_last(self):
        ad = AD5(("x", "y"))
        assert ad.offer(alert_xy(1, 1)) is True
        assert ad.offer(alert_xy(1, 1)) is False

    def test_passes_progress_in_one_variable(self):
        ad = AD5(("x", "y"))
        assert ad.offer(alert_xy(1, 1)) is True
        assert ad.offer(alert_xy(1, 2)) is True
        assert ad.offer(alert_xy(2, 2)) is True

    def test_theorem_10_inputs(self):
        # a(2x,1y) then a(1x,2y): second regresses in x and is dropped.
        ad = AD5(("x", "y"))
        assert ad.offer(alert_xy(2, 1)) is True
        assert ad.offer(alert_xy(1, 2)) is False

    def test_requires_variables(self):
        with pytest.raises(ValueError):
            AD5(())

    def test_three_variables(self):
        ad = AD5(("x", "y", "z"))
        from repro.core.alert import make_alert

        a1 = make_alert(
            "c",
            {
                "x": [Update("x", 1)],
                "y": [Update("y", 1)],
                "z": [Update("z", 1)],
            },
        )
        a2 = make_alert(
            "c",
            {
                "x": [Update("x", 2)],
                "y": [Update("y", 1)],
                "z": [Update("z", 1)],
            },
        )
        assert ad.offer(a1) is True
        assert ad.offer(a2) is True
        assert ad.offer(a1) is False  # regresses in x


class TestAD6:
    def test_combines_ad5_and_multivar_ad3(self):
        ad = AD6(("x", "y"))
        assert ad.offer(alert_xy(2, 1)) is True
        assert ad.offer(alert_xy(1, 2)) is False  # AD-5 reason

    def test_conflict_tracking_per_variable(self):
        from repro.core.alert import make_alert

        ad = AD6(("x", "y"))
        gap_alert = make_alert(
            "c",
            {
                "x": [Update("x", 3), Update("x", 1)],  # 2 missed
                "y": [Update("y", 1)],
            },
        )
        conflicting = make_alert(
            "c",
            {
                "x": [Update("x", 4), Update("x", 2)],  # needs 2 received
                "y": [Update("y", 2)],
            },
        )
        assert ad.offer(gap_alert) is True
        assert ad.offer(conflicting) is False
        assert ad.missed_set("x") == frozenset({2})
        assert ad.received_set("x") == frozenset({1, 3})

    def test_state_only_advances_on_display(self):
        ad = AD6(("x", "y"))
        ad.offer(alert_xy(2, 2))
        ad.offer(alert_xy(1, 3))  # dropped by AD-5 (x regresses)
        assert 1 not in ad.received_set("x")


class TestRegistry:
    def test_names(self):
        assert set(algorithm_names()) == {
            "pass",
            "AD-1",
            "AD-2",
            "AD-3",
            "AD-4",
            "AD-5",
            "AD-6",
            "adaptive",
        }

    def test_make_single_variable(self):
        cond = c2()
        assert isinstance(make_ad("AD-2", cond), AD2)
        assert make_ad("AD-2", cond).varname == "x"
        assert isinstance(make_ad("AD-3", cond), AD3)
        assert isinstance(make_ad("AD-4", cond), AD4)

    def test_make_multi_variable(self):
        cond = cm()
        ad5 = make_ad("AD-5", cond)
        assert isinstance(ad5, AD5)
        assert ad5.varnames == ("x", "y")
        assert isinstance(make_ad("AD-6", cond), AD6)

    def test_single_variable_algorithms_reject_multivar_condition(self):
        with pytest.raises(ValueError):
            make_ad("AD-2", cm())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_ad("AD-9", c1())
        with pytest.raises(KeyError):
            algorithm_info("AD-9")

    def test_pass_through(self):
        ad = make_ad("pass", c1())
        assert isinstance(ad, PassThrough)
        assert ad.offer(alert_deg1(1)) is True
        assert ad.offer(alert_deg1(1)) is True  # even duplicates pass

    def test_info_guarantees(self):
        assert algorithm_info("AD-2").guarantees_ordered
        assert not algorithm_info("AD-2").guarantees_consistent
        assert algorithm_info("AD-4").guarantees_ordered
        assert algorithm_info("AD-4").guarantees_consistent
        assert algorithm_info("AD-6").multi_variable
