"""Coverage for smaller paths: report internals, timeline multi-variable
rendering, registry errors, delayed-AD accounting, and __init__ surfaces."""

import pytest

from repro.analysis.repro_report import ReproductionReport, SectionResult
from repro.analysis.timeline import render_logical_timeline
from repro.components.system import SystemConfig, run_system
from repro.core.condition import cm
from repro.core.wire import minimum_encoding


class TestReproReportRendering:
    def test_failed_section_marks_fail(self):
        report = ReproductionReport(
            sections=[
                SectionResult("good", True, "fine", 0.1),
                SectionResult("bad", False, "broken", 0.2),
            ]
        )
        assert not report.passed
        text = report.to_markdown()
        assert "## good — PASS" in text
        assert "## bad — FAIL" in text
        assert "**FAIL**" in text
        assert "(1/2" in text

    def test_empty_report_passes_vacuously(self):
        assert ReproductionReport().passed


class TestTimelineMultiVariable:
    def test_two_dm_lanes(self):
        workload = {
            "x": [(0.0, 1000.0), (10.0, 1200.0)],
            "y": [(0.0, 1150.0), (10.0, 1100.0)],
        }
        config = SystemConfig(replication=2, front_loss=0.0, ad_algorithm="AD-5")
        run = run_system(cm(), workload, config, seed=2)
        text = render_logical_timeline(run)
        assert "DM-x" in text
        assert "DM-y" in text
        # Simultaneous broadcasts tie-break by variable name in sent_log.
        x_line = text.index("broadcast 1x")
        y_line = text.index("broadcast 1y")
        assert x_line < y_line


class TestPublicSurfaces:
    def test_top_level_all_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_importable(self):
        import repro.analysis
        import repro.core
        import repro.displayers
        import repro.multicondition
        import repro.props
        import repro.simulation
        import repro.workloads

        for module in (
            repro.analysis,
            repro.core,
            repro.displayers,
            repro.multicondition,
            repro.props,
            repro.simulation,
            repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    f"{module.__name__}.{name}"
                )

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestWireRegistryErrors:
    def test_minimum_encoding_covers_registry(self):
        from repro.displayers.registry import algorithm_names

        for name in algorithm_names():
            minimum_encoding(name)  # must not raise for any known algorithm


class TestDelayedAccounting:
    def test_duplicates_dropped_counter(self):
        from repro.displayers.delayed import DelayedDisplayAD
        from repro.simulation.kernel import Kernel
        from tests.conftest import alert_deg1

        kernel = Kernel()
        ad = DelayedDisplayAD(kernel, "x", timeout=1.0)
        for time, seqno in ((0.0, 1), (0.1, 1), (0.2, 2)):
            kernel.schedule_at(
                time, lambda s=seqno: ad.receive(alert_deg1(s))
            )
        kernel.run()
        ad.flush()
        assert ad.arrivals == 3
        assert len(ad.displayed) == 2
        assert ad.duplicates_dropped == 1


class TestEventImpulses:
    def test_bounds_and_values(self):
        import random

        from repro.workloads.generators import event_impulses

        readings = event_impulses(random.Random(1), 200, event_prob=0.25)
        values = {v for _, v in readings}
        assert values <= {0.0, 1.0}
        fired = sum(1 for _, v in readings if v == 1.0)
        assert 25 <= fired <= 80  # ~50 expected

    def test_prob_validation(self):
        import random

        from repro.workloads.generators import event_impulses

        with pytest.raises(ValueError):
            event_impulses(random.Random(1), 5, event_prob=1.5)
